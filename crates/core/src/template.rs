//! Query templates with placeholders — the demo's headline feature.
//!
//! "Users can optionally specify a placeholder for a certain column to
//! define a query template. … we instantiate the query template with values
//! (literals) from the column sample." Value functions optionally group the
//! sample values, e.g. one range query per year for date-like columns, or
//! equally sized buckets between the sample min and max.

use ds_est::CardinalityEstimator;
use ds_query::parser::{parse, ParseError};
use ds_query::query::Query;
use ds_storage::catalog::{ColRef, Database};
use ds_storage::predicate::{CmpOp, ColPredicate};
use ds_storage::sample::TableSample;

/// How sample values are turned into template instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueFn {
    /// One instance per distinct sample value (`col op value`).
    Identity,
    /// Group values by `value / divisor` (e.g. days → years) and emit one
    /// *range* instance per group: `col > lo-1 AND col < hi+1`.
    GroupBy(i64),
    /// `n` equally-sized buckets between the sample min and max, one range
    /// instance per bucket.
    Buckets(usize),
}

/// One instantiated template point: the label shown on the X axis and the
/// concrete query.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateInstance {
    /// X-axis label (the value, the group key, or the bucket's lower bound).
    pub label: i64,
    /// The concrete query for this point.
    pub query: Query,
}

/// A query template: a base query plus one placeholder predicate
/// `column op ?`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTemplate {
    /// The query without the placeholder predicate.
    pub base: Query,
    /// Placeholder column.
    pub column: ColRef,
    /// Placeholder operator (ignored for range-producing value functions).
    pub op: CmpOp,
}

impl QueryTemplate {
    /// Parses a SQL template containing exactly one `?` placeholder.
    pub fn parse_sql(db: &Database, sql: &str) -> Result<Self, ParseError> {
        let parsed = parse(db, sql)?;
        let (column, op) = parsed
            .placeholder
            .ok_or_else(|| ParseError("template needs a '?' placeholder".into()))?;
        if !parsed.query.tables.contains(&column.table) {
            return Err(ParseError(
                "placeholder column's table missing from FROM".into(),
            ));
        }
        Ok(Self {
            base: parsed.query,
            column,
            op,
        })
    }

    /// Instantiates the template using the column sample that ships with
    /// the sketch, applying the value function. Returns one instance per
    /// X-axis point, in ascending label order.
    pub fn instantiate(&self, samples: &[TableSample], value_fn: ValueFn) -> Vec<TemplateInstance> {
        let sample = &samples[self.column.table.0];
        let values = sample.distinct_values(self.column.col);
        if values.is_empty() {
            return Vec::new();
        }
        match value_fn {
            ValueFn::Identity => values
                .into_iter()
                .map(|v| TemplateInstance {
                    label: v,
                    query: self.with_predicates(vec![ColPredicate::new(
                        self.column.col,
                        self.op,
                        v,
                    )]),
                })
                .collect(),
            ValueFn::GroupBy(divisor) => {
                assert!(divisor > 0, "divisor must be positive");
                let mut groups: Vec<i64> = values.iter().map(|v| v.div_euclid(divisor)).collect();
                groups.dedup();
                groups
                    .into_iter()
                    .map(|g| {
                        let lo = g * divisor;
                        let hi = lo + divisor - 1;
                        TemplateInstance {
                            label: g,
                            query: self.range_instance(lo, hi),
                        }
                    })
                    .collect()
            }
            ValueFn::Buckets(n) => {
                assert!(n > 0, "bucket count must be positive");
                let (min, max) = (values[0], *values.last().expect("non-empty"));
                let span = (max - min + 1).max(1);
                let width = ((span + n as i64 - 1) / n as i64).max(1);
                (0..n as i64)
                    .map_while(|b| {
                        let lo = min + b * width;
                        if lo > max {
                            return None;
                        }
                        let hi = (lo + width - 1).min(max);
                        Some(TemplateInstance {
                            label: lo,
                            query: self.range_instance(lo, hi),
                        })
                    })
                    .collect()
            }
        }
    }

    fn with_predicates(&self, preds: Vec<ColPredicate>) -> Query {
        let mut q = self.base.clone();
        for p in preds {
            q.predicates.push((self.column.table, p));
        }
        q
    }

    /// Instance covering `lo..=hi` via `> lo-1 AND < hi+1`.
    fn range_instance(&self, lo: i64, hi: i64) -> Query {
        self.with_predicates(vec![
            ColPredicate::new(self.column.col, CmpOp::Gt, lo - 1),
            ColPredicate::new(self.column.col, CmpOp::Lt, hi + 1),
        ])
    }

    /// Evaluates the template against an estimator: one `(label, estimate)`
    /// series — a chart line of the demo's Figure 2.
    pub fn evaluate(
        &self,
        samples: &[TableSample],
        value_fn: ValueFn,
        estimator: &dyn CardinalityEstimator,
    ) -> Vec<(i64, f64)> {
        self.instantiate(samples, value_fn)
            .into_iter()
            .map(|inst| (inst.label, estimator.estimate(&inst.query)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_est::oracle::TrueCardinalityOracle;
    use ds_storage::gen::{imdb_database, ImdbConfig};
    use ds_storage::sample::sample_all;

    fn setup() -> (
        ds_storage::catalog::Database,
        Vec<TableSample>,
        QueryTemplate,
    ) {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let samples = sample_all(&db, 64, 3);
        let tpl = QueryTemplate::parse_sql(
            &db,
            "SELECT COUNT(*) FROM title t, movie_keyword mk \
             WHERE mk.movie_id = t.id AND mk.keyword_id = 5 AND t.production_year = ?",
        )
        .unwrap();
        (db, samples, tpl)
    }

    #[test]
    fn parse_rejects_missing_placeholder() {
        let db = imdb_database(&ImdbConfig::tiny(1));
        assert!(QueryTemplate::parse_sql(&db, "SELECT COUNT(*) FROM title").is_err());
    }

    #[test]
    fn identity_instances_use_sample_values() {
        let (db, samples, tpl) = setup();
        let instances = tpl.instantiate(&samples, ValueFn::Identity);
        assert!(!instances.is_empty());
        let year_col = db.resolve("title.production_year").unwrap().col;
        let sample_values = samples[0].distinct_values(year_col);
        assert_eq!(instances.len(), sample_values.len());
        for (inst, v) in instances.iter().zip(&sample_values) {
            assert_eq!(inst.label, *v);
            // Base query predicates + 1 instantiated placeholder.
            assert_eq!(inst.query.num_predicates(), tpl.base.num_predicates() + 1);
            assert!(inst
                .query
                .predicates
                .iter()
                .any(|(_, p)| p.as_cmp() == Some((CmpOp::Eq, *v)) && p.col == year_col));
        }
        // Labels ascend.
        assert!(instances.windows(2).all(|w| w[0].label < w[1].label));
    }

    #[test]
    fn group_by_decade_produces_ranges() {
        let (db, samples, tpl) = setup();
        let instances = tpl.instantiate(&samples, ValueFn::GroupBy(10));
        assert!(!instances.is_empty());
        let oracle = TrueCardinalityOracle::new(&db);
        for inst in &instances {
            // Two range predicates were appended.
            assert_eq!(inst.query.num_predicates(), tpl.base.num_predicates() + 2);
            // Each instance is executable.
            let _ = oracle.estimate(&inst.query);
        }
        // Group labels are decades, strictly ascending.
        assert!(instances.windows(2).all(|w| w[0].label < w[1].label));
    }

    #[test]
    fn buckets_cover_min_to_max_without_overlap() {
        let (_db, samples, tpl) = setup();
        let instances = tpl.instantiate(&samples, ValueFn::Buckets(4));
        assert!(instances.len() <= 4 && !instances.is_empty());
        // Bucket lower bounds ascend and instances have 2 extra predicates.
        assert!(instances.windows(2).all(|w| w[0].label < w[1].label));
    }

    #[test]
    fn bucket_instances_partition_counts() {
        // Sum of per-bucket true counts == count of the base query restricted
        // to the sample's [min, max] value range.
        let (db, samples, tpl) = setup();
        let oracle = TrueCardinalityOracle::new(&db);
        let instances = tpl.instantiate(&samples, ValueFn::Buckets(5));
        let total: f64 = instances.iter().map(|i| oracle.estimate(&i.query)).sum();
        let year_col = db.resolve("title.production_year").unwrap().col;
        let vals = samples[0].distinct_values(year_col);
        let (min, max) = (vals[0], *vals.last().unwrap());
        let whole = tpl.range_instance(min, max);
        assert_eq!(total, oracle.estimate(&whole));
    }

    #[test]
    fn evaluate_produces_series() {
        let (db, samples, tpl) = setup();
        let oracle = TrueCardinalityOracle::new(&db);
        let series = tpl.evaluate(&samples, ValueFn::GroupBy(20), &oracle);
        assert!(!series.is_empty());
        for (_, v) in &series {
            assert!(*v >= 0.0); // oracle reports exact counts, including 0
        }
    }
}
