//! Crash-safe snapshot persistence for served sketches.
//!
//! A trained sketch is the paper's durable artifact — "a wrapper for a
//! (serialized) neural network and a set of materialized samples" — but a
//! serving process also accumulates state worth surviving a crash: the
//! training-time q-error baseline travels inside the sketch bytes, and the
//! rolling [`crate::monitor::QErrorMonitor`] windows carry the online
//! drift signal. A snapshot freezes all of it into one self-validating
//! file.
//!
//! ## On-disk format (`DSNP` version 1)
//!
//! All integers little-endian:
//!
//! ```text
//! magic "DSNP" | version u32
//! name          : u64 length + UTF-8 bytes
//! generation    : u64
//! sketch blob   : u64 length + DeepSketch::to_bytes payload
//! monitor flag  : u64 (0 = absent, 1 = present)
//! [ overall window : u64 count + words
//!   template count : u64
//!   per template   : name string + u64 count + words ]
//! checksum      : FNV-1a 64 over every preceding byte
//! ```
//!
//! The trailing checksum covers the entire body, so any truncation or
//! bit-flip anywhere in the file fails validation — there is no padding or
//! ignored region an undetected corruption could hide in.
//!
//! ## Write protocol
//!
//! [`write_snapshot_bytes`] is atomic against crashes: the payload goes to
//! `<name>.<generation>.tmp`, is fsynced, renamed over the final
//! `<name>.<generation>.snap`, and the directory is fsynced. A crash at
//! any point leaves either the previous generation intact or both the
//! previous generation and a temp/corrupt file that recovery discards —
//! never a torn "latest" file that silently decodes.
//!
//! Fault injection is an explicit [`WriteFault`] parameter (production
//! callers pass [`WriteFault::none`]), so the injection surface costs
//! nothing and cannot be tripped accidentally at runtime.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use ds_nn::serialize::DecodeError;

use crate::monitor::MonitorState;
use crate::sketch::DeepSketch;

/// Magic bytes of a snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"DSNP";

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// File extension of durable snapshots (`<name>.<generation>.snap`).
pub const SNAPSHOT_EXT: &str = "snap";

/// File extension of in-flight temp files, never considered durable.
pub const SNAPSHOT_TMP_EXT: &str = "tmp";

/// Sanity caps on decoded lengths so corrupt prefixes fail fast instead of
/// attempting huge allocations.
const MAX_NAME_LEN: u64 = 256;
const MAX_SKETCH_LEN: u64 = 1 << 31;
const MAX_WORDS_LEN: u64 = 1 << 24;
const MAX_TEMPLATES: u64 = 1 << 20;

/// Typed failures of snapshot encode/decode/IO. Every corruption mode a
/// truncation or bit-flip can produce maps here — the decoder never
/// panics on untrusted bytes.
#[derive(Debug)]
pub enum SnapshotError {
    /// Disk I/O failed.
    Io(std::io::Error),
    /// The file is too short to even hold the header and checksum.
    Truncated,
    /// The magic bytes are not `DSNP` — not a snapshot file.
    BadMagic,
    /// A snapshot from an unknown (future) format version.
    BadVersion(u32),
    /// The trailing checksum does not match the body.
    ChecksumMismatch {
        /// Checksum stored in the file trailer.
        stored: u64,
        /// Checksum recomputed over the body.
        actual: u64,
    },
    /// A structural invariant inside the body failed.
    Corrupt(String),
    /// The embedded sketch blob failed to decode.
    Sketch(DecodeError),
    /// The sketch name is not usable as a snapshot filename.
    InvalidName(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Truncated => write!(f, "snapshot file truncated"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::ChecksumMismatch { stored, actual } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
            ),
            SnapshotError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
            SnapshotError::Sketch(e) => write!(f, "snapshot sketch payload: {e}"),
            SnapshotError::InvalidName(n) => write!(f, "invalid sketch name for snapshot: '{n}'"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// FNV-1a 64-bit checksum — fast, dependency-free, and plenty to detect
/// the accidental corruption (torn writes, bit rot) snapshots defend
/// against. Not a cryptographic integrity guarantee.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hex-encodes snapshot bytes for wire shipping: a single whitespace-free
/// token that survives the serving layer's one-line text protocol
/// (`SNAPSHOT`/`SYNC`). Lowercase, two digits per byte.
pub fn encode_hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decodes [`encode_hex`] output back into bytes. `None` on odd length or
/// any non-hex character — a garbled transfer fails here before the
/// checksummed body is even looked at.
pub fn decode_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digit = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    s.as_bytes()
        .chunks_exact(2)
        .map(|pair| Some(digit(pair[0])? << 4 | digit(pair[1])?))
        .collect()
}

/// True when `name` can appear in a snapshot filename: non-empty, at most
/// 128 bytes, and limited to `[A-Za-z0-9._-]` without leading dots (no
/// path separators, no hidden files, round-trips through the
/// `<name>.<generation>.snap` filename scheme).
pub fn valid_snapshot_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// The durable path of `name`'s snapshot at `generation`. Generations are
/// zero-padded so lexical directory order equals generation order.
pub fn snapshot_path(dir: &Path, name: &str, generation: u64) -> PathBuf {
    dir.join(format!("{name}.{generation:020}.{SNAPSHOT_EXT}"))
}

/// Parses `<name>.<generation>.snap` back into `(name, generation)`.
/// Returns `None` for temp files, quarantined debris, and anything else.
pub fn parse_snapshot_filename(file_name: &str) -> Option<(String, u64)> {
    let stem = file_name.strip_suffix(&format!(".{SNAPSHOT_EXT}"))?;
    let (name, generation) = stem.rsplit_once('.')?;
    // Zero-padded fixed-width generations only; rejects e.g. "a.1.snap"
    // debris that this writer never produced.
    if generation.len() != 20 || !generation.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let generation: u64 = generation.parse().ok()?;
    if !valid_snapshot_name(name) {
        return None;
    }
    Some((name.to_string(), generation))
}

/// A decoded snapshot: everything needed to resume serving a sketch where
/// the crashed process left off.
#[derive(Debug)]
pub struct SketchSnapshot {
    /// Store name the sketch was registered under.
    pub name: String,
    /// Store generation the snapshot captured.
    pub generation: u64,
    /// The sketch itself (model, samples, q-error baseline).
    pub sketch: DeepSketch,
    /// Rolling q-error monitor windows, when the sketch had feedback.
    pub monitor: Option<MonitorState>,
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn put_words(buf: &mut Vec<u8>, words: &[u64]) {
    put_u64(buf, words.len() as u64);
    for &w in words {
        put_u64(buf, w);
    }
}

/// Serializes one sketch (plus optional monitor state) into the checksummed
/// `DSNP` byte layout described in the module docs.
pub fn encode_snapshot(
    name: &str,
    generation: u64,
    sketch: &DeepSketch,
    monitor: Option<&MonitorState>,
) -> Vec<u8> {
    let sketch_bytes = sketch.to_bytes();
    let mut buf = Vec::with_capacity(sketch_bytes.len() + 1024);
    buf.extend_from_slice(&SNAPSHOT_MAGIC);
    buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    put_str(&mut buf, name);
    put_u64(&mut buf, generation);
    put_u64(&mut buf, sketch_bytes.len() as u64);
    buf.extend_from_slice(&sketch_bytes);
    match monitor {
        None => put_u64(&mut buf, 0),
        Some(state) => {
            put_u64(&mut buf, 1);
            put_words(&mut buf, &state.overall);
            put_u64(&mut buf, state.templates.len() as u64);
            for (template, words) in &state.templates {
                put_str(&mut buf, template);
                put_words(&mut buf, words);
            }
        }
    }
    let sum = checksum(&buf);
    put_u64(&mut buf, sum);
    buf
}

/// Bounded little-endian reader over the snapshot body.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.buf.len() < n {
            return Err(SnapshotError::Truncated);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn bounded_len(&mut self, cap: u64, what: &str) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        if n > cap {
            return Err(SnapshotError::Corrupt(format!(
                "{what} length {n} too large"
            )));
        }
        Ok(n as usize)
    }

    fn string(&mut self, what: &str) -> Result<String, SnapshotError> {
        let n = self.bounded_len(MAX_NAME_LEN, what)?;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| SnapshotError::Corrupt(format!("{what} is not UTF-8")))
    }

    fn words(&mut self, what: &str) -> Result<Vec<u64>, SnapshotError> {
        let n = self.bounded_len(MAX_WORDS_LEN, what)?;
        let raw = self.take(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }
}

/// Decodes and fully validates a snapshot. Corruption anywhere — header,
/// body, checksum trailer — returns a typed [`SnapshotError`]; this
/// function never panics on arbitrary input.
pub fn decode_snapshot(bytes: &[u8]) -> Result<SketchSnapshot, SnapshotError> {
    // Header + checksum trailer are the minimum plausible file.
    if bytes.len() < 4 + 4 + 8 {
        return Err(SnapshotError::Truncated);
    }
    if bytes[..4] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version == 0 || version > SNAPSHOT_VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    let actual = checksum(body);
    if stored != actual {
        return Err(SnapshotError::ChecksumMismatch { stored, actual });
    }
    let mut c = Cursor { buf: &body[8..] };
    let name = c.string("sketch name")?;
    if !valid_snapshot_name(&name) {
        return Err(SnapshotError::Corrupt(format!(
            "invalid sketch name '{name}'"
        )));
    }
    let generation = c.u64()?;
    let sketch_len = c.bounded_len(MAX_SKETCH_LEN, "sketch blob")?;
    let sketch_bytes = c.take(sketch_len)?;
    let sketch = DeepSketch::from_bytes(sketch_bytes).map_err(SnapshotError::Sketch)?;
    let monitor = match c.u64()? {
        0 => None,
        1 => {
            let overall = c.words("overall window")?;
            let n = c.bounded_len(MAX_TEMPLATES, "template count")?;
            let mut templates = Vec::with_capacity(n);
            for _ in 0..n {
                let template = c.string("template name")?;
                let words = c.words("template window")?;
                templates.push((template, words));
            }
            Some(MonitorState { overall, templates })
        }
        other => {
            return Err(SnapshotError::Corrupt(format!("bad monitor flag {other}")));
        }
    };
    if !c.buf.is_empty() {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes after snapshot body",
            c.buf.len()
        )));
    }
    Ok(SketchSnapshot {
        name,
        generation,
        sketch,
        monitor,
    })
}

/// Deterministic write-path fault, threaded in explicitly by crash tests.
/// Production callers pass [`WriteFault::none`]; the faults model the
/// failure points of the atomic write protocol:
///
/// * `truncate_at` — the process died after writing only a prefix;
/// * `bit_flip` — the device corrupted a byte (mask XORed at an offset);
/// * `crash_before_rename` — the temp file was fully written and synced
///   but the publish rename never happened;
/// * `skip_fsync` — the data never reached the platter (models a crash
///   racing the page cache).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteFault {
    /// Keep only this many bytes of the payload.
    pub truncate_at: Option<usize>,
    /// XOR this mask into the byte at this offset (ignored when out of range).
    pub bit_flip: Option<(usize, u8)>,
    /// Stop after the temp write, before the rename publishes the file.
    pub crash_before_rename: bool,
    /// Skip the file and directory fsyncs.
    pub skip_fsync: bool,
}

impl WriteFault {
    /// No fault: the production write path.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when every fault knob is off.
    pub fn is_none(&self) -> bool {
        *self == Self::default()
    }
}

/// Outcome of a (possibly fault-injected) snapshot write.
#[derive(Debug)]
pub enum WriteOutcome {
    /// The snapshot is durable at this path.
    Durable(PathBuf),
    /// The injected crash stopped the protocol before publish; only the
    /// temp file at this path exists.
    CrashedBeforeRename(PathBuf),
}

impl WriteOutcome {
    /// The durable path, panicking on a simulated crash — convenience for
    /// production callers that always pass [`WriteFault::none`].
    pub fn durable(self) -> PathBuf {
        match self {
            WriteOutcome::Durable(p) => p,
            WriteOutcome::CrashedBeforeRename(_) => {
                unreachable!("crash faults are only injected by tests")
            }
        }
    }
}

/// Atomically publishes pre-encoded snapshot bytes as
/// `<dir>/<name>.<generation>.snap` using the write-temp → fsync → rename
/// → fsync-dir protocol, applying `fault` at the corresponding step. See
/// [`WriteFault`] for what each injected fault models.
pub fn write_snapshot_bytes(
    dir: &Path,
    name: &str,
    generation: u64,
    bytes: &[u8],
    fault: &WriteFault,
) -> Result<WriteOutcome, SnapshotError> {
    if !valid_snapshot_name(name) {
        return Err(SnapshotError::InvalidName(name.to_string()));
    }
    fs::create_dir_all(dir)?;
    let mut payload = bytes;
    let truncated;
    if let Some(keep) = fault.truncate_at {
        truncated = &bytes[..keep.min(bytes.len())];
        payload = truncated;
    }
    let mut flipped;
    if let Some((offset, mask)) = fault.bit_flip {
        if offset < payload.len() && mask != 0 {
            flipped = payload.to_vec();
            flipped[offset] ^= mask;
            payload = &flipped;
        }
    }
    let tmp = dir.join(format!("{name}.{generation:020}.{SNAPSHOT_TMP_EXT}"));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(payload)?;
        if !fault.skip_fsync {
            f.sync_all()?;
        }
    }
    if fault.crash_before_rename {
        return Ok(WriteOutcome::CrashedBeforeRename(tmp));
    }
    let path = snapshot_path(dir, name, generation);
    fs::rename(&tmp, &path)?;
    if !fault.skip_fsync {
        // Make the rename itself durable: fsync the containing directory.
        File::open(dir)?.sync_all()?;
    }
    Ok(WriteOutcome::Durable(path))
}

/// Encodes and atomically publishes a snapshot (production path, no
/// faults). Returns the durable path.
pub fn write_snapshot(
    dir: &Path,
    name: &str,
    generation: u64,
    sketch: &DeepSketch,
    monitor: Option<&MonitorState>,
) -> Result<PathBuf, SnapshotError> {
    let bytes = encode_snapshot(name, generation, sketch, monitor);
    Ok(write_snapshot_bytes(dir, name, generation, &bytes, &WriteFault::none())?.durable())
}

/// Reads and validates one snapshot file.
pub fn read_snapshot(path: &Path) -> Result<SketchSnapshot, SnapshotError> {
    decode_snapshot(&fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_stable_and_sensitive() {
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        let a = checksum(b"deep sketch");
        assert_eq!(a, checksum(b"deep sketch"), "deterministic");
        assert_ne!(a, checksum(b"deep sketcH"));
        assert_ne!(a, checksum(b"deep sketc"));
    }

    #[test]
    fn hex_roundtrips_and_rejects_garble() {
        let bytes: Vec<u8> = (0..=255u8).collect();
        let hex = encode_hex(&bytes);
        assert_eq!(hex.len(), 512);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(decode_hex(&hex).unwrap(), bytes);
        assert_eq!(decode_hex(&hex.to_ascii_uppercase()).unwrap(), bytes);
        assert_eq!(decode_hex(""), Some(Vec::new()));
        assert_eq!(decode_hex("abc"), None, "odd length");
        assert_eq!(decode_hex("zz"), None, "non-hex digit");
        assert_eq!(decode_hex("a b1"), None, "embedded space");
    }

    #[test]
    fn filenames_roundtrip_and_reject_debris() {
        let p = snapshot_path(Path::new("/x"), "imdb", 42);
        let file = p.file_name().unwrap().to_str().unwrap();
        assert_eq!(parse_snapshot_filename(file), Some(("imdb".into(), 42)));
        // Lexical order equals generation order thanks to zero padding.
        let older = snapshot_path(Path::new("/x"), "imdb", 9);
        assert!(older.file_name().unwrap() < p.file_name().unwrap());
        for bad in [
            "imdb.42.snap",                   // unpadded
            "imdb.00000000000000000042.tmp",  // temp file
            "imdb.00000000000000000042",      // no extension
            ".00000000000000000042.snap",     // empty name
            "a/b.00000000000000000042.snap",  // path separator
            "imdb.0000000000000000004x.snap", // non-digit generation
            "quarantine",                     // directory debris
        ] {
            assert_eq!(parse_snapshot_filename(bad), None, "{bad}");
        }
    }

    #[test]
    fn name_validation_blocks_path_tricks() {
        assert!(valid_snapshot_name("imdb"));
        assert!(valid_snapshot_name("imdb-v2.full_01"));
        for bad in [
            "",
            ".hidden",
            "a/b",
            "a\\b",
            "a b",
            "a\nb",
            &"x".repeat(129),
        ] {
            assert!(!valid_snapshot_name(bad), "{bad:?}");
        }
    }

    #[test]
    fn decoder_rejects_headers_without_panicking() {
        assert!(matches!(
            decode_snapshot(b""),
            Err(SnapshotError::Truncated)
        ));
        assert!(matches!(
            decode_snapshot(b"NOPE00000000000000000000"),
            Err(SnapshotError::BadMagic)
        ));
        let mut future = Vec::new();
        future.extend_from_slice(&SNAPSHOT_MAGIC);
        future.extend_from_slice(&999u32.to_le_bytes());
        future.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            decode_snapshot(&future),
            Err(SnapshotError::BadVersion(999))
        ));
        // Valid header, garbage checksum trailer.
        let mut bad_sum = Vec::new();
        bad_sum.extend_from_slice(&SNAPSHOT_MAGIC);
        bad_sum.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        bad_sum.extend_from_slice(&[7u8; 16]);
        assert!(matches!(
            decode_snapshot(&bad_sum),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn write_faults_apply_deterministically() {
        let dir = std::env::temp_dir().join(format!("ds_snap_fault_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let bytes: Vec<u8> = (0..64u8).collect();

        // Clean write publishes the final file and removes the temp.
        let out = write_snapshot_bytes(&dir, "s", 1, &bytes, &WriteFault::none()).unwrap();
        let WriteOutcome::Durable(path) = out else {
            panic!("clean write must be durable")
        };
        assert_eq!(std::fs::read(&path).unwrap(), bytes);
        assert!(!dir.join("s.00000000000000000001.tmp").exists());

        // Truncation keeps a prefix.
        let fault = WriteFault {
            truncate_at: Some(10),
            ..WriteFault::none()
        };
        let out = write_snapshot_bytes(&dir, "s", 2, &bytes, &fault).unwrap();
        assert_eq!(std::fs::read(out.durable()).unwrap(), &bytes[..10]);

        // Bit flip XORs exactly one byte.
        let fault = WriteFault {
            bit_flip: Some((3, 0x80)),
            ..WriteFault::none()
        };
        let written = std::fs::read(
            write_snapshot_bytes(&dir, "s", 3, &bytes, &fault)
                .unwrap()
                .durable(),
        )
        .unwrap();
        assert_eq!(written[3], bytes[3] ^ 0x80);
        assert_eq!(written[..3], bytes[..3]);
        assert_eq!(written[4..], bytes[4..]);

        // Crash-before-rename leaves only the temp file.
        let fault = WriteFault {
            crash_before_rename: true,
            ..WriteFault::none()
        };
        let out = write_snapshot_bytes(&dir, "s", 4, &bytes, &fault).unwrap();
        let WriteOutcome::CrashedBeforeRename(tmp) = out else {
            panic!("crash fault must not publish")
        };
        assert!(tmp.exists());
        assert!(!snapshot_path(&dir, "s", 4).exists());

        assert!(matches!(
            write_snapshot_bytes(&dir, "../evil", 1, &bytes, &WriteFault::none()),
            Err(SnapshotError::InvalidName(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
