//! The Deep Sketch itself: "essentially a wrapper for a (serialized) neural
//! network and a set of materialized samples". It consumes a SQL query and
//! returns a cardinality estimate (Figure 1b), fits in a few MiB, and
//! answers within milliseconds.

use std::cell::RefCell;

use ds_est::{CardinalityEstimator, EstimateError};
use ds_nn::frozen::{FrozenModel, FrozenScratch, QuantMode};
use ds_nn::loss::LabelNormalizer;
use ds_nn::serialize::{DecodeError, Decoder, Encoder};
use ds_obs::HistogramSnapshot;
use ds_query::query::Query;
use ds_storage::bitmap::Bitmap;
use ds_storage::catalog::{ColRef, TableId};
use ds_storage::column::Column;
use ds_storage::exec::JoinEdge;
use ds_storage::sample::TableSample;
use ds_storage::table::Table;

use crate::featurize::{FeatureSchema, Featurizer, QueryIndexFeatures};
use crate::mscn::{ForwardCache, MscnModel};

const MAGIC: &[u8; 4] = b"DSKT";
/// Current serialization version. Version 2 appended the optional
/// training-time q-error baseline; version 3 appended the optional frozen
/// inference artifact (with its quantization mode); version 4 inserted
/// the feature-schema generation and per-predicate bitmap width after
/// the `use_bitmaps` flag. Older blobs still load: v1 gets no baseline,
/// v1 and v2 get a fresh f32 freeze on decode, and everything before v4
/// decodes as feature schema v1 — the byte-identical paper encoding — so
/// pre-existing snapshots keep answering exactly as they always did.
const VERSION: u32 = 4;
/// Oldest version [`DeepSketch::from_bytes`] accepts.
const MIN_VERSION: u32 = 1;

/// Queries per serving batch. Bounds the flattened set matrices (keeping
/// them cache-resident) and is the unit of work parallelized across
/// serving threads. Chunking never changes results: every query's rows
/// flow through row-independent kernels and its own pooling segments.
const SERVE_CHUNK: usize = 256;

/// Accuracy gate for freezing (see [`DeepSketch::freeze_gated`]): the worst
/// per-probe q-style ratio `max(frozen/reference, reference/frozen)` must
/// stay at or below this for the artifact to be adopted. The f32 mode is
/// bit-identical to the reference kernels, so its delta is exactly 1.0;
/// this bound is what actually guards int8 quantization.
pub const FREEZE_GATE_MAX_DELTA: f64 = 1.05;

thread_local! {
    /// Per-thread scratch of the fused featurize-and-forward path: index
    /// lists plus layer activations. Keeps single-query serving
    /// allocation-free after the first estimate on each thread.
    static FUSED_SCRATCH: RefCell<(QueryIndexFeatures, FrozenScratch)> =
        RefCell::new((QueryIndexFeatures::default(), FrozenScratch::new()));
}

/// Summary card of a trained sketch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchInfo {
    /// Source database name.
    pub database: String,
    /// Tables in the featurization vocabulary.
    pub tables: usize,
    /// Joins in the vocabulary.
    pub joins: usize,
    /// Predicate columns in the vocabulary.
    pub predicate_columns: usize,
    /// MSCN hidden width.
    pub hidden_units: usize,
    /// Scalar model parameters.
    pub model_params: usize,
    /// Nominal sample size per table.
    pub sample_size: usize,
    /// Total materialized sample rows across tables.
    pub sample_rows: usize,
    /// Serialized size in bytes.
    pub footprint_bytes: usize,
    /// Largest cardinality representable by the label normalizer.
    pub max_label: u64,
}

impl std::fmt::Display for SketchInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sketch[{}]: {} tables, {} joins, {} pred-cols; hidden {}, {} params; \
             {} sample rows ({}/table); {:.2} MiB; max label {}",
            self.database,
            self.tables,
            self.joins,
            self.predicate_columns,
            self.hidden_units,
            self.model_params,
            self.sample_rows,
            self.sample_size,
            self.footprint_bytes as f64 / (1024.0 * 1024.0),
            self.max_label
        )
    }
}

/// A trained Deep Sketch: MSCN model + featurization vocabulary +
/// materialized base-table samples + label normalizer. Self-contained: a
/// deserialized sketch estimates without access to the original database.
#[derive(Debug, Clone)]
pub struct DeepSketch {
    model: MscnModel,
    featurizer: Featurizer,
    samples: Vec<TableSample>,
    normalizer: LabelNormalizer,
    database_name: String,
    name: String,
    /// Serving threads for [`DeepSketch::estimate_batch`]. A runtime knob:
    /// never serialized, never affects results.
    threads: usize,
    /// Training-time holdout q-error distribution (scaled ×1000 into log₂
    /// buckets) — the accuracy the shipped weights actually achieved, and
    /// the reference the online drift monitor compares rolling feedback
    /// against. `None` for sketches built before the monitor existed
    /// (version-1 blobs) or trained without a validation split.
    baseline: Option<HistogramSnapshot>,
    /// The serving-only frozen artifact: gather-friendly f32 (or int8)
    /// weights converted once from the trained model. `None` when freezing
    /// was skipped or failed its accuracy gate — estimates then run the
    /// reference batch path.
    frozen: Option<FrozenModel>,
}

impl DeepSketch {
    /// Assembles a sketch from trained parts (used by
    /// [`crate::builder::SketchBuilder`]).
    pub fn from_parts(
        model: MscnModel,
        featurizer: Featurizer,
        samples: Vec<TableSample>,
        normalizer: LabelNormalizer,
        database_name: impl Into<String>,
    ) -> Self {
        let database_name = database_name.into();
        let name = format!("Deep Sketch ({database_name})");
        Self {
            model,
            featurizer,
            samples,
            normalizer,
            database_name,
            name,
            threads: 1,
            baseline: None,
            frozen: None,
        }
    }

    /// Sets the serving thread count for [`DeepSketch::estimate_batch`].
    /// Estimates are bit-identical at any value; this only affects speed.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Attaches the training-time q-error baseline (scaled ×1000, see
    /// [`crate::monitor::QERR_SCALE`]). Serialized with the sketch.
    pub fn set_baseline(&mut self, baseline: HistogramSnapshot) {
        self.baseline = Some(baseline);
    }

    /// The training-time q-error baseline, if the sketch carries one.
    pub fn baseline(&self) -> Option<&HistogramSnapshot> {
        self.baseline.as_ref()
    }

    /// The frozen inference artifact, if one is attached.
    pub fn frozen(&self) -> Option<&FrozenModel> {
        self.frozen.as_ref()
    }

    /// Discards the frozen artifact: estimates fall back to the reference
    /// batch path (and serialization drops the frozen section).
    pub fn clear_frozen(&mut self) {
        self.frozen = None;
    }

    /// Freezes the trained model into the serving artifact without an
    /// accuracy check. For f32 this is always safe (the fused path is
    /// bit-identical to the reference kernels); int8 callers should prefer
    /// [`DeepSketch::freeze_gated`].
    pub fn freeze(&mut self, mode: QuantMode) {
        self.frozen = Some(self.model.freeze(mode));
    }

    /// Freezes with an accuracy gate: estimates every probe query through
    /// both the reference path and the candidate artifact and adopts the
    /// artifact only if the worst q-style ratio `max(f/r, r/f)` stays at
    /// or below `max_delta` (see [`FREEZE_GATE_MAX_DELTA`]). Returns the
    /// observed worst ratio either way: `Ok` when the artifact was
    /// adopted, `Err` when it failed the gate and the previous frozen
    /// state was kept.
    pub fn freeze_gated(
        &mut self,
        mode: QuantMode,
        probes: &[Query],
        max_delta: f64,
    ) -> Result<f64, f64> {
        let prior = self.frozen.take();
        let reference = self.estimate_batch(probes);
        let candidate = self.model.freeze(mode);
        let mut feats = QueryIndexFeatures::default();
        let mut scratch = FrozenScratch::new();
        let mut worst = 1.0f64;
        for (q, &r) in probes.iter().zip(&reference) {
            self.featurizer
                .featurize_indices(q, &self.samples, &mut feats);
            let y =
                candidate.forward_query(&feats.tables, &feats.joins, &feats.preds, &mut scratch);
            let f = self.normalizer.denormalize(y).max(1.0);
            worst = worst.max((f / r).max(r / f));
        }
        if worst <= max_delta {
            self.frozen = Some(candidate);
            Ok(worst)
        } else {
            self.frozen = prior;
            Err(worst)
        }
    }

    /// Shape agreement between the frozen artifact and the reference
    /// model: `None` when consistent (or when no artifact is attached),
    /// otherwise a description of the first mismatch. Checked by
    /// [`DeepSketch::validate`] on every request and by
    /// [`DeepSketch::from_bytes`] on decode.
    pub fn frozen_shape_mismatch(&self) -> Option<String> {
        let frozen = self.frozen.as_ref()?;
        let h = self.model.hidden();
        if frozen.hidden() != h {
            return Some(format!(
                "frozen hidden width {} disagrees with reference {h}",
                frozen.hidden()
            ));
        }
        let (td, jd, pd) = self.model.input_dims();
        let expect = [
            ("tables1", td, h),
            ("tables2", h, h),
            ("joins1", jd, h),
            ("joins2", h, h),
            ("preds1", pd, h),
            ("preds2", h, h),
            ("out1", 3 * h, h),
            ("out2", h, 1),
        ];
        for (l, &(name, in_d, out_d)) in frozen.layers().iter().zip(expect.iter()) {
            if l.in_dim() != in_d || l.out_dim() != out_d {
                return Some(format!(
                    "frozen layer {name} is {}x{}, reference expects {in_d}x{out_d}",
                    l.in_dim(),
                    l.out_dim()
                ));
            }
        }
        None
    }

    /// One estimate through the fused featurize-and-forward path: sparse
    /// index lists gathered straight into the frozen weight rows, no
    /// feature tensor ever materialized.
    fn estimate_fused(&self, frozen: &FrozenModel, query: &Query) -> f64 {
        FUSED_SCRATCH.with(|cell| {
            let (feats, scratch) = &mut *cell.borrow_mut();
            self.featurizer
                .featurize_indices(query, &self.samples, feats);
            let y = frozen.forward_query(&feats.tables, &feats.joins, &feats.preds, scratch);
            self.normalizer.denormalize(y).max(1.0)
        })
    }

    /// Estimated cardinality of one query (≥ 1). Served through the fused
    /// frozen path when an artifact is attached (bit-identical for f32,
    /// gate-bounded for int8); the reference batch path otherwise.
    pub fn estimate_one(&self, query: &Query) -> f64 {
        if let Some(frozen) = &self.frozen {
            return self.estimate_fused(frozen, query);
        }
        self.estimate_batch(std::slice::from_ref(query))[0]
    }

    /// Estimates a batch of queries: featurizes and forwards
    /// `SERVE_CHUNK`-query chunks, spreading chunks across the
    /// configured serving threads. Returns exactly what a loop of
    /// [`DeepSketch::estimate_one`] calls would.
    pub fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        if queries.is_empty() {
            return Vec::new();
        }
        // Int8 artifacts are not bit-identical to the reference kernels,
        // so the batch contract ("exactly the looped estimate_one
        // results") forces the fused path here too. F32 artifacts *are*
        // bit-identical (see `ds_nn::frozen`), so the chunked reference
        // path below remains the batched fast path.
        if let Some(frozen) = &self.frozen {
            if frozen.mode() == QuantMode::Int8 {
                return queries
                    .iter()
                    .map(|q| self.estimate_fused(frozen, q))
                    .collect();
            }
        }
        let mut out = vec![0.0f64; queries.len()];
        let n_chunks = queries.len().div_ceil(SERVE_CHUNK);
        let threads = self.threads.min(n_chunks);
        if threads <= 1 {
            let mut cache = ForwardCache::new();
            for (qs, os) in queries.chunks(SERVE_CHUNK).zip(out.chunks_mut(SERVE_CHUNK)) {
                self.estimate_chunk(qs, os, &mut cache);
            }
        } else {
            // Contiguous spans of whole chunks per worker; each worker owns
            // a disjoint slice of the output and its own scratch cache.
            let span = n_chunks.div_ceil(threads) * SERVE_CHUNK;
            std::thread::scope(|s| {
                for (qs, os) in queries.chunks(span).zip(out.chunks_mut(span)) {
                    s.spawn(move || {
                        let mut cache = ForwardCache::new();
                        for (q, o) in qs.chunks(SERVE_CHUNK).zip(os.chunks_mut(SERVE_CHUNK)) {
                            self.estimate_chunk(q, o, &mut cache);
                        }
                    });
                }
            });
        }
        out
    }

    /// Featurizes and forwards one chunk into its output slice.
    fn estimate_chunk(&self, queries: &[Query], out: &mut [f64], cache: &mut ForwardCache) {
        let batch = self.featurizer.batch_queries(queries, &self.samples);
        self.model.forward_into(&batch, cache);
        for (o, &y) in out.iter_mut().zip(cache.output().data()) {
            *o = self.normalizer.denormalize(y).max(1.0);
        }
    }

    /// Checks that every table and predicate column the query references
    /// exists in this sketch's vocabulary and shipped samples — the
    /// precondition for [`DeepSketch::estimate_batch`] to be panic-free.
    /// Queries parsed against the database the sketch was trained over
    /// always pass; queries from a different (larger) schema may not.
    pub fn validate(&self, query: &Query) -> Result<(), EstimateError> {
        // A frozen artifact whose shapes disagree with the reference
        // weights would gather out of bounds — refuse to serve rather
        // than panic. Cheap: eight integer comparisons.
        if let Some(msg) = self.frozen_shape_mismatch() {
            return Err(EstimateError::Unavailable(msg));
        }
        let known = self.samples.len();
        let check_table = |t: usize| {
            if t >= known {
                Err(EstimateError::UnknownTable {
                    table: t,
                    known_tables: known,
                })
            } else {
                Ok(())
            }
        };
        for &t in &query.tables {
            check_table(t.0)?;
        }
        for j in &query.joins {
            check_table(j.left.table.0)?;
            check_table(j.right.table.0)?;
        }
        for (t, p) in &query.predicates {
            check_table(t.0)?;
            let cols = self.samples[t.0].rows().columns().len();
            if p.col >= cols {
                return Err(EstimateError::UnknownColumn {
                    table: t.0,
                    col: p.col,
                });
            }
        }
        Ok(())
    }

    /// The materialized samples shipped with the sketch.
    pub fn samples(&self) -> &[TableSample] {
        &self.samples
    }

    /// The featurization vocabulary.
    pub fn featurizer(&self) -> &Featurizer {
        &self.featurizer
    }

    /// The underlying model.
    pub fn model(&self) -> &MscnModel {
        &self.model
    }

    /// The label normalizer.
    pub fn normalizer(&self) -> &LabelNormalizer {
        &self.normalizer
    }

    /// Name of the database the sketch was trained over.
    pub fn database_name(&self) -> &str {
        &self.database_name
    }

    /// Serialized size in bytes — the paper advertises "a few MiBs".
    pub fn footprint_bytes(&self) -> usize {
        self.to_bytes().len()
    }

    /// A human-readable summary of the sketch (the demo's sketch card).
    pub fn info(&self) -> SketchInfo {
        let sample_rows = self.samples.iter().map(TableSample::len).sum();
        SketchInfo {
            database: self.database_name.clone(),
            tables: self.featurizer.num_tables(),
            joins: self.featurizer.joins().len(),
            predicate_columns: self.featurizer.columns().len(),
            hidden_units: self.model.hidden(),
            model_params: self.model.num_params(),
            sample_size: self.featurizer.sample_size(),
            sample_rows,
            footprint_bytes: self.footprint_bytes(),
            max_label: self.normalizer.bounds().1.exp().round() as u64,
        }
    }

    /// Serializes the sketch to a self-contained byte blob.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.header(MAGIC, VERSION);
        e.string(&self.database_name);
        let (lo, hi) = self.normalizer.bounds();
        e.f64(lo);
        e.f64(hi);

        // Featurizer.
        e.u64(self.featurizer.num_tables() as u64);
        e.u64(self.featurizer.sample_size() as u64);
        e.u64(self.featurizer.use_bitmaps() as u64);
        // Feature schema (v4+): generation tag + per-predicate bitmap bits.
        e.u64(self.featurizer.schema().tag() as u64);
        e.u64(self.featurizer.pred_bitmap_bits() as u64);
        e.u64(self.featurizer.joins().len() as u64);
        for j in self.featurizer.joins() {
            e.u64(j.left.table.0 as u64);
            e.u64(j.left.col as u64);
            e.u64(j.right.table.0 as u64);
            e.u64(j.right.col as u64);
        }
        e.u64(self.featurizer.columns().len() as u64);
        for (c, &(lo, hi)) in self
            .featurizer
            .columns()
            .iter()
            .zip(self.featurizer.col_bounds())
        {
            e.u64(c.table.0 as u64);
            e.u64(c.col as u64);
            e.f64(lo);
            e.f64(hi);
        }

        // Samples.
        e.u64(self.samples.len() as u64);
        for s in &self.samples {
            e.u64(s.table_id().0 as u64);
            e.u64(s.nominal_size() as u64);
            e.u64_slice(&s.row_ids().iter().map(|&r| r as u64).collect::<Vec<_>>());
            let t = s.rows();
            e.string(t.name());
            e.u64(t.columns().len() as u64);
            for col in t.columns() {
                e.string(col.name());
                e.i64_slice(col.data());
                match col.null_mask() {
                    Some(bm) => {
                        e.u64(bm.len() as u64);
                        e.u64_slice(bm.words());
                    }
                    None => {
                        e.u64(0);
                        e.u64_slice(&[]);
                    }
                }
            }
        }

        // Model.
        self.model.encode(&mut e);

        // Accuracy baseline (v2+): optional flag + histogram words.
        match &self.baseline {
            Some(b) => {
                e.u64(1);
                e.u64_slice(&b.to_words());
            }
            None => e.u64(0),
        }

        // Frozen inference artifact (v3+): optional flag + payload, with
        // the quantization mode recorded inside the payload.
        match &self.frozen {
            Some(f) => {
                e.u64(1);
                f.encode_into(&mut e);
            }
            None => e.u64(0),
        }
        e.finish()
    }

    /// Deserializes a sketch written by [`DeepSketch::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(bytes);
        let version = d.header(MAGIC)?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(DecodeError::BadHeader(format!(
                "unsupported sketch version {version}"
            )));
        }
        let database_name = d.string()?;
        let lo = d.f64()?;
        let hi = d.f64()?;
        if hi <= lo {
            return Err(DecodeError::Corrupt("bad normalizer bounds".into()));
        }
        let normalizer = LabelNormalizer::from_bounds(lo, hi);

        // Featurizer.
        let num_tables = d.u64()? as usize;
        let sample_size = d.u64()? as usize;
        let use_bitmaps = d.u64()? != 0;
        // Feature schema: everything before v4 is the paper's encoding.
        let (schema, pred_bitmap_bits) = if version >= 4 {
            let tag = d.u64()?;
            let schema = u8::try_from(tag)
                .ok()
                .and_then(FeatureSchema::from_tag)
                .ok_or_else(|| DecodeError::Corrupt(format!("unknown feature schema tag {tag}")))?;
            let bits = d.u64()? as usize;
            if schema == FeatureSchema::V1 && bits != 0 {
                return Err(DecodeError::Corrupt(
                    "schema v1 with per-predicate bitmap bits".into(),
                ));
            }
            if bits > sample_size {
                return Err(DecodeError::Corrupt(
                    "per-predicate bitmap wider than sample".into(),
                ));
            }
            (schema, bits)
        } else {
            (FeatureSchema::V1, 0)
        };
        // Record counts are validated against the remaining input (a join
        // is 4 u64s, a column entry 2 u64s + 2 f64s, …) so a corrupt
        // length prefix fails typed instead of panicking in
        // `Vec::with_capacity` — found by the snapshot fuzz smoke.
        let n_joins = d.count(32)?;
        let mut joins = Vec::with_capacity(n_joins);
        for _ in 0..n_joins {
            let lt = d.u64()? as usize;
            let lc = d.u64()? as usize;
            let rt = d.u64()? as usize;
            let rc = d.u64()? as usize;
            joins.push(JoinEdge::new(
                ColRef::new(TableId(lt), lc),
                ColRef::new(TableId(rt), rc),
            ));
        }
        let n_cols = d.count(32)?;
        let mut columns = Vec::with_capacity(n_cols);
        let mut bounds = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let t = d.u64()? as usize;
            let c = d.u64()? as usize;
            columns.push(ColRef::new(TableId(t), c));
            bounds.push((d.f64()?, d.f64()?));
        }
        let featurizer = Featurizer::from_parts(
            num_tables,
            sample_size,
            use_bitmaps,
            joins,
            columns,
            bounds,
            schema,
            pred_bitmap_bits,
        );

        // Samples.
        let n_samples = d.count(40)?;
        let mut samples = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            let table_id = TableId(d.u64()? as usize);
            let nominal = d.u64()? as usize;
            let row_ids: Vec<u32> = d
                .u64_vec()?
                .into_iter()
                .map(|r| {
                    u32::try_from(r).map_err(|_| DecodeError::Corrupt("row id overflow".into()))
                })
                .collect::<Result<_, _>>()?;
            let tname = d.string()?;
            let n_tcols = d.count(32)?;
            let mut cols = Vec::with_capacity(n_tcols);
            for _ in 0..n_tcols {
                let cname = d.string()?;
                let data = d.i64_vec()?;
                let bm_len = d.u64()? as usize;
                let words = d.u64_vec()?;
                if bm_len == 0 {
                    cols.push(Column::new(cname, data));
                } else {
                    if words.len() != bm_len.div_ceil(64) || data.len() != bm_len {
                        return Err(DecodeError::Corrupt("null mask mismatch".into()));
                    }
                    cols.push(Column::with_nulls(
                        cname,
                        data,
                        Bitmap::from_words(words, bm_len),
                    ));
                }
            }
            if cols.iter().any(|c| c.len() != row_ids.len()) {
                return Err(DecodeError::Corrupt("sample column length mismatch".into()));
            }
            if nominal < row_ids.len() {
                return Err(DecodeError::Corrupt("nominal sample size too small".into()));
            }
            let table = Table::new(tname, cols);
            samples.push(TableSample::from_parts(table_id, row_ids, table, nominal));
        }

        // Model.
        let model = MscnModel::decode(&mut d)?;

        // Accuracy baseline: absent before version 2.
        let baseline = if version >= 2 && d.u64()? != 0 {
            let words = d.u64_vec()?;
            Some(
                HistogramSnapshot::from_words(&words)
                    .ok_or_else(|| DecodeError::Corrupt("bad baseline histogram".into()))?,
            )
        } else {
            None
        };

        // Frozen artifact: v3 records the builder's freeze decision
        // (including "gate failed, none attached"). Older blobs pre-date
        // the artifact and get a fresh f32 freeze below — bit-identical
        // to their reference weights, so snapshots taken before this
        // version serve through the fused path with unchanged results.
        let (frozen, refreeze) = if version >= 3 {
            if d.u64()? != 0 {
                (Some(FrozenModel::decode_from(&mut d)?), false)
            } else {
                (None, false)
            }
        } else {
            (None, true)
        };

        let mut sketch = Self::from_parts(model, featurizer, samples, normalizer, database_name);
        sketch.baseline = baseline;
        sketch.frozen = if refreeze {
            Some(sketch.model.freeze(QuantMode::F32))
        } else {
            frozen
        };
        // Mismatched quantization metadata (artifact shapes that disagree
        // with the reference weights) is corruption, not a servable state.
        if let Some(msg) = sketch.frozen_shape_mismatch() {
            return Err(DecodeError::Corrupt(msg));
        }
        Ok(sketch)
    }
}

impl CardinalityEstimator for DeepSketch {
    fn name(&self) -> &str {
        &self.name
    }

    fn estimate(&self, query: &Query) -> f64 {
        self.estimate_one(query)
    }

    /// Validated estimation: malformed requests (tables or columns outside
    /// the sketch's vocabulary) become typed errors instead of panics.
    fn try_estimate(&self, query: &Query) -> Result<f64, EstimateError> {
        self.validate(query)?;
        Ok(self.estimate_one(query))
    }

    /// The chunked, optionally threaded batch fast path (bit-identical to
    /// the looped single-query estimates).
    fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        DeepSketch::estimate_batch(self, queries)
    }

    /// Batch path with per-query validation: invalid queries get their
    /// error, the valid subset still runs through one coalesced forward
    /// pass (results bit-identical to [`DeepSketch::estimate_one`]).
    fn try_estimate_batch(&self, queries: &[Query]) -> Vec<Result<f64, EstimateError>> {
        let mut out: Vec<Result<f64, EstimateError>> = queries
            .iter()
            .map(|q| self.validate(q).map(|()| 0.0))
            .collect();
        let valid: Vec<Query> = queries
            .iter()
            .zip(&out)
            .filter(|(_, r)| r.is_ok())
            .map(|(q, _)| q.clone())
            .collect();
        let estimates = DeepSketch::estimate_batch(self, &valid);
        let mut it = estimates.into_iter();
        for v in out.iter_mut().flatten() {
            *v = it.next().expect("one estimate per valid query");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SketchBuilder;
    use ds_query::parser::parse_query;
    use ds_query::workloads::imdb_predicate_columns;
    use ds_storage::gen::{imdb_database, ImdbConfig};

    fn tiny_sketch() -> (ds_storage::catalog::Database, DeepSketch) {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let sketch = SketchBuilder::new(&db, imdb_predicate_columns(&db))
            .training_queries(200)
            .epochs(4)
            .sample_size(16)
            .hidden_units(16)
            .seed(3)
            .build()
            .expect("build sketch");
        (db, sketch)
    }

    #[test]
    fn estimates_are_positive_and_bounded() {
        let (db, sketch) = tiny_sketch();
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM title, movie_keyword \
             WHERE movie_keyword.movie_id = title.id AND title.production_year > 2000",
        )
        .unwrap();
        let e = sketch.estimate(&q);
        assert!(e >= 1.0);
        // Bounded by the normalizer's max label.
        let (_, hi) = sketch.normalizer().bounds();
        assert!(e <= hi.exp() * 1.01);
    }

    #[test]
    fn serialization_roundtrip_preserves_estimates() {
        let (db, sketch) = tiny_sketch();
        let bytes = sketch.to_bytes();
        assert_eq!(bytes.len(), sketch.footprint_bytes());
        let restored = DeepSketch::from_bytes(&bytes).unwrap();
        let queries = ds_query::workloads::job_light::job_light_workload(&db, 2);
        let before = sketch.estimate_batch(&queries);
        let after = restored.estimate_batch(&queries);
        assert_eq!(before, after);
        assert_eq!(restored.database_name(), "imdb");
    }

    #[test]
    fn baseline_survives_serialization_and_v1_blobs_still_load() {
        let (_db, mut sketch) = tiny_sketch();
        assert!(
            sketch.baseline().is_some(),
            "builder must attach the holdout baseline"
        );

        // Attach a known baseline and roundtrip it.
        let h = ds_obs::LogHistogram::new();
        for q in [1000u64, 1200, 1500, 3000, 9000] {
            h.record(q);
        }
        sketch.set_baseline(h.snapshot());
        let restored = DeepSketch::from_bytes(&sketch.to_bytes()).unwrap();
        assert_eq!(restored.baseline(), Some(&h.snapshot()));

        // Pre-v4 layouts lack the 16 schema bytes v4 writes after the
        // `use_bitmaps` flag; splice them out to reconstruct the old
        // stream (the sketch under test is schema v1, so the spliced
        // bytes carry no information).
        let strip_schema_words = |bytes: &mut Vec<u8>, name_len: usize| {
            let off = 8 + (8 + name_len) + 16 + 24;
            bytes.drain(off..off + 16);
        };

        // A version-1 blob is the v3 layout minus the trailing baseline
        // and frozen flag words, with version 1 in the header: it must
        // still load, with no baseline and a fresh f32 re-freeze whose
        // fused estimates are bit-identical to the reference path.
        let mut plain = sketch.clone();
        plain.baseline = None;
        plain.clear_frozen();
        let name_len = plain.database_name().len();
        let mut v1 = plain.to_bytes();
        strip_schema_words(&mut v1, name_len);
        v1.truncate(v1.len() - 16);
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        let legacy = DeepSketch::from_bytes(&v1).expect("v1 blob must load");
        assert!(legacy.baseline().is_none());
        assert!(legacy.frozen().is_some(), "legacy blobs re-freeze f32");
        assert_eq!(
            legacy.estimate_one(&parse_query(&_db, "SELECT COUNT(*) FROM title").unwrap()),
            plain.estimate_one(&parse_query(&_db, "SELECT COUNT(*) FROM title").unwrap())
        );

        // A version-2 blob (no frozen section) loads the same way.
        let mut v2 = plain.to_bytes();
        strip_schema_words(&mut v2, name_len);
        v2.truncate(v2.len() - 8);
        v2[4..8].copy_from_slice(&2u32.to_le_bytes());
        let legacy2 = DeepSketch::from_bytes(&v2).expect("v2 blob must load");
        assert!(legacy2.frozen().is_some(), "v2 blobs re-freeze f32");

        // A version-3 blob (pre-schema) decodes as feature schema v1 and
        // estimates byte-identically to its v4 re-encoding.
        let mut v3 = sketch.to_bytes();
        strip_schema_words(&mut v3, name_len);
        v3[4..8].copy_from_slice(&3u32.to_le_bytes());
        let legacy3 = DeepSketch::from_bytes(&v3).expect("v3 blob must load");
        assert_eq!(
            legacy3.featurizer().schema(),
            crate::featurize::FeatureSchema::V1
        );
        assert_eq!(legacy3.to_bytes(), sketch.to_bytes());

        // A corrupt baseline payload is rejected, not silently zeroed.
        let mut no_frozen = sketch.clone();
        no_frozen.clear_frozen();
        let mut bad = no_frozen.to_bytes();
        let n = bad.len();
        bad[n - 17] ^= 0xFF; // inside the last bucket word, before the frozen flag
        assert!(matches!(
            DeepSketch::from_bytes(&bad),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn batch_matches_single_estimates() {
        let (db, sketch) = tiny_sketch();
        let queries = ds_query::workloads::job_light::job_light_workload(&db, 4);
        let batch = sketch.estimate_batch(&queries[..5]);
        for (q, &b) in queries[..5].iter().zip(&batch) {
            let single = sketch.estimate_one(q);
            assert!((single - b).abs() < 1e-6 * single.max(1.0));
        }
        assert!(sketch.estimate_batch(&[]).is_empty());
    }

    #[test]
    fn estimate_batch_is_exactly_the_looped_estimates() {
        // The batched serving path (chunked, optionally threaded) must
        // return *exactly* `queries.iter().map(|q| estimate_one(q))` —
        // chunking and threads may never change a single bit.
        let (db, mut sketch) = tiny_sketch();
        let mut queries = ds_query::workloads::job_light::job_light_workload(&db, 4);
        // Single-table query: empty join set (and no predicates).
        queries.push(parse_query(&db, "SELECT COUNT(*) FROM title").unwrap());
        // Join without predicates: empty predicate set.
        queries.push(
            parse_query(
                &db,
                "SELECT COUNT(*) FROM title, movie_keyword \
                 WHERE movie_keyword.movie_id = title.id",
            )
            .unwrap(),
        );
        // Single table with a predicate: empty join set, non-empty preds.
        queries.push(
            parse_query(
                &db,
                "SELECT COUNT(*) FROM title WHERE title.production_year > 1990",
            )
            .unwrap(),
        );
        assert!(queries.iter().any(|q| q.joins.is_empty()));
        assert!(queries.iter().any(|q| q.predicates.is_empty()));
        // Cycle past SERVE_CHUNK so multiple chunks (and with threads > 1,
        // multiple workers) are exercised.
        let many: Vec<_> = queries
            .iter()
            .cycle()
            .take(3 * SERVE_CHUNK + 7)
            .cloned()
            .collect();
        let looped: Vec<f64> = many.iter().map(|q| sketch.estimate_one(q)).collect();
        for threads in [1, 2, 8] {
            sketch.set_threads(threads);
            assert_eq!(
                sketch.estimate_batch(&many),
                looped,
                "batched serving diverged at threads={threads}"
            );
        }
    }

    #[test]
    fn try_estimate_rejects_out_of_vocabulary_queries() {
        use ds_est::EstimateError;
        use ds_storage::predicate::{CmpOp, ColPredicate};

        let (db, sketch) = tiny_sketch();
        let good = parse_query(&db, "SELECT COUNT(*) FROM title WHERE title.kind_id = 1").unwrap();
        assert_eq!(sketch.try_estimate(&good), Ok(sketch.estimate_one(&good)));

        // A query naming a table id beyond the sketch's vocabulary — as a
        // sketch deserialized next to a *larger* schema would see — errors
        // instead of panicking.
        let mut alien = good.clone();
        alien.tables.push(ds_storage::catalog::TableId(99));
        assert!(matches!(
            sketch.try_estimate(&alien),
            Err(EstimateError::UnknownTable { table: 99, .. })
        ));

        // Same for a predicate on a column the sampled table doesn't have.
        let mut bad_col = good.clone();
        bad_col
            .predicates
            .push((bad_col.tables[0], ColPredicate::new(999, CmpOp::Eq, 1)));
        assert!(matches!(
            sketch.try_estimate(&bad_col),
            Err(EstimateError::UnknownColumn { col: 999, .. })
        ));

        // The batch path isolates failures per query and keeps valid
        // results bit-identical to the singles.
        let results =
            sketch.try_estimate_batch(&[good.clone(), alien.clone(), bad_col, good.clone()]);
        assert_eq!(results[0], Ok(sketch.estimate_one(&good)));
        assert!(results[1].is_err() && results[2].is_err());
        assert_eq!(results[3], Ok(sketch.estimate_one(&good)));
    }

    #[test]
    fn freeze_gated_adopts_f32_exactly_and_keeps_prior_on_failure() {
        let (db, mut sketch) = tiny_sketch();
        let probes = ds_query::workloads::job_light::job_light_workload(&db, 2);
        sketch.clear_frozen();
        // F32 is bit-identical to the reference path, so the observed
        // worst ratio is exactly 1.0 and the gate always passes.
        let delta = sketch
            .freeze_gated(QuantMode::F32, &probes, FREEZE_GATE_MAX_DELTA)
            .expect("f32 freeze must pass the gate");
        assert_eq!(delta, 1.0);
        assert!(sketch.frozen().is_some());
        assert_eq!(sketch.frozen().unwrap().mode(), QuantMode::F32);

        // An unsatisfiable gate (worst ratio is always ≥ 1.0) rejects the
        // candidate and leaves the prior artifact untouched.
        let prior = sketch.frozen().cloned();
        let worst = sketch
            .freeze_gated(QuantMode::Int8, &probes, 0.5)
            .expect_err("no artifact can beat a 0.5 gate");
        assert!(worst >= 1.0);
        assert_eq!(sketch.frozen(), prior.as_ref());
    }

    #[test]
    fn int8_freeze_tracks_reference_estimates() {
        let (db, mut sketch) = tiny_sketch();
        let probes = ds_query::workloads::job_light::job_light_workload(&db, 2);
        sketch.clear_frozen();
        let reference = sketch.estimate_batch(&probes);
        sketch.freeze(QuantMode::Int8);
        // Int8 is approximate: estimates stay within a loose q-style
        // band of the reference, and batch == looped singles still holds
        // (both run the fused path).
        let quantized: Vec<f64> = probes.iter().map(|q| sketch.estimate_one(q)).collect();
        for (&r, &f) in reference.iter().zip(&quantized) {
            let ratio = (f / r).max(r / f);
            assert!(ratio < 2.0, "int8 drifted: {f} vs reference {r}");
        }
        assert_eq!(sketch.estimate_batch(&probes), quantized);
    }

    #[test]
    fn frozen_artifact_roundtrips_and_mismatches_are_rejected() {
        use crate::mscn::MscnConfig;

        let (db, sketch) = tiny_sketch();
        assert!(
            sketch.frozen().is_some(),
            "builder must attach the artifact"
        );
        let restored = DeepSketch::from_bytes(&sketch.to_bytes()).unwrap();
        assert_eq!(restored.frozen(), sketch.frozen());

        // An artifact frozen from a different-width model is caught by
        // validate() (typed error, no panic) and rejected on decode.
        let f = sketch.featurizer();
        let alien = MscnModel::new(
            f.table_dim(),
            f.join_dim(),
            f.pred_dim(),
            MscnConfig { hidden: 8, seed: 1 },
        )
        .freeze(QuantMode::F32);
        let mut broken = sketch.clone();
        broken.frozen = Some(alien);
        assert!(broken.frozen_shape_mismatch().is_some());
        let q = parse_query(&db, "SELECT COUNT(*) FROM title").unwrap();
        assert!(matches!(
            broken.try_estimate(&q),
            Err(EstimateError::Unavailable(_))
        ));
        assert!(matches!(
            DeepSketch::from_bytes(&broken.to_bytes()),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn from_bytes_rejects_corruption() {
        let (_db, sketch) = tiny_sketch();
        let mut bytes = sketch.to_bytes();
        assert!(DeepSketch::from_bytes(&bytes[..10]).is_err());
        bytes[0] = b'X';
        assert!(matches!(
            DeepSketch::from_bytes(&bytes),
            Err(DecodeError::BadHeader(_))
        ));
    }

    #[test]
    fn info_summarizes_the_sketch() {
        let (_db, sketch) = tiny_sketch();
        let info = sketch.info();
        assert_eq!(info.database, "imdb");
        assert_eq!(info.tables, 6);
        assert_eq!(info.joins, 5);
        assert_eq!(info.predicate_columns, 9);
        assert_eq!(info.hidden_units, 16);
        assert_eq!(info.model_params, sketch.model().num_params());
        assert_eq!(info.sample_size, 16);
        assert_eq!(info.sample_rows, 6 * 16);
        assert_eq!(info.footprint_bytes, sketch.footprint_bytes());
        let text = info.to_string();
        assert!(text.contains("imdb") && text.contains("6 tables"), "{text}");
    }

    #[test]
    fn footprint_is_compact() {
        let (_db, sketch) = tiny_sketch();
        // A tiny sketch should be well under a MiB; the paper's full-size
        // sketches are "a few MiBs".
        assert!(sketch.footprint_bytes() < 1 << 20);
    }
}
