//! Query featurization (§2 of the paper).
//!
//! "Based on the training data, we enumerate tables, columns, joins, and
//! predicate types (=, <, and >) and represent them as unique one-hot
//! vectors. We represent each literal as a value val ∈ [0, 1], normalized
//! using the minimum and maximum values of the respective column." In
//! addition, each table element carries the bitmap of sample tuples
//! qualifying the query's predicates on that table.
//!
//! A query becomes three *sets* of feature vectors:
//!
//! * table set: `one-hot(table) ++ sample-bitmap`
//! * join set: `one-hot(join)`
//! * predicate set: `one-hot(column) ++ one-hot(op) ++ [normalized literal]`
//!
//! Two predicate-schema generations exist. [`FeatureSchema::V1`] is the
//! paper's encoding above, bit-identical to every sketch ever shipped.
//! [`FeatureSchema::V2`] widens the operator one-hot to the extended
//! vocabulary (`=, <, >, IN, LIKE`), adds an auxiliary scalar (IN-list
//! size / LIKE literal-character fraction), and appends a per-predicate
//! sampling bitmap (`NUM_BITMAP_SAMPLE`-style: the predicate evaluated
//! alone against a prefix of its table's materialized sample) — the
//! MSCN+ features that close the gap on correlated predicates.

use std::collections::HashMap;

use ds_nn::frozen::IndexSet;
use ds_nn::ops::Segments;
use ds_nn::tensor::Tensor;
use ds_query::query::Query;
use ds_storage::catalog::{ColRef, Database};
use ds_storage::exec::JoinEdge;
use ds_storage::predicate::{ColPredicate, PredTest};
use ds_storage::sample::TableSample;

/// Predicate-encoding generation of a [`Featurizer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureSchema {
    /// The paper's 3-operator encoding: `one-hot(col) ++ one-hot{=,<,>} ++
    /// [literal]`. `IN`/`LIKE` predicates degrade gracefully (zero op
    /// one-hot, mid-scale literal). Every pre-v2 sketch uses this.
    V1,
    /// Extended encoding: `one-hot(col) ++ one-hot{=,<,>,IN,LIKE} ++
    /// [literal, aux] ++ per-predicate sample bitmap`.
    V2,
}

impl FeatureSchema {
    /// Stable wire tag (sketch serialization).
    pub fn tag(self) -> u8 {
        match self {
            FeatureSchema::V1 => 1,
            FeatureSchema::V2 => 2,
        }
    }

    /// Inverse of [`FeatureSchema::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(FeatureSchema::V1),
            2 => Some(FeatureSchema::V2),
            _ => None,
        }
    }
}

/// IN-list length that saturates the auxiliary scalar of schema v2.
const IN_LIST_AUX_SCALE: f32 = 16.0;

/// The featurization vocabulary: stable one-hot ids for tables, joins, and
/// predicate columns, plus per-column normalization bounds. Serialized as
/// part of every Deep Sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct Featurizer {
    num_tables: usize,
    sample_size: usize,
    /// Whether table features include the sample bitmap (ablation knob —
    /// this is MSCN's "with/without materialized samples" experiment).
    use_bitmaps: bool,
    /// Canonical join edge → one-hot id.
    joins: Vec<JoinEdge>,
    /// Predicate column → one-hot id (parallel to `col_bounds`).
    columns: Vec<ColRef>,
    /// Per predicate-column (min, max) for literal normalization.
    col_bounds: Vec<(f64, f64)>,
    /// Predicate-encoding generation.
    schema: FeatureSchema,
    /// Per-predicate bitmap width of schema v2 (0 under v1): the predicate
    /// is evaluated alone against the first `pred_bitmap_bits` rows of its
    /// table's materialized sample.
    pred_bitmap_bits: usize,
    join_index: HashMap<JoinEdge, usize>,
    col_index: HashMap<ColRef, usize>,
}

impl Featurizer {
    /// Builds the vocabulary from the database schema: all PK/FK joins and
    /// the given predicate columns, with literal bounds from the data.
    pub fn build(db: &Database, predicate_columns: &[ColRef], sample_size: usize) -> Self {
        Self::build_with_options(db, predicate_columns, sample_size, true)
    }

    /// [`Featurizer::build`] with the bitmap ablation knob.
    pub fn build_with_options(
        db: &Database,
        predicate_columns: &[ColRef],
        sample_size: usize,
        use_bitmaps: bool,
    ) -> Self {
        let joins: Vec<JoinEdge> = db
            .foreign_keys()
            .iter()
            .map(|fk| JoinEdge::new(fk.from, fk.to).canonical())
            .collect();
        let col_bounds = predicate_columns
            .iter()
            .map(|cr| {
                let (lo, hi) = db
                    .table(cr.table)
                    .column(cr.col)
                    .min_max()
                    .unwrap_or((0, 1));
                (lo as f64, hi as f64)
            })
            .collect();
        let join_index = joins.iter().enumerate().map(|(i, &j)| (j, i)).collect();
        let col_index = predicate_columns
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i))
            .collect();
        Self {
            num_tables: db.num_tables(),
            sample_size,
            use_bitmaps,
            joins,
            columns: predicate_columns.to_vec(),
            col_bounds,
            schema: FeatureSchema::V1,
            pred_bitmap_bits: 0,
            join_index,
            col_index,
        }
    }

    /// Upgrades this vocabulary to schema v2 with the given per-predicate
    /// bitmap width (clamped to the sample size; 0 disables the bitmap
    /// tail but keeps the widened operator one-hot and aux scalar).
    pub fn with_schema_v2(mut self, pred_bitmap_bits: usize) -> Self {
        self.schema = FeatureSchema::V2;
        self.pred_bitmap_bits = pred_bitmap_bits.min(self.sample_size);
        self
    }

    /// Reassembles a featurizer from serialized parts.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        num_tables: usize,
        sample_size: usize,
        use_bitmaps: bool,
        joins: Vec<JoinEdge>,
        columns: Vec<ColRef>,
        col_bounds: Vec<(f64, f64)>,
        schema: FeatureSchema,
        pred_bitmap_bits: usize,
    ) -> Self {
        assert_eq!(columns.len(), col_bounds.len(), "bounds/columns mismatch");
        assert!(
            schema == FeatureSchema::V2 || pred_bitmap_bits == 0,
            "schema v1 has no per-predicate bitmap"
        );
        let join_index = joins.iter().enumerate().map(|(i, &j)| (j, i)).collect();
        let col_index = columns.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        Self {
            num_tables,
            sample_size,
            use_bitmaps,
            joins,
            columns,
            col_bounds,
            schema,
            pred_bitmap_bits,
            join_index,
            col_index,
        }
    }

    /// Width of a table-set element: `num_tables + sample_size` (bitmap on).
    pub fn table_dim(&self) -> usize {
        self.num_tables
            + if self.use_bitmaps {
                self.sample_size
            } else {
                0
            }
    }

    /// Width of a join-set element: one-hot over the schema's joins.
    pub fn join_dim(&self) -> usize {
        self.joins.len().max(1)
    }

    /// Width of a predicate-set element. Schema v1: `columns + 3 ops +
    /// 1 literal`. Schema v2: `columns + 5 ops + 2 scalars + bitmap bits`.
    pub fn pred_dim(&self) -> usize {
        match self.schema {
            FeatureSchema::V1 => self.columns.len() + 3 + 1,
            FeatureSchema::V2 => self.columns.len() + 5 + 2 + self.pred_bitmap_bits,
        }
    }

    /// Predicate-encoding generation.
    pub fn schema(&self) -> FeatureSchema {
        self.schema
    }

    /// Per-predicate bitmap width (0 under schema v1).
    pub fn pred_bitmap_bits(&self) -> usize {
        self.pred_bitmap_bits
    }

    /// Nominal sample size (bitmap length).
    pub fn sample_size(&self) -> usize {
        self.sample_size
    }

    /// Whether sample bitmaps are part of table features.
    pub fn use_bitmaps(&self) -> bool {
        self.use_bitmaps
    }

    /// Number of tables in the vocabulary.
    pub fn num_tables(&self) -> usize {
        self.num_tables
    }

    /// Join vocabulary (canonical edges, in one-hot order).
    pub fn joins(&self) -> &[JoinEdge] {
        &self.joins
    }

    /// Predicate-column vocabulary (in one-hot order).
    pub fn columns(&self) -> &[ColRef] {
        &self.columns
    }

    /// Literal bounds per vocabulary column.
    pub fn col_bounds(&self) -> &[(f64, f64)] {
        &self.col_bounds
    }

    /// Normalizes a literal for vocabulary column `idx` into `[0, 1]`.
    pub fn normalize_literal(&self, idx: usize, literal: i64) -> f32 {
        let (lo, hi) = self.col_bounds[idx];
        if hi <= lo {
            return 0.5;
        }
        (((literal as f64) - lo) / (hi - lo)).clamp(0.0, 1.0) as f32
    }

    /// Scalar slots of one predicate under schema v2: `(literal, aux)`.
    /// Comparison: normalized literal, aux 0. `IN`: mean normalized list
    /// value, aux = saturating list-size fraction. `LIKE`: mid-scale
    /// literal, aux = literal-character fraction of the pattern.
    fn v2_scalars(&self, idx: Option<usize>, p: &ColPredicate) -> (f32, f32) {
        match &p.test {
            PredTest::Cmp(_, lit) => (idx.map_or(0.5, |i| self.normalize_literal(i, *lit)), 0.0),
            PredTest::In(vals) => {
                let primary = match idx {
                    Some(i) => {
                        let sum: f32 = vals.iter().map(|&v| self.normalize_literal(i, v)).sum();
                        sum / vals.len() as f32
                    }
                    None => 0.5,
                };
                (primary, (vals.len() as f32 / IN_LIST_AUX_SCALE).min(1.0))
            }
            PredTest::Like(pat) => {
                let len = pat.as_str().len();
                let aux = if len == 0 {
                    0.0
                } else {
                    let literal_chars = pat
                        .as_str()
                        .bytes()
                        .filter(|&c| c != b'%' && c != b'_')
                        .count();
                    literal_chars as f32 / len as f32
                };
                (0.5, aux)
            }
        }
    }

    /// Invokes `f` with each set bit of the per-predicate sample bitmap:
    /// the predicate evaluated alone against the first
    /// `pred_bitmap_bits` materialized rows of its table's sample.
    fn for_each_pred_bitmap_bit(
        &self,
        samples: &[TableSample],
        table: usize,
        p: &ColPredicate,
        mut f: impl FnMut(usize),
    ) {
        if self.pred_bitmap_bits == 0 {
            return;
        }
        let Some(sample) = samples.get(table) else {
            return;
        };
        if p.col >= sample.rows().columns().len() {
            return;
        }
        let col = sample.rows().column(p.col);
        for row in 0..sample.len().min(self.pred_bitmap_bits) {
            if p.eval_row(col, row) {
                f(row);
            }
        }
    }

    /// Featurizes one query. `samples` must be the database-wide sample
    /// vector (indexed by table id) the sketch ships.
    pub fn featurize(&self, query: &Query, samples: &[TableSample]) -> QueryFeatures {
        // Table set.
        let mut table_rows = Vec::with_capacity(query.tables.len());
        for &t in &query.tables {
            let mut row = vec![0.0f32; self.table_dim()];
            if t.0 < self.num_tables {
                row[t.0] = 1.0;
            }
            if self.use_bitmaps {
                let preds = query.preds_of(t);
                let sample = &samples[t.0];
                let bm = sample.qualifying_bitmap(&preds);
                debug_assert_eq!(bm.len(), self.sample_size);
                for i in bm.iter_ones() {
                    row[self.num_tables + i] = 1.0;
                }
            }
            table_rows.push(row);
        }

        // Join set.
        let mut join_rows = Vec::with_capacity(query.joins.len());
        for j in &query.joins {
            let mut row = vec![0.0f32; self.join_dim()];
            if let Some(&idx) = self.join_index.get(&j.canonical()) {
                row[idx] = 1.0;
            }
            join_rows.push(row);
        }

        // Predicate set.
        let nc = self.columns.len();
        let mut pred_rows = Vec::with_capacity(query.predicates.len());
        for (cr, p) in query.qualified_predicates() {
            let mut row = vec![0.0f32; self.pred_dim()];
            let idx = self.col_index.get(&cr).copied();
            if let Some(i) = idx {
                row[i] = 1.0;
            }
            match self.schema {
                FeatureSchema::V1 => {
                    // Bit-identical to the original encoding for
                    // comparisons; IN/LIKE degrade to a zero op one-hot
                    // and a mid-scale literal.
                    match (&p.test, idx) {
                        (PredTest::Cmp(op, lit), Some(i)) => {
                            row[nc + op.index()] = 1.0;
                            row[nc + 3] = self.normalize_literal(i, *lit);
                        }
                        (PredTest::Cmp(op, _), None) => {
                            // Unknown column: op and a mid-scale literal
                            // still carry signal.
                            row[nc + op.index()] = 1.0;
                            row[nc + 3] = 0.5;
                        }
                        _ => row[nc + 3] = 0.5,
                    }
                }
                FeatureSchema::V2 => {
                    row[nc + p.op_kind().index()] = 1.0;
                    let (primary, aux) = self.v2_scalars(idx, p);
                    row[nc + 5] = primary;
                    row[nc + 6] = aux;
                    self.for_each_pred_bitmap_bit(samples, cr.table.0, p, |bit| {
                        row[nc + 7 + bit] = 1.0;
                    });
                }
            }
            pred_rows.push(row);
        }

        QueryFeatures {
            table_rows,
            join_rows,
            pred_rows,
        }
    }

    /// Featurizes one query as sparse index lists for the fused frozen
    /// forward path — the exact same active `(index, value)` pairs as
    /// [`Featurizer::featurize`], pushed in ascending index order per
    /// element, without ever materializing the dense one-hot rows. Reuses
    /// `out`'s buffers, so a serving loop allocates nothing per query.
    pub fn featurize_indices(
        &self,
        query: &Query,
        samples: &[TableSample],
        out: &mut QueryIndexFeatures,
    ) {
        out.tables.clear();
        out.joins.clear();
        out.preds.clear();

        // Table set: one-hot(table) then the bitmap tail (ascending).
        for &t in &query.tables {
            let start = out.tables.begin_elem();
            if t.0 < self.num_tables {
                out.tables.push(t.0 as u32, 1.0);
            }
            if self.use_bitmaps {
                let preds = query.preds_of(t);
                let sample = &samples[t.0];
                let bm = sample.qualifying_bitmap(&preds);
                debug_assert_eq!(bm.len(), self.sample_size);
                for i in bm.iter_ones() {
                    out.tables.push((self.num_tables + i) as u32, 1.0);
                }
            }
            out.tables.finish_elem(start);
        }

        // Join set: a single one-hot, or an all-zero element for joins
        // outside the vocabulary.
        for j in &query.joins {
            let start = out.joins.begin_elem();
            if let Some(&idx) = self.join_index.get(&j.canonical()) {
                out.joins.push(idx as u32, 1.0);
            }
            out.joins.finish_elem(start);
        }

        // Predicate set: one-hot(col), one-hot(op), scalar slots, and (v2)
        // the per-predicate bitmap tail — ascending index order.
        let nc = self.columns.len();
        for (cr, p) in query.qualified_predicates() {
            let start = out.preds.begin_elem();
            let idx = self.col_index.get(&cr).copied();
            if let Some(i) = idx {
                out.preds.push(i as u32, 1.0);
            }
            match self.schema {
                FeatureSchema::V1 => {
                    let lit_slot = (nc + 3) as u32;
                    match (&p.test, idx) {
                        (PredTest::Cmp(op, lit), Some(i)) => {
                            out.preds.push((nc + op.index()) as u32, 1.0);
                            out.preds.push(lit_slot, self.normalize_literal(i, *lit));
                        }
                        (PredTest::Cmp(op, _), None) => {
                            out.preds.push((nc + op.index()) as u32, 1.0);
                            out.preds.push(lit_slot, 0.5);
                        }
                        _ => out.preds.push(lit_slot, 0.5),
                    }
                }
                FeatureSchema::V2 => {
                    out.preds.push((nc + p.op_kind().index()) as u32, 1.0);
                    let (primary, aux) = self.v2_scalars(idx, p);
                    out.preds.push((nc + 5) as u32, primary);
                    out.preds.push((nc + 6) as u32, aux);
                    self.for_each_pred_bitmap_bit(samples, cr.table.0, p, |bit| {
                        out.preds.push((nc + 7 + bit) as u32, 1.0);
                    });
                }
            }
            out.preds.finish_elem(start);
        }
    }

    /// Assembles featurized queries into batched set matrices with segment
    /// descriptors for masked mean pooling.
    pub fn batch(&self, feats: &[QueryFeatures]) -> FeatureBatch {
        let idx: Vec<usize> = (0..feats.len()).collect();
        self.batch_indexed(feats, &idx)
    }

    /// [`Featurizer::batch`] over the subset `idx` of `feats`, in `idx`
    /// order. This is the training loop's batching path: epochs shuffle
    /// and chunk an index vector and pack each chunk directly from the
    /// featurized pool, with no per-batch [`QueryFeatures`] clones.
    pub fn batch_indexed(&self, feats: &[QueryFeatures], idx: &[usize]) -> FeatureBatch {
        let pack = |rows_of: &dyn Fn(&QueryFeatures) -> &Vec<Vec<f32>>, dim: usize| {
            let total: usize = idx.iter().map(|&i| rows_of(&feats[i]).len()).sum();
            let mut data = Vec::with_capacity(total * dim);
            let mut segs: Segments = Vec::with_capacity(idx.len());
            let mut start = 0;
            for &i in idx {
                let rows = rows_of(&feats[i]);
                for r in rows {
                    debug_assert_eq!(r.len(), dim);
                    data.extend_from_slice(r);
                }
                segs.push((start, rows.len()));
                start += rows.len();
            }
            (Tensor::from_vec(total, dim, data), segs)
        };
        let (tables, table_segs) = pack(&|f| &f.table_rows, self.table_dim());
        let (joins, join_segs) = pack(&|f| &f.join_rows, self.join_dim());
        let (preds, pred_segs) = pack(&|f| &f.pred_rows, self.pred_dim());
        FeatureBatch {
            tables,
            table_segs,
            joins,
            join_segs,
            preds,
            pred_segs,
        }
    }

    /// Convenience: featurize and batch a slice of queries in one call.
    pub fn batch_queries(&self, queries: &[Query], samples: &[TableSample]) -> FeatureBatch {
        let feats: Vec<QueryFeatures> =
            queries.iter().map(|q| self.featurize(q, samples)).collect();
        self.batch(&feats)
    }
}

/// Sparse index-list featurization of one query, the input of the fused
/// frozen forward. Holds the same information as [`QueryFeatures`] but as
/// `(index, value)` gather lists instead of dense rows.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct QueryIndexFeatures {
    /// Table-set elements: one-hot(table) + sample-bitmap indices.
    pub tables: IndexSet,
    /// Join-set elements: at most one active index each.
    pub joins: IndexSet,
    /// Predicate-set elements: column, operator, and literal slots.
    pub preds: IndexSet,
}

/// The three feature-vector sets of one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryFeatures {
    /// One row per table: `one-hot(table) ++ bitmap`.
    pub table_rows: Vec<Vec<f32>>,
    /// One row per join: `one-hot(join)`.
    pub join_rows: Vec<Vec<f32>>,
    /// One row per predicate: `one-hot(col) ++ one-hot(op) ++ [val]`.
    pub pred_rows: Vec<Vec<f32>>,
}

/// A batch of featurized queries as three flattened element matrices plus
/// per-query segments — the MSCN model's input.
#[derive(Debug, Clone)]
pub struct FeatureBatch {
    /// All table elements, stacked.
    pub tables: Tensor,
    /// Per-query (start, len) into `tables`.
    pub table_segs: Segments,
    /// All join elements, stacked.
    pub joins: Tensor,
    /// Per-query (start, len) into `joins`.
    pub join_segs: Segments,
    /// All predicate elements, stacked.
    pub preds: Tensor,
    /// Per-query (start, len) into `preds`.
    pub pred_segs: Segments,
}

impl FeatureBatch {
    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.table_segs.len()
    }

    /// True for a zero-query batch.
    pub fn is_empty(&self) -> bool {
        self.table_segs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_query::parser::parse_query;
    use ds_query::workloads::imdb_predicate_columns;
    use ds_storage::gen::{imdb_database, ImdbConfig};
    use ds_storage::predicate::CmpOp;
    use ds_storage::sample::sample_all;

    fn setup() -> (Database, Vec<TableSample>, Featurizer) {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let samples = sample_all(&db, 32, 7);
        let f = Featurizer::build(&db, &imdb_predicate_columns(&db), 32);
        (db, samples, f)
    }
    use ds_storage::catalog::Database;

    #[test]
    fn dims_reflect_vocabulary() {
        let (_db, _s, f) = setup();
        assert_eq!(f.table_dim(), 6 + 32);
        assert_eq!(f.join_dim(), 5);
        assert_eq!(f.pred_dim(), 9 + 3 + 1);
    }

    #[test]
    fn featurize_sets_expected_onehots() {
        let (db, samples, f) = setup();
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM title, movie_keyword \
             WHERE movie_keyword.movie_id = title.id AND title.production_year > 2000",
        )
        .unwrap();
        let feats = f.featurize(&q, &samples);
        assert_eq!(feats.table_rows.len(), 2);
        assert_eq!(feats.join_rows.len(), 1);
        assert_eq!(feats.pred_rows.len(), 1);

        // Table one-hot for title (id 0) plus a non-empty bitmap tail.
        let title_row = &feats.table_rows[0];
        assert_eq!(title_row[0], 1.0);
        assert_eq!(title_row[1..6].iter().sum::<f32>(), 0.0);
        assert!(title_row[6..].iter().sum::<f32>() > 0.0, "bitmap empty");

        // Join one-hot sums to exactly 1.
        assert_eq!(feats.join_rows[0].iter().sum::<f32>(), 1.0);

        // Predicate row: one column, one op, literal in [0,1].
        let p = &feats.pred_rows[0];
        assert_eq!(p[..9].iter().sum::<f32>(), 1.0);
        assert_eq!(p[9 + CmpOp::Gt.index()], 1.0);
        let lit = p[12];
        assert!((0.0..=1.0).contains(&lit));
    }

    #[test]
    fn bitmap_reflects_predicates() {
        let (db, samples, f) = setup();
        let all = parse_query(&db, "SELECT COUNT(*) FROM title").unwrap();
        let none = parse_query(
            &db,
            "SELECT COUNT(*) FROM title WHERE title.production_year > 99999",
        )
        .unwrap();
        let f_all = f.featurize(&all, &samples);
        let f_none = f.featurize(&none, &samples);
        let ones = |row: &Vec<f32>| row[6..].iter().filter(|&&v| v == 1.0).count();
        assert_eq!(ones(&f_all.table_rows[0]), 32);
        assert_eq!(ones(&f_none.table_rows[0]), 0, "0-tuple bitmap");
    }

    #[test]
    fn bitmaps_can_be_disabled() {
        let db = imdb_database(&ImdbConfig::tiny(2));
        let samples = sample_all(&db, 16, 3);
        let f = Featurizer::build_with_options(&db, &imdb_predicate_columns(&db), 16, false);
        assert_eq!(f.table_dim(), 6);
        let q = parse_query(&db, "SELECT COUNT(*) FROM title").unwrap();
        let feats = f.featurize(&q, &samples);
        assert_eq!(feats.table_rows[0].len(), 6);
    }

    #[test]
    fn literal_normalization_bounds() {
        let (_db, _s, f) = setup();
        // production_year is vocabulary column 1.
        let idx = 1;
        let (lo, hi) = f.col_bounds()[idx];
        assert!(hi > lo);
        assert_eq!(f.normalize_literal(idx, lo as i64), 0.0);
        assert_eq!(f.normalize_literal(idx, hi as i64), 1.0);
        let mid = f.normalize_literal(idx, ((lo + hi) / 2.0) as i64);
        assert!(mid > 0.3 && mid < 0.7);
        // Out-of-range literals clamp.
        assert_eq!(f.normalize_literal(idx, i64::MAX), 1.0);
    }

    #[test]
    fn batch_segments_partition_rows() {
        let (db, samples, f) = setup();
        let q1 = parse_query(
            &db,
            "SELECT COUNT(*) FROM title, movie_keyword \
             WHERE movie_keyword.movie_id = title.id",
        )
        .unwrap();
        let q2 = parse_query(&db, "SELECT COUNT(*) FROM title WHERE title.kind_id = 1").unwrap();
        let batch = f.batch_queries(&[q1, q2], &samples);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.tables.rows(), 3);
        assert_eq!(batch.table_segs, vec![(0, 2), (2, 1)]);
        assert_eq!(batch.joins.rows(), 1);
        assert_eq!(batch.join_segs, vec![(0, 1), (1, 0)]); // q2 has no joins
        assert_eq!(batch.preds.rows(), 1);
        assert_eq!(batch.pred_segs, vec![(0, 0), (0, 1)]);
    }

    #[test]
    fn index_features_match_dense_rows_exactly() {
        let (db, samples, f) = setup();
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM title, movie_keyword \
             WHERE movie_keyword.movie_id = title.id AND title.production_year > 2000",
        )
        .unwrap();
        let dense = f.featurize(&q, &samples);
        let mut sparse = QueryIndexFeatures::default();
        f.featurize_indices(&q, &samples, &mut sparse);
        let check = |rows: &Vec<Vec<f32>>, set: &IndexSet, dim: usize| {
            assert_eq!(rows.len(), set.elems.len());
            for (row, &(start, len)) in rows.iter().zip(&set.elems) {
                assert_eq!(row.len(), dim);
                let mut rebuilt = vec![0.0f32; dim];
                let mut last = -1i64;
                for &(i, v) in &set.entries[start as usize..(start + len) as usize] {
                    assert!(i as i64 > last, "indices not strictly ascending");
                    last = i as i64;
                    rebuilt[i as usize] = v;
                }
                assert_eq!(&rebuilt, row);
            }
        };
        check(&dense.table_rows, &sparse.tables, f.table_dim());
        check(&dense.join_rows, &sparse.joins, f.join_dim());
        check(&dense.pred_rows, &sparse.preds, f.pred_dim());
    }

    #[test]
    fn from_parts_roundtrip() {
        let (db, samples, f) = setup();
        let f2 = Featurizer::from_parts(
            f.num_tables(),
            f.sample_size(),
            f.use_bitmaps(),
            f.joins().to_vec(),
            f.columns().to_vec(),
            f.col_bounds().to_vec(),
            f.schema(),
            f.pred_bitmap_bits(),
        );
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM title WHERE title.production_year > 2000",
        )
        .unwrap();
        assert_eq!(f.featurize(&q, &samples), f2.featurize(&q, &samples));
        assert_eq!(f, f2);
    }
}
