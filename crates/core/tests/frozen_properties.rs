//! Property tests for the frozen inference artifact: across random model
//! shapes, weight seeds, and query batches, the fused
//! featurize-and-forward path must agree with the training-shape reference
//! forward — **bit-exactly** in [`QuantMode::F32`], and within a stated
//! tolerance in [`QuantMode::Int8`] — from every thread count we serve
//! with.

use std::sync::OnceLock;

use ds_core::featurize::{Featurizer, QueryIndexFeatures};
use ds_core::mscn::{MscnConfig, MscnModel};
use ds_core::QuantMode;
use ds_nn::frozen::{FrozenModel, FrozenScratch};
use ds_query::query::Query;
use ds_query::workloads::imdb_predicate_columns;
use ds_query::{GeneratorConfig, QueryGenerator};
use ds_storage::catalog::Database;
use ds_storage::gen::{imdb_database, ImdbConfig};
use ds_storage::sample::{sample_all, TableSample};
use proptest::prelude::*;

/// Worst absolute disagreement allowed between the int8 artifact and the
/// f32 reference, in normalized (post-sigmoid) output space. Per-row
/// scales bound each weight's quantization error by `max_abs/254`
/// (≈0.4 % relative), and the sigmoid is 1/4-Lipschitz, so accumulated
/// drift through the three set modules and the output MLP stays far
/// below this.
const INT8_TOLERANCE: f32 = 0.05;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn fixture() -> &'static (Database, Vec<TableSample>, Featurizer) {
    static FIXTURE: OnceLock<(Database, Vec<TableSample>, Featurizer)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let samples = sample_all(&db, 16, 7);
        let featurizer = Featurizer::build(&db, &imdb_predicate_columns(&db), 16);
        (db, samples, featurizer)
    })
}

/// Fused forward of every query on `threads` worker threads, each with its
/// own scratch (the serving setup). Returns per-thread output vectors.
fn fused_on_threads(frozen: &FrozenModel, queries: &[Query], threads: usize) -> Vec<Vec<f32>> {
    let (_, samples, featurizer) = fixture();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let mut feats = QueryIndexFeatures::default();
                    let mut scratch = FrozenScratch::new();
                    queries
                        .iter()
                        .map(|q| {
                            featurizer.featurize_indices(q, samples, &mut feats);
                            frozen.forward_query(
                                &feats.tables,
                                &feats.joins,
                                &feats.preds,
                                &mut scratch,
                            )
                        })
                        .collect::<Vec<f32>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn frozen_f32_forward_is_bit_identical_to_reference(
        hidden in 4usize..24,
        model_seed in 0u64..1_000_000,
        query_seed in 0u64..1_000_000,
        batch in 1usize..6,
    ) {
        let (db, samples, featurizer) = fixture();
        let model = MscnModel::new(
            featurizer.table_dim(),
            featurizer.join_dim(),
            featurizer.pred_dim(),
            MscnConfig { hidden, seed: model_seed },
        );
        let queries = QueryGenerator::new(
            db,
            GeneratorConfig::new(imdb_predicate_columns(db), query_seed),
        )
        .generate_batch(batch);
        let reference = model.predict(&featurizer.batch_queries(&queries, samples));

        let frozen = model.freeze(QuantMode::F32);
        for threads in THREAD_COUNTS {
            for outputs in fused_on_threads(&frozen, &queries, threads) {
                for (i, (fused, reference)) in outputs.iter().zip(&reference).enumerate() {
                    prop_assert_eq!(
                        fused.to_bits(),
                        reference.to_bits(),
                        "query {} diverged on {} threads: fused {} vs reference {}",
                        i, threads, fused, reference
                    );
                }
            }
        }
    }

    #[test]
    fn frozen_int8_forward_tracks_reference_within_tolerance(
        hidden in 4usize..24,
        model_seed in 0u64..1_000_000,
        query_seed in 0u64..1_000_000,
        batch in 1usize..6,
    ) {
        let (db, samples, featurizer) = fixture();
        let model = MscnModel::new(
            featurizer.table_dim(),
            featurizer.join_dim(),
            featurizer.pred_dim(),
            MscnConfig { hidden, seed: model_seed },
        );
        let queries = QueryGenerator::new(
            db,
            GeneratorConfig::new(imdb_predicate_columns(db), query_seed),
        )
        .generate_batch(batch);
        let reference = model.predict(&featurizer.batch_queries(&queries, samples));

        let frozen = model.freeze(QuantMode::Int8);
        for threads in THREAD_COUNTS {
            for outputs in fused_on_threads(&frozen, &queries, threads) {
                for (i, (fused, reference)) in outputs.iter().zip(&reference).enumerate() {
                    prop_assert!(
                        (fused - reference).abs() <= INT8_TOLERANCE,
                        "query {} drifted on {} threads: int8 {} vs reference {}",
                        i, threads, fused, reference
                    );
                }
            }
        }
    }
}
