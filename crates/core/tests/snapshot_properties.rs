//! Property tests for the `DSNP` snapshot format (ISSUE satellite e):
//! for an arbitrary truncation or bit-flip at an arbitrary offset, the
//! decoder either succeeds on bit-identical bytes or returns a typed
//! [`SnapshotError`] — it never panics, and it never accepts corrupted
//! bytes as valid.
//!
//! The expensive part (training one tiny sketch) happens once behind a
//! `OnceLock`; each property case only decodes bytes.
//!
//! [`SnapshotError`]: ds_core::snapshot::SnapshotError

use std::sync::OnceLock;

use proptest::prelude::*;

use ds_core::builder::SketchBuilder;
use ds_core::monitor::{MonitorRegistry, MonitorState};
use ds_core::snapshot::{decode_snapshot, encode_snapshot};
use ds_query::workloads::imdb_predicate_columns;
use ds_storage::gen::{imdb_database, ImdbConfig};

/// One canonical encoded snapshot (with monitor state, so the optional
/// tail of the format is exercised too).
fn canonical() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let db = imdb_database(&ImdbConfig::tiny(42));
        let sketch = SketchBuilder::new(&db, imdb_predicate_columns(&db))
            .training_queries(120)
            .epochs(2)
            .sample_size(8)
            .hidden_units(8)
            .seed(11)
            .build()
            .expect("tiny sketch");
        let monitors = MonitorRegistry::new();
        for i in 0..16u32 {
            monitors
                .monitor("imdb")
                .record("t0", (i + 1) as f64, (i % 3 + 1) as f64);
        }
        let state = monitors.get("imdb").expect("registered").export_state();
        encode_snapshot("imdb", 42, &sketch, Some(&state))
    })
}

/// Re-encoding a decoded snapshot reproduces the input bit for bit — the
/// format has a single canonical serialization.
#[test]
fn intact_bytes_decode_and_reencode_bit_identically() {
    let bytes = canonical();
    let snap = decode_snapshot(bytes).expect("canonical bytes must decode");
    assert_eq!(snap.name, "imdb");
    assert_eq!(snap.generation, 42);
    let monitor: &MonitorState = snap.monitor.as_ref().expect("monitor state present");
    assert!(!monitor.overall.is_empty());
    let reencoded = encode_snapshot(
        &snap.name,
        snap.generation,
        &snap.sketch,
        snap.monitor.as_ref(),
    );
    assert_eq!(&reencoded, bytes, "re-encode must be bit-identical");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any strict prefix decodes to a typed error — truncation can never
    /// yield a snapshot that silently passes validation, and the decoder
    /// never panics on it.
    #[test]
    fn truncation_never_validates(frac in 0.0f64..1.0) {
        let bytes = canonical();
        let keep = ((bytes.len() as f64) * frac) as usize;
        prop_assert!(
            decode_snapshot(&bytes[..keep]).is_err(),
            "a {keep}-byte prefix of {} decoded", bytes.len()
        );
    }

    /// Flipping any single byte anywhere — header, body, or checksum
    /// trailer — is detected. FNV-1a's per-byte steps are bijective, so a
    /// one-byte change always changes the checksum; the only question is
    /// which typed error surfaces first.
    #[test]
    fn single_byte_flips_are_always_detected(
        offset_seed in 0u64..u64::MAX,
        mask in 1u8..=255,
    ) {
        let bytes = canonical();
        let offset = (offset_seed % bytes.len() as u64) as usize;
        let mut corrupt = bytes.clone();
        corrupt[offset] ^= mask;
        prop_assert!(
            decode_snapshot(&corrupt).is_err(),
            "flip of byte {offset} (mask {mask:#04x}) went undetected"
        );
    }

    /// Compound corruption (truncate, then flip inside what remains) still
    /// only ever produces typed errors or a canonical accept — the decoder
    /// is total on arbitrary input.
    #[test]
    fn compound_corruption_never_panics(
        frac in 0.0f64..1.0,
        offset_seed in 0u64..u64::MAX,
        mask in 0u8..=255,
    ) {
        let bytes = canonical();
        let keep = (((bytes.len() + 1) as f64) * frac) as usize;
        let mut mutated = bytes[..keep.min(bytes.len())].to_vec();
        if !mutated.is_empty() {
            let offset = (offset_seed % mutated.len() as u64) as usize;
            mutated[offset] ^= mask;
        }
        // Decoding must return — any panic fails the harness — and
        // anything it accepts must re-encode to the exact accepted bytes.
        if let Ok(snap) = decode_snapshot(&mutated) {
            let re = encode_snapshot(
                &snap.name,
                snap.generation,
                &snap.sketch,
                snap.monitor.as_ref(),
            );
            prop_assert_eq!(&re, &mutated, "accepted bytes must be canonical");
        }
    }

    /// Arbitrary garbage (not derived from a valid snapshot) is rejected
    /// with a typed error, never a panic.
    #[test]
    fn arbitrary_bytes_never_panic(data in prop::collection::vec(0u8..=255, 0..512)) {
        prop_assert!(decode_snapshot(&data).is_err(), "random bytes decoded");
    }
}
