//! Kill-loop recovery drill (EXPERIMENTS.md E15): snapshots written with
//! injected faults at systematically varied offsets — and, on Unix, a real
//! child process `kill -9`ed mid-write — must always recover to the last
//! durable generation. Never a torn "latest" that silently decodes, never a
//! failed startup.
//!
//! `KILL_LOOP_ITERS` scales both loops (CI pins it to 50).

use std::sync::{Arc, OnceLock};

use ds_core::builder::SketchBuilder;
use ds_core::sketch::DeepSketch;
use ds_core::snapshot::{
    decode_snapshot, encode_snapshot, write_snapshot_bytes, WriteFault, WriteOutcome,
};
use ds_core::store::SketchStore;
use ds_query::parser::parse_query;
use ds_query::query::Query;
use ds_query::workloads::imdb_predicate_columns;
use ds_storage::catalog::Database;
use ds_storage::gen::{imdb_database, ImdbConfig};

const SQL: &str = "SELECT COUNT(*) FROM title WHERE title.kind_id = 1";

fn iterations() -> usize {
    std::env::var("KILL_LOOP_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50)
}

/// One sketch + its encoded snapshot bytes, built once and shared by every
/// iteration (training dominates the cost; the drill is about the write
/// path).
fn fixture() -> &'static (Arc<Database>, DeepSketch, Vec<u8>, Query) {
    static FIXTURE: OnceLock<(Arc<Database>, DeepSketch, Vec<u8>, Query)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let db = Arc::new(imdb_database(&ImdbConfig::tiny(42)));
        let sketch = SketchBuilder::new(&db, imdb_predicate_columns(&db))
            .training_queries(120)
            .epochs(2)
            .sample_size(8)
            .hidden_units(8)
            .seed(7)
            .build()
            .expect("tiny sketch");
        let bytes = encode_snapshot("imdb", 2, &sketch, None);
        let query = parse_query(&db, SQL).expect("fixture query");
        (db, sketch, bytes, query)
    })
}

/// Deterministic xorshift64* — the same generator the serve-side fault
/// injector uses, reimplemented here so the drill stays self-contained.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// The fault plan for one iteration: early iterations sweep the structural
/// boundaries of the format (header, length fields, checksum trailer),
/// later ones draw random offsets. Roughly a quarter of the plans are
/// benign (fsync skipped, flip past EOF) so the drill also proves recovery
/// prefers the *new* generation when the write actually survived.
fn fault_for(iter: usize, len: usize, rng: &mut Rng) -> WriteFault {
    let boundary = [0, 1, 3, 4, 7, 8, 11, 12, len / 2, len - 9, len - 1];
    match iter % 8 {
        0 => WriteFault {
            truncate_at: Some(boundary[iter / 8 % boundary.len()]),
            ..WriteFault::none()
        },
        1 => WriteFault {
            truncate_at: Some(rng.below(len)),
            ..WriteFault::none()
        },
        2 => WriteFault {
            bit_flip: Some((boundary[iter / 8 % boundary.len()], 1 << rng.below(8))),
            ..WriteFault::none()
        },
        3 => WriteFault {
            bit_flip: Some((rng.below(len), 1 << rng.below(8))),
            ..WriteFault::none()
        },
        4 => WriteFault {
            crash_before_rename: true,
            ..WriteFault::none()
        },
        5 => WriteFault {
            truncate_at: Some(rng.below(len)),
            bit_flip: Some((rng.below(len / 2), 1 << rng.below(8))),
            skip_fsync: true,
            ..WriteFault::none()
        },
        // Benign plans: the write is durable despite the "fault".
        6 => WriteFault {
            skip_fsync: true,
            ..WriteFault::none()
        },
        _ => WriteFault {
            bit_flip: Some((len + rng.below(64), 1 << rng.below(8))),
            truncate_at: Some(len),
            ..WriteFault::none()
        },
    }
}

/// Applies `fault` to `bytes` the way the writer does — the independent
/// oracle for what ended up on disk when the write published at all.
fn apply_fault(bytes: &[u8], fault: &WriteFault) -> Vec<u8> {
    let mut payload = bytes.to_vec();
    if let Some(keep) = fault.truncate_at {
        payload.truncate(keep.min(payload.len()));
    }
    if let Some((offset, mask)) = fault.bit_flip {
        if offset < payload.len() && mask != 0 {
            payload[offset] ^= mask;
        }
    }
    payload
}

/// The drill proper: generation 1 is durable; generation 2 is written with
/// an injected fault. Recovery must come up with generation 2 exactly when
/// the faulted bytes still validate, and generation 1 (quarantining the
/// debris) in every other case — decided by an oracle that re-applies the
/// fault independently of the writer.
#[test]
fn fault_offset_kill_loop_always_recovers_last_durable_generation() {
    let (_db, sketch, bytes, query) = fixture();
    let expected = sketch.estimate_one(query);
    let root = std::env::temp_dir().join(format!("ds_kill_loop_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let mut rng = Rng(0x5eed_cafe);

    let iters = iterations();
    let (mut survived, mut corrupted) = (0usize, 0usize);
    for iter in 0..iters {
        let dir = root.join(format!("iter{iter:03}"));
        let gen1 = encode_snapshot("imdb", 1, sketch, None);
        write_snapshot_bytes(&dir, "imdb", 1, &gen1, &WriteFault::none())
            .unwrap_or_else(|e| panic!("iter {iter}: durable gen 1 write failed: {e}"))
            .durable();

        let fault = fault_for(iter, bytes.len(), &mut rng);
        let outcome = write_snapshot_bytes(&dir, "imdb", 2, bytes, &fault)
            .unwrap_or_else(|e| panic!("iter {iter}: faulted write errored: {e}"));
        let on_disk = apply_fault(bytes, &fault);
        let gen2_valid = !fault.crash_before_rename
            && matches!(decode_snapshot(&on_disk), Ok(s) if s.name == "imdb" && s.generation == 2);
        let expected_generation = if gen2_valid { 2 } else { 1 };

        let (store, _monitors, report) = SketchStore::open_dir(&dir)
            .unwrap_or_else(|e| panic!("iter {iter} ({fault:?}): recovery failed: {e}"));
        assert_eq!(
            report.loaded,
            vec![("imdb".to_string(), expected_generation)],
            "iter {iter}: fault {fault:?} must recover generation {expected_generation}"
        );
        // The recovered model answers bit-identically to the original —
        // recovery never serves torn weights.
        assert_eq!(
            store.estimate("imdb", query).unwrap().to_bits(),
            expected.to_bits(),
            "iter {iter}: recovered estimate must be bit-identical"
        );
        if gen2_valid {
            survived += 1;
            assert!(report.quarantined.is_empty(), "iter {iter}: {report:?}");
        } else {
            corrupted += 1;
            if matches!(outcome, WriteOutcome::CrashedBeforeRename(_)) {
                assert_eq!(report.removed_temps.len(), 1, "iter {iter}: {report:?}");
            } else {
                assert_eq!(report.quarantined.len(), 1, "iter {iter}: {report:?}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    // The plan must exercise both sides of the oracle or the drill proves
    // nothing (a full cycle through the 8 plan shapes guarantees both).
    if iters >= 8 {
        assert!(corrupted > 0, "no iteration corrupted the write");
        assert!(survived > 0, "no iteration survived the write");
    }
    std::fs::remove_dir_all(&root).ok();
}

/// Recovery from an *empty but existing* directory is a clean cold start.
#[test]
fn open_dir_on_fresh_directory_recovers_nothing() {
    let dir = std::env::temp_dir().join(format!("ds_kill_fresh_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (store, _monitors, report) = SketchStore::open_dir(&dir).unwrap();
    assert!(report.loaded.is_empty());
    assert!(report.quarantined.is_empty());
    assert!(store.list().is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

/// Child half of the real-kill drill: loops durable snapshot writes of
/// pre-encoded bytes (passed via env) at increasing generations until the
/// parent `kill -9`s it. Ignored so plain `cargo test` never runs it; the
/// parent invokes it by exact name. Exits immediately when the env
/// contract is absent (e.g. someone runs `cargo test -- --ignored`).
#[test]
#[ignore = "spawned as a crash child by real_kill_nine_loop_recovers"]
fn kill_loop_child_writer() {
    let (Ok(dir), Ok(bytes_path)) = (std::env::var("DS_KILL_DIR"), std::env::var("DS_KILL_BYTES"))
    else {
        return;
    };
    let sketch_bytes = std::fs::read(bytes_path).expect("child: snapshot sketch payload");
    let snap = decode_snapshot(&sketch_bytes).expect("child: payload must decode");
    let dir = std::path::PathBuf::from(dir);
    // Re-encode at each generation so every write is a full, checksummed
    // snapshot; the parent's SIGKILL lands at an arbitrary point inside.
    for generation in 2..u64::MAX {
        let bytes = encode_snapshot(&snap.name, generation, &snap.sketch, snap.monitor.as_ref());
        let _ = write_snapshot_bytes(&dir, &snap.name, generation, &bytes, &WriteFault::none());
    }
}

/// Real-kill drill: spawn this test binary's child writer, `kill -9` it at
/// a varied point mid-loop, and recover. Whatever generation the kill
/// interrupted, `open_dir` must come up serving a bit-identical model at
/// the newest durable generation.
#[cfg(unix)]
#[test]
fn real_kill_nine_loop_recovers() {
    let (_db, sketch, bytes, query) = fixture();
    let expected = sketch.estimate_one(query);
    let root = std::env::temp_dir().join(format!("ds_kill9_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&root).unwrap();
    let bytes_path = root.join("payload.dsnp");
    std::fs::write(&bytes_path, bytes).unwrap();
    let exe = std::env::current_exe().expect("test binary path");

    // Each spawn costs a process launch; a handful of kills at staggered
    // delays is plenty locally, CI scales it up via KILL_LOOP_ITERS.
    let iters = iterations().clamp(1, 50);
    let mut recovered_any_midwrite = false;
    for iter in 0..iters {
        let dir = root.join(format!("iter{iter:03}"));
        // Seed a durable generation 1 so recovery always has a floor.
        let gen1 = encode_snapshot("imdb", 1, sketch, None);
        write_snapshot_bytes(&dir, "imdb", 1, &gen1, &WriteFault::none())
            .unwrap()
            .durable();

        let mut child = std::process::Command::new(&exe)
            .args([
                "kill_loop_child_writer",
                "--ignored",
                "--exact",
                "--nocapture",
            ])
            .env("DS_KILL_DIR", &dir)
            .env("DS_KILL_BYTES", &bytes_path)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn child writer");
        // Stagger the kill point across iterations: the child spends its
        // life inside encode/write/fsync/rename, so any delay lands the
        // SIGKILL somewhere inside the protocol.
        std::thread::sleep(std::time::Duration::from_millis(
            40 + (iter as u64 * 7) % 60,
        ));
        child.kill().expect("kill -9 child");
        let _ = child.wait();

        let (store, _monitors, report) = SketchStore::open_dir(&dir)
            .unwrap_or_else(|e| panic!("iter {iter}: recovery after kill -9 failed: {e}"));
        assert_eq!(report.loaded.len(), 1, "iter {iter}: {report:?}");
        let (name, generation) = &report.loaded[0];
        assert_eq!(name, "imdb");
        assert!(*generation >= 1, "iter {iter}");
        assert!(
            report.quarantined.is_empty(),
            "iter {iter}: a SIGKILL mid-write must never publish a torn file, \
             only leave removable temps: {report:?}"
        );
        assert_eq!(
            store.estimate("imdb", query).unwrap().to_bits(),
            expected.to_bits(),
            "iter {iter}: generation {generation} must answer bit-identically"
        );
        recovered_any_midwrite |= !report.removed_temps.is_empty() || *generation > 1;
        std::fs::remove_dir_all(&dir).ok();
    }
    assert!(
        recovered_any_midwrite,
        "no iteration ever advanced past the seed generation — the child \
         writer is not actually writing"
    );
    std::fs::remove_dir_all(&root).ok();
}
