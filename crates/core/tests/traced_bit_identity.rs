//! Tracing must only ever *measure*: building the same sketch with the
//! global tracer enabled and disabled has to produce bit-identical weights
//! and bit-identical estimates. This test lives alone in its own binary so
//! toggling the process-global tracer cannot race other tests.

use ds_core::builder::SketchBuilder;
use ds_query::workloads::imdb_predicate_columns;
use ds_storage::gen::{imdb_database, ImdbConfig};

fn build_bytes(db: &ds_storage::catalog::Database, threads: usize) -> Vec<u8> {
    SketchBuilder::new(db, imdb_predicate_columns(db))
        .training_queries(200)
        .epochs(3)
        .sample_size(32)
        .hidden_units(16)
        .threads(threads)
        .seed(0x0B5)
        .build()
        .expect("build sketch")
        .to_bytes()
}

#[test]
fn traced_and_untraced_training_are_bit_identical() {
    let db = imdb_database(&ImdbConfig::tiny(7));
    let obs = ds_obs::global();
    assert!(!obs.is_enabled(), "tracer must start disabled");

    for threads in [1, 2] {
        let untraced = build_bytes(&db, threads);

        obs.enable();
        let traced = build_bytes(&db, threads);
        obs.disable();

        assert_eq!(
            untraced, traced,
            "tracing perturbed the trained sketch at {threads} thread(s)"
        );
    }

    // The traced runs must actually have recorded the lifecycle spans —
    // otherwise this test would pass vacuously with instrumentation dead.
    for path in ["build", "build/train", "build/train/epoch"] {
        let stat = obs
            .span_stat(path)
            .unwrap_or_else(|| panic!("span {path} missing"));
        assert!(stat.count > 0, "span {path} never completed");
    }
    assert!(
        obs.counter_value("build/queries_generated") >= 200,
        "builder counters missing"
    );
}
