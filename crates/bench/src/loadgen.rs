//! An honest open-loop load generator for the serving benchmarks.
//!
//! The closed-loop harness (N clients, each waiting for its previous
//! response) understates tail latency under overload: a slow response
//! throttles its own client, so the server never sees the arrivals it
//! would face from independent users — the *coordinated omission* problem.
//! This generator is open-loop: request arrival times are drawn up front
//! from a seeded Poisson process at the target rate, and each request's
//! latency is measured **from its scheduled arrival time**, not from when
//! a worker got around to sending it. A request that waits behind an
//! overloaded server accrues that wait in its recorded latency, exactly as
//! a real user would experience it.
//!
//! Failure accounting mirrors the fleet's chaos contract: a request that
//! errors is retried (against whatever backend the closure routes it to)
//! until it succeeds or its per-request deadline passes; only a
//! deadline-exhausted request counts as *failed forever*. The chaos
//! benchmark asserts that number is zero while replicas die and restart
//! mid-run.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use ds_obs::LogHistogram;

/// Configuration for one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Target offered load, requests per second (Poisson arrivals).
    pub target_rps: f64,
    /// Total requests to offer.
    pub total: usize,
    /// Sender threads. Enough to cover the target concurrency — when all
    /// are busy, arrivals queue and the queueing time lands in the
    /// recorded latency (that's the point).
    pub workers: usize,
    /// RNG seed for the arrival schedule.
    pub seed: u64,
    /// Per-request retry deadline; exhausting it marks the request failed
    /// forever.
    pub deadline: Duration,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            target_rps: 500.0,
            total: 1000,
            workers: 8,
            seed: 0x0bea_7ab1e,
            deadline: Duration::from_secs(10),
        }
    }
}

/// What one open-loop run observed.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// The load the schedule offered (requests per second).
    pub offered_rps: f64,
    /// The load the backend actually completed.
    pub achieved_rps: f64,
    /// Completed requests (including after retries).
    pub completed: u64,
    /// Requests whose deadline passed without a success.
    pub failed_forever: u64,
    /// Total retries across all requests.
    pub retries: u64,
    /// Latency percentiles in microseconds, measured from each request's
    /// *scheduled arrival* (coordinated-omission-free).
    pub p50_us: u64,
    /// 95th percentile, same clock.
    pub p95_us: u64,
    /// 99th percentile, same clock.
    pub p99_us: u64,
    /// Worst observed latency.
    pub max_us: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

/// Draws `n` exponential inter-arrival gaps at `rate_rps` from a seeded
/// xorshift64*, returning cumulative offsets from the run start. Seeded →
/// the same schedule replays exactly.
fn arrival_schedule(n: usize, rate_rps: f64, seed: u64) -> Vec<Duration> {
    let mut rng = if seed == 0 { 0x9e37_79b9 } else { seed };
    let mut draw = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        (rng.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64
    };
    let mean_gap = 1.0 / rate_rps.max(1e-9);
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            // Inverse-CDF exponential draw; clamp the uniform away from 0
            // so ln() stays finite.
            let u = draw().max(1e-12);
            t += -u.ln() * mean_gap;
            Duration::from_secs_f64(t)
        })
        .collect()
}

/// Runs one open-loop experiment. `send` is called with the request index
/// and must perform exactly one attempt, returning `Ok` on success;
/// failures are retried until the request's deadline. It receives a worker
/// slot id as the second argument so backends can keep one connection per
/// worker.
///
/// The closure is shared across worker threads, so it must be `Sync`;
/// per-worker mutable state belongs behind the slot id.
pub fn run_open_loop<F>(cfg: &OpenLoopConfig, send: F) -> OpenLoopReport
where
    F: Fn(usize, usize) -> std::io::Result<()> + Sync,
{
    let schedule = arrival_schedule(cfg.total, cfg.target_rps, cfg.seed);
    let offered_rps = if cfg.total > 1 {
        (cfg.total as f64 - 1.0) / schedule.last().map(|d| d.as_secs_f64()).unwrap_or(1.0)
    } else {
        cfg.target_rps
    };
    let next = AtomicUsize::new(0);
    let completed = AtomicU64::new(0);
    let failed_forever = AtomicU64::new(0);
    let retries = AtomicU64::new(0);
    let latencies = LogHistogram::new();
    let max_us = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for worker in 0..cfg.workers.max(1) {
            let (schedule, next) = (&schedule, &next);
            let (completed, failed_forever, retries) = (&completed, &failed_forever, &retries);
            let (latencies, max_us, send) = (&latencies, &max_us, &send);
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&arrival) = schedule.get(i) else {
                    return;
                };
                // Open loop: wait for the scheduled arrival even if the
                // backend is drowning — never let its slowness thin the
                // offered load.
                let now = start.elapsed();
                if arrival > now {
                    std::thread::sleep(arrival - now);
                }
                let deadline = start + arrival + cfg.deadline;
                let mut attempts = 0u64;
                let ok = loop {
                    attempts += 1;
                    match send(i, worker) {
                        Ok(()) => break true,
                        Err(_) if Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break false,
                    }
                };
                retries.fetch_add(attempts - 1, Ordering::Relaxed);
                if ok {
                    // Latency from *scheduled arrival*: queueing delay a
                    // real user would see is part of the number.
                    let lat = start.elapsed().saturating_sub(arrival);
                    let us = lat.as_micros() as u64;
                    latencies.record(us);
                    max_us.fetch_max(us, Ordering::Relaxed);
                    completed.fetch_add(1, Ordering::Relaxed);
                } else {
                    failed_forever.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let completed = completed.into_inner();
    OpenLoopReport {
        offered_rps,
        achieved_rps: completed as f64 / elapsed.as_secs_f64().max(1e-9),
        completed,
        failed_forever: failed_forever.into_inner(),
        retries: retries.into_inner(),
        p50_us: latencies.quantile(0.50),
        p95_us: latencies.quantile(0.95),
        p99_us: latencies.quantile(0.99),
        max_us: max_us.into_inner(),
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn schedule_is_seeded_poisson_at_the_target_rate() {
        let a = arrival_schedule(2000, 1000.0, 7);
        let b = arrival_schedule(2000, 1000.0, 7);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "monotone arrivals");
        // 2000 arrivals at 1000 rps span ~2s; exponential gaps put the
        // total within a broad band around the mean.
        let span = a.last().unwrap().as_secs_f64();
        assert!((1.0..4.0).contains(&span), "span={span}");
        let c = arrival_schedule(100, 1000.0, 8);
        assert_ne!(a[..100], c[..], "different seed, different schedule");
    }

    #[test]
    fn open_loop_counts_successes_retries_and_permanent_failures() {
        let calls = AtomicU64::new(0);
        let cfg = OpenLoopConfig {
            target_rps: 10_000.0,
            total: 200,
            workers: 4,
            seed: 3,
            deadline: Duration::from_secs(5),
        };
        // Every 10th request fails once, then succeeds on retry.
        let report = run_open_loop(&cfg, |i, _worker| {
            let n = calls.fetch_add(1, Ordering::Relaxed);
            if i.is_multiple_of(10) && n.is_multiple_of(2) {
                Err(std::io::Error::other("flaky"))
            } else {
                Ok(())
            }
        });
        assert_eq!(report.completed + report.failed_forever, 200);
        assert_eq!(report.failed_forever, 0, "retries must absorb blips");
        assert!(report.retries > 0, "some requests must have retried");
        assert!(report.p99_us >= report.p50_us);
        assert!(report.offered_rps > 1000.0, "{}", report.offered_rps);

        // A backend that is down forever → every request fails forever.
        let cfg = OpenLoopConfig {
            target_rps: 10_000.0,
            total: 20,
            workers: 2,
            seed: 4,
            deadline: Duration::from_millis(20),
        };
        let report = run_open_loop(&cfg, |_, _| Err(std::io::Error::other("dead")));
        assert_eq!(report.completed, 0);
        assert_eq!(report.failed_forever, 20);
    }
}
