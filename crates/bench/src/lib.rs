//! # ds-bench
//!
//! Experiment harnesses for the Deep Sketches reproduction. Every table and
//! figure of the paper maps to one bench target (see `benches/` and
//! DESIGN.md §3); this library holds the shared setup — the benchmark-scale
//! databases, the standard sketch configuration, and reporting helpers —
//! so that all experiments run against identical state.
//!
//! Run a single experiment with
//! `cargo bench -p ds-bench --bench <name>`; `cargo bench` regenerates
//! everything.

pub mod harness;
pub mod loadgen;

use ds_core::builder::SketchBuilder;
use ds_core::metrics::QErrorSummary;
use ds_est::CardinalityEstimator;
use ds_query::query::Query;
use ds_storage::catalog::Database;
use ds_storage::gen::{imdb_database, tpch_database, ImdbConfig, TpchConfig};

/// Master seed for all experiments — change it to re-roll every dataset,
/// sample, and initialization at once.
pub const BENCH_SEED: u64 = 0xBE7C_2024;

/// The benchmark-scale synthetic IMDb (~150k rows across 6 tables).
/// Large enough for meaningful skew/correlation, small enough that every
/// experiment finishes in minutes on one CPU core.
pub fn bench_imdb() -> Database {
    imdb_database(&ImdbConfig {
        movies: 8_000,
        keywords: 4_000,
        companies: 1_500,
        persons: 20_000,
        seed: BENCH_SEED,
    })
}

/// The benchmark-scale synthetic TPC-H subset.
pub fn bench_tpch() -> Database {
    tpch_database(&TpchConfig {
        customers: 1_500,
        parts: 2_000,
        suppliers: 100,
        seed: BENCH_SEED ^ 1,
    })
}

/// The standard sketch configuration used by the accuracy experiments:
/// 8000 training queries, 24 epochs, 100-tuple samples, 64 hidden units,
/// up to 5 tables per training query (JOB-light needs up to 4 joins).
pub fn standard_sketch_builder<'a>(
    db: &'a Database,
    predicate_columns: Vec<ds_storage::catalog::ColRef>,
) -> SketchBuilder<'a> {
    SketchBuilder::new(db, predicate_columns)
        .training_queries(10_000)
        .epochs(30)
        .sample_size(100)
        .hidden_units(96)
        .batch_size(128)
        .max_tables(5)
        .max_predicates(4)
        .seed(BENCH_SEED ^ 2)
}

/// Directory where trained bench sketches are cached between experiment
/// runs (a sketch is self-contained, so reloading is exact).
pub fn cache_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/ds-bench-cache")
}

/// Cache path of the standard IMDb sketch; keyed by seed and database size
/// so generator changes invalidate it.
pub fn standard_sketch_cache_path(db: &Database) -> std::path::PathBuf {
    cache_dir().join(format!(
        "imdb-{:x}-{}-q10000-e30-h96.sketch",
        BENCH_SEED,
        db.total_rows()
    ))
}

/// Loads the standard IMDb sketch from the cache, or trains and caches it.
pub fn standard_imdb_sketch(db: &Database) -> ds_core::sketch::DeepSketch {
    let path = standard_sketch_cache_path(db);
    if let Ok(bytes) = std::fs::read(&path) {
        if let Ok(sketch) = ds_core::sketch::DeepSketch::from_bytes(&bytes) {
            println!("(reusing cached sketch from {})", path.display());
            return sketch;
        }
    }
    println!("training standard sketch (10000 queries, 30 epochs) …");
    let sketch = standard_sketch_builder(db, ds_query::workloads::imdb_predicate_columns(db))
        .build()
        .expect("sketch construction");
    cache_sketch(&path, &sketch);
    sketch
}

/// Writes a sketch into the bench cache (best effort).
pub fn cache_sketch(path: &std::path::Path, sketch: &ds_core::sketch::DeepSketch) {
    if std::fs::create_dir_all(cache_dir()).is_ok() {
        let _ = std::fs::write(path, sketch.to_bytes());
    }
}

/// Evaluates an estimator against ground truth over a workload, returning
/// the per-query q-errors. Goes through the unified
/// [`CardinalityEstimator::estimate_batch`] entry point, so estimators
/// with a real batched path (the Deep Sketch, fleets) use it.
pub fn qerrors_against_truth(
    estimator: &dyn CardinalityEstimator,
    truths: &[f64],
    workload: &[Query],
) -> Vec<f64> {
    estimator
        .estimate_batch(workload)
        .into_iter()
        .zip(truths)
        .map(|(est, &t)| ds_core::metrics::qerror(est, t))
        .collect()
}

/// Prints an experiment banner.
pub fn banner(id: &str, paper_artifact: &str, claim: &str) {
    println!("\n================================================================");
    println!("{id} — reproduces {paper_artifact}");
    println!("{claim}");
    println!("================================================================");
}

/// Prints a q-error summary block with the paper's reference rows for
/// side-by-side comparison.
pub fn print_table1_style(rows: &[(&str, QErrorSummary)], paper_reference: Option<&str>) {
    println!("{}", QErrorSummary::table_header());
    for (label, summary) in rows {
        println!("{}", summary.table_row(label));
    }
    if let Some(reference) = paper_reference {
        println!("\npaper reference (real IMDb, HyPer, PostgreSQL 10.3):");
        println!("{reference}");
    }
}

/// Table 1 of the paper, verbatim, for side-by-side printing.
pub const PAPER_TABLE1: &str = "\
             median     90th     95th     99th      max     mean
Deep Sketch    3.82     78.4      362      927     1110     57.9
HyPer          14.6      454     1208     2764     4228      224
PostgreSQL     7.93      164     1104     2912     3477      174";

#[cfg(test)]
mod tests {
    use super::*;
    use ds_est::oracle::TrueCardinalityOracle;

    #[test]
    fn bench_databases_have_expected_shape() {
        let imdb = bench_imdb();
        assert_eq!(imdb.num_tables(), 6);
        assert!(imdb.total_rows() > 50_000, "rows={}", imdb.total_rows());
        let tpch = bench_tpch();
        assert_eq!(tpch.num_tables(), 7);
        assert!(tpch.total_rows() > 30_000);
    }

    #[test]
    fn qerrors_helper_matches_manual_computation() {
        let db = ds_storage::gen::imdb_database(&ds_storage::gen::ImdbConfig::tiny(1));
        let oracle = TrueCardinalityOracle::new(&db);
        let wl = ds_query::workloads::job_light::job_light_workload(&db, 1);
        let truths: Vec<f64> = wl.iter().map(|q| oracle.estimate(q)).collect();
        let qs = qerrors_against_truth(&oracle, &truths, &wl);
        assert!(qs.iter().all(|&q| (q - 1.0).abs() < 1e-12));
    }
}
