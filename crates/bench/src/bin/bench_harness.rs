//! `bench_harness` — the pinned quick-mode benchmark suite behind the CI
//! `bench-smoke` gate.
//!
//! Runs eight stages sized to finish in a couple of minutes on one core:
//!
//! 1. **kernels** — tiled/threaded matmul vs the reference kernel at the
//!    MSCN-critical shapes (same shapes as the full `nn_kernels` bench);
//! 2. **training** — a miniature fig1a build (small synthetic IMDb, 800
//!    queries, 3 epochs) whose validation q-error is fully deterministic;
//! 3. **inference** — the frozen fused featurize-and-forward path vs the
//!    training-shape reference, single uncached estimates;
//! 4. **serving** — a small coalescing-vs-per-request client fleet against
//!    the TCP server, the tracing-enabled overhead measurement, and the
//!    warm-cache speedup of the template-keyed estimate cache;
//! 5. **fleet** — a 4-shard, R=2 replicated fleet behind the routing
//!    client: closed-loop throughput vs a single shard (gated as
//!    *scaling efficiency*, normalized by the cores actually available, so
//!    the gate is meaningful on a 1-core host), plus an open-loop chaos
//!    run that SIGKILLs a replica mid-traffic, restarts it, heals, and
//!    gates on **zero failed-forever requests** and **zero lost sketch
//!    generations**;
//! 6. **lifecycle** — the retrain-and-hot-swap machinery's serving-path
//!    cost: the generation-keyed store swap expressed as a fraction of one
//!    request's CPU budget, and the shadow-mirror work (`shadowing` check,
//!    query clone, job enqueue) microbenchmarked against the same budget —
//!    gated under the issue's 2% serve-throughput allowance;
//! 7. **observability** — the fleet observability plane's serving-path
//!    cost: the v3 trace-propagation work (client root mint + token
//!    format, server parse + span mint + child derivation, exemplar hex
//!    fields) as a fraction of the per-request CPU budget, gated under
//!    2%, and the wall latency of a fleetmon-style sweep that scrapes a
//!    4-shard fleet's `STATS` and merges the expositions (merge
//!    correctness asserted inline);
//! 8. **featurization** — the extended-operator feature path: the extra
//!    per-query cost of the schema-v2 per-predicate sampling-bitmap
//!    features (every predicate — `=`,`<`,`>`,`IN`,`LIKE` — evaluated
//!    against the materialized table samples) over the v1 featurizer on
//!    the same workload, expressed against the stage-4 per-request CPU
//!    budget and gated under 2% via a budget-pinned baseline.
//!
//! The run is written to `target/BENCH_quick.latest.json` and diffed
//! against the committed baseline `BENCH_quick.json`:
//!
//! ```text
//! bench_harness --quick --check                # gate against the baseline
//! bench_harness --quick --update               # refresh the baseline
//! bench_harness --quick --check --threshold 0.35
//! ```
//!
//! `--check` exits nonzero when any portable metric regressed past the
//! threshold (add `--strict` to gate absolute timings too — only sensible
//! when baseline and current ran on the same machine). `--trace` enables
//! the global `ds-obs` tracer and prints the span/counter report to stderr
//! after the run.

use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ds_bench::harness::{compare, BenchReport, Metric};
use ds_bench::loadgen::{run_open_loop, OpenLoopConfig};
use ds_bench::{banner, BENCH_SEED};
use ds_core::builder::SketchBuilder;
use ds_core::store::SketchStore;
use ds_nn::pool::PoolConfig;
use ds_nn::tensor::{reference, Kernel, Tensor};
use ds_obs::{PrettySink, Sink, TraceReport};
use ds_query::parser::parse_query;
use ds_query::workloads::imdb_predicate_columns;
use ds_serve::{
    Client, Connection, FaultInjector, Fleet, FleetClient, FleetConfig, Metrics, Request,
    RequestTimeline, Response, ServeConfig, Server, TemplateInterner,
};
use ds_storage::catalog::Database;
use ds_storage::gen::{imdb_database, ImdbConfig};

const REPO_ROOT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
const DEFAULT_THRESHOLD: f64 = 0.25;

/// Quick-mode fleet size: small enough to finish in seconds, large enough
/// for coalescing to engage.
const CLIENTS: usize = 16;
const QUERIES_PER_CLIENT: usize = 25;

/// The CPU-budget and instrumented fleets run longer than the speedup
/// fleets so per-run spawn/teardown cost and the /proc CPU-tick
/// granularity amortize away.
const OVERHEAD_QUERIES_PER_CLIENT: usize = 200;

/// Same join-heavy workload shapes as the full `serve_throughput` bench.
const WORKLOAD: &[&str] = &[
    "SELECT COUNT(*) FROM title t, movie_keyword mk \
     WHERE mk.movie_id = t.id AND mk.keyword_id = 11",
    "SELECT COUNT(*) FROM title t, movie_keyword mk \
     WHERE mk.movie_id = t.id AND t.production_year > 1995",
    "SELECT COUNT(*) FROM title t, movie_companies mc \
     WHERE mc.movie_id = t.id AND mc.company_type_id = 1",
    "SELECT COUNT(*) FROM title t, movie_info mi \
     WHERE mi.movie_id = t.id AND mi.info_type_id < 50 AND t.kind_id = 1",
    "SELECT COUNT(*) FROM title t, movie_keyword mk, movie_companies mc \
     WHERE mk.movie_id = t.id AND mc.movie_id = t.id \
     AND t.production_year > 1990",
    "SELECT COUNT(*) FROM title t, cast_info ci, movie_info mi \
     WHERE ci.movie_id = t.id AND mi.movie_id = t.id AND ci.role_id = 2",
];

struct Options {
    check: bool,
    update: bool,
    strict: bool,
    trace: bool,
    threshold: f64,
    baseline: String,
    summary: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_harness [--quick] [--check] [--update] [--strict] [--trace]\n\
         \x20                    [--baseline <path>] [--threshold <frac>] [--summary <path>]\n\
         \n\
         --quick      run the pinned quick suite (default; only suite today)\n\
         --check      diff against the baseline; exit 1 on regression\n\
         --update     overwrite the baseline with this run\n\
         --strict     gate absolute timings too (same-machine diffs only)\n\
         --trace      enable the ds-obs tracer; print span report to stderr\n\
         --baseline   baseline path (default: <repo>/BENCH_quick.json)\n\
         --threshold  tolerated fractional worsening (default: {DEFAULT_THRESHOLD})\n\
         --summary    write a markdown diff table (for $GITHUB_STEP_SUMMARY)"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        check: false,
        update: false,
        strict: false,
        trace: false,
        threshold: DEFAULT_THRESHOLD,
        baseline: format!("{REPO_ROOT}/BENCH_quick.json"),
        summary: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {} // the only suite; accepted for CI-visible intent
            "--check" => opts.check = true,
            "--update" => opts.update = true,
            "--strict" => opts.strict = true,
            "--trace" => opts.trace = true,
            "--baseline" => match args.next() {
                Some(p) => opts.baseline = p,
                None => usage(),
            },
            "--threshold" => match args.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => opts.threshold = t,
                _ => usage(),
            },
            "--summary" => match args.next() {
                Some(p) => opts.summary = Some(p),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    opts
}

/// Compact metric formatting for the markdown table: enough digits to
/// compare, no scientific noise.
fn fmt_value(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 0.001 || v == 0.0 {
        format!("{v:.4}")
    } else {
        format!("{v:.2e}")
    }
}

/// Renders the current-vs-baseline diff as a GitHub-flavored markdown
/// table — the payload CI appends to `$GITHUB_STEP_SUMMARY` so a
/// regression is readable from the run page without downloading
/// artifacts. Written on success AND failure; `regressions` marks the
/// failing rows.
fn summary_markdown(
    baseline: Option<&BenchReport>,
    current: &BenchReport,
    regressions: &[ds_bench::harness::Regression],
    opts: &Options,
) -> String {
    use std::fmt::Write as _;
    let mut md = String::new();
    let _ = writeln!(md, "### bench_harness `{}` suite\n", current.suite);
    let _ = writeln!(
        md,
        "Gate: portable metrics{} within ±{:.0}% of `{}`.\n",
        if opts.strict {
            " and absolute timings (strict)"
        } else {
            ""
        },
        opts.threshold * 100.0,
        opts.baseline,
    );
    let _ = writeln!(md, "| metric | baseline | current | Δ | gated | status |");
    let _ = writeln!(md, "|---|---:|---:|---:|---|---|");
    for m in &current.metrics {
        let base = baseline.and_then(|b| b.get(&m.name));
        let (base_s, delta_s) = match base {
            Some(b) if b.value != 0.0 => {
                let delta = (m.value - b.value) / b.value * 100.0;
                (fmt_value(b.value), format!("{delta:+.1}%"))
            }
            Some(b) => (fmt_value(b.value), "n/a".to_string()),
            None => ("—".to_string(), "new".to_string()),
        };
        let gated = if m.portable {
            "portable"
        } else if opts.strict {
            "strict"
        } else {
            "local"
        };
        let status = if regressions.iter().any(|r| r.name == m.name) {
            "**REGRESSED**"
        } else if base.is_some() {
            "ok"
        } else {
            "—"
        };
        let _ = writeln!(
            md,
            "| `{}` | {} | {} | {} | {} | {} |",
            m.name,
            base_s,
            fmt_value(m.value),
            delta_s,
            gated,
            status,
        );
    }
    if baseline.is_none() {
        let _ = writeln!(md, "\nNo readable baseline at `{}`.", opts.baseline);
    }
    md
}

/// Minimum wall-clock seconds of `iters` runs of `f`. For the ratio-style
/// gates (kernel speedup, coalescing speedup, tracing overhead) the minimum
/// is the noise-robust estimator: both variants of a ratio reach their
/// unperturbed best case, where a median still carries scheduler and
/// frequency-scaling jitter that skews the ratio.
fn min_secs<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Cumulative process CPU seconds (user + system) from `/proc/self/stat`.
/// The traced-overhead gate uses this for the per-request CPU budget —
/// unlike wall clock it does not count the fleet's idle waits.
fn process_cpu_secs() -> f64 {
    let stat = std::fs::read_to_string("/proc/self/stat").expect("read /proc/self/stat");
    // Field 2 (comm) may contain spaces but is parenthesized; utime and
    // stime are the 12th and 13th fields after the closing paren.
    let rest = stat.rsplit(')').next().expect("stat format");
    let mut fields = rest.split_whitespace().skip(11);
    let utime: f64 = fields.next().expect("utime").parse().expect("utime");
    let stime: f64 = fields.next().expect("stime").parse().expect("stime");
    (utime + stime) / 100.0
}

fn filled(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut s = seed | 1;
    let data = (0..rows * cols)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Stage 1: matmul kernels at the MSCN-critical shapes, 25 iterations each
/// (vs 30 in the full bench). The tiled-vs-reference speedup of the two
/// substantial shapes is a dimensionless ratio and gates CI; the head
/// shape's 40µs kernel is too short for a stable ratio, so it (and all
/// absolute medians) only records for same-machine diffs.
fn stage_kernels(report: &mut BenchReport) {
    let shapes = [
        ("input_384x106_x256", 384usize, 106usize, 256usize, true),
        ("hidden_384x256_x256", 384, 256, 256, true),
        ("head_384x256_x1", 384, 256, 1, false),
    ];
    println!(
        "\n[1/8] matmul kernels ({} shapes, 25 iters):",
        shapes.len()
    );
    for (name, m, k, n, gated) in shapes {
        let a = filled(m, k, 0xA0 ^ m as u64);
        let b = filled(k, n, 0xB0 ^ n as u64);
        let t_ref = min_secs(25, || reference::matmul(&a, &b));
        let t_tiled = min_secs(25, || {
            a.matmul_pool(&b, Kernel::Dense, PoolConfig::single())
        });
        assert_eq!(
            reference::matmul(&a, &b).data(),
            a.matmul_pool(&b, Kernel::Dense, PoolConfig::single())
                .data(),
            "kernel paths diverged at {name}"
        );
        let speedup = t_ref / t_tiled;
        println!("  {name:<22} tiled {t_tiled:>10.6}s  speedup {speedup:>5.2}x");
        let speedup_name = format!("kernel/{name}/tiled_speedup");
        report.push(if gated {
            Metric::portable(speedup_name, speedup, true)
        } else {
            Metric::local(speedup_name, speedup, true)
        });
        report.push(Metric::local(
            format!("kernel/{name}/tiled_secs"),
            t_tiled,
            false,
        ));
    }
}

/// Stage 2: a miniature fig1a build. Seeded end to end and bit-identical
/// at any thread count, so the validation q-error is an exact, portable
/// quality gate; wall-clock numbers ride along as local metrics.
fn stage_training(report: &mut BenchReport) -> (Arc<Database>, Arc<SketchStore>) {
    println!("\n[2/8] mini fig1a build (800 queries, 3 epochs):");
    let db = Arc::new(imdb_database(&ImdbConfig {
        movies: 2_000,
        keywords: 1_000,
        companies: 400,
        persons: 5_000,
        seed: BENCH_SEED ^ 21,
    }));
    let (sketch, build) = SketchBuilder::new(&db, imdb_predicate_columns(&db))
        .training_queries(800)
        .epochs(3)
        .sample_size(256)
        .hidden_units(256)
        .max_tables(4)
        .max_predicates(4)
        .seed(BENCH_SEED ^ 22)
        .build_with_report()
        .expect("mini build");
    let val_qerror = build.training.final_val_qerror().expect("validation split");
    let total_secs =
        (build.generation + build.execution + build.featurization + build.training.total_duration)
            .as_secs_f64();
    let rows_per_sec = build
        .training
        .epochs
        .last()
        .map(|e| e.rows_per_sec)
        .unwrap_or(0.0);
    println!(
        "  val mean q-error {val_qerror:>8.3}   total {total_secs:>7.2}s   {rows_per_sec:>8.0} rows/s"
    );
    report.push(Metric::portable(
        "train/final_val_qerror",
        val_qerror,
        false,
    ));
    report.push(Metric::local("train/total_secs", total_secs, false));
    report.push(Metric::local("train/rows_per_sec", rows_per_sec, true));

    let store = Arc::new(SketchStore::new());
    store.insert("imdb", sketch).expect("fresh store");
    (db, store)
}

/// Stage 3: single uncached estimates through the frozen fused
/// featurize-and-forward path vs the training-shape reference forward. The
/// speedup is a dimensionless ratio and gates CI; the absolute per-estimate
/// latency records for same-machine diffs (the issue's sub-10µs target).
/// The fused path must stay bit-identical to the reference — asserted here
/// on the live workload before timing.
fn stage_inference(report: &mut BenchReport, db: &Arc<Database>, store: &Arc<SketchStore>) {
    println!("\n[3/8] frozen inference (fused featurize-and-forward):");
    let frozen = store.get("imdb").expect("sketch");
    assert!(
        frozen.frozen().is_some(),
        "builder finalize must attach the frozen artifact"
    );
    let mut reference = (*frozen).clone();
    reference.clear_frozen();
    let queries: Vec<_> = WORKLOAD
        .iter()
        .map(|sql| parse_query(db, sql).expect("parse workload"))
        .collect();
    for q in &queries {
        assert_eq!(
            frozen.estimate_one(q).to_bits(),
            reference.estimate_one(q).to_bits(),
            "fused path diverged from the reference"
        );
    }
    let t_ref = min_secs(100, || {
        for q in &queries {
            std::hint::black_box(reference.estimate_one(q));
        }
    });
    let t_frozen = min_secs(100, || {
        for q in &queries {
            std::hint::black_box(frozen.estimate_one(q));
        }
    });
    let speedup = t_ref / t_frozen;
    let single_us = t_frozen * 1e6 / queries.len() as f64;
    println!(
        "  reference {:>7.1} µs/est   frozen {single_us:>6.1} µs/est   speedup {speedup:.2}x",
        t_ref * 1e6 / queries.len() as f64
    );
    report.push(Metric::portable("infer/frozen_speedup", speedup, true));
    report.push(Metric::local("infer/single_estimate_us", single_us, false));
}

/// Runs a quick client fleet of `CLIENTS` connections issuing
/// `queries_per_client` estimates each; returns elapsed seconds.
/// `instrumented` turns on the per-request timeline pipeline with a zero
/// slow threshold, so every request pays for six stamps, five
/// stage-histogram records and an exemplar-ring push; the bare fleet turns
/// it off so the pair brackets the full tracing cost.
fn run_fleet(
    db: &Arc<Database>,
    store: &Arc<SketchStore>,
    max_batch: usize,
    queries_per_client: usize,
    instrumented: bool,
    cache_capacity: usize,
) -> f64 {
    let server = Server::start(
        Arc::clone(db),
        Arc::clone(store),
        ServeConfig::builder()
            .workers(1)
            .max_batch(max_batch)
            .queue_capacity(1024)
            .request_timeout(Duration::from_secs(60))
            .max_connections(CLIENTS + 4)
            .timeline(instrumented)
            .slow_threshold(Duration::ZERO)
            .cache_capacity(cache_capacity)
            .build()
            .expect("valid harness config"),
    )
    .expect("bind server");
    let addr = server.local_addr();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                s.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    for k in 0..queries_per_client {
                        let sql = WORKLOAD[(i + k) % WORKLOAD.len()];
                        c.estimate_value("imdb", sql).expect("wire estimate");
                    }
                    c.quit().expect("QUIT");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let snap = server.shutdown();
    assert_eq!(snap.ok, (CLIENTS * queries_per_client) as u64);
    assert_eq!(snap.errors + snap.shed + snap.timeouts, 0);
    elapsed
}

/// Stage 3: coalesced vs per-request serving, plus the tracing overhead:
/// the same coalesced fleet with every observability hook live — request
/// timelines (stage histograms plus an exemplar for *every* request) and
/// the global `ds-obs` tracer — plus the traced-overhead gate.
///
/// The gated overhead is NOT a wall-clock fleet ratio: on a busy shared
/// host, fleet times (wall *and* CPU) fluctuate by ±10% in regimes lasting
/// many seconds, which no interleaving or robust statistic can average
/// away at CI-friendly durations — a 2% budget would gate on noise.
/// Instead the per-request instrumentation work (the exact code the server
/// runs: interned template lookup, six stamps, five histogram records,
/// exemplar materialization + ring push) is microbenchmarked in a tight
/// loop — stable to nanoseconds, like the kernel gates — and expressed as
/// a percentage of the coalesced per-request CPU budget measured from the
/// fleet. The committed baseline pins it at the issue's 2% budget so the
/// default CI threshold fails the gate near ~2.7%. The instrumented fleet
/// still runs end to end (proving the traced path under concurrency) and
/// records its wall clock as a local metric; `serve_throughput` reports
/// the honest end-to-end overhead into `BENCH_serve.json`.
fn stage_serving(report: &mut BenchReport, db: &Arc<Database>, store: &Arc<SketchStore>) -> f64 {
    let total = CLIENTS * QUERIES_PER_CLIENT;
    println!("\n[4/8] serving fleet ({CLIENTS} clients x {QUERIES_PER_CLIENT} queries):");
    // The coalescing and overhead fleets disable the estimate cache: they
    // measure the forward-pass path, and the 6-template workload would
    // otherwise be answered almost entirely from memory.
    let _ = run_fleet(db, store, 1, QUERIES_PER_CLIENT, false, 0); // warm-up
    let per_req_secs = min_secs(3, || run_fleet(db, store, 1, QUERIES_PER_CLIENT, false, 0));
    let coal_secs = min_secs(3, || run_fleet(db, store, 32, QUERIES_PER_CLIENT, false, 0));
    let per_req_rps = total as f64 / per_req_secs;
    let coal_rps = total as f64 / coal_secs;
    let speedup = coal_rps / per_req_rps;
    println!("  per-request {per_req_rps:>7.0} req/s   coalesced {coal_rps:>7.0} req/s   speedup {speedup:.2}x");

    // Warm-cache fleet: same coalesced config with the default cache on.
    // The fleet cycles 6 templates, so after one cold pass every request is
    // a hit — the ratio is the end-to-end value of the estimate cache.
    let warm_secs = min_secs(3, || {
        run_fleet(db, store, 32, QUERIES_PER_CLIENT, false, 4096)
    });
    let warm_rps = total as f64 / warm_secs;
    let cache_speedup = warm_rps / coal_rps;
    println!("  warm-cache  {warm_rps:>7.0} req/s   cache-hit speedup {cache_speedup:.2}x");

    // Per-request CPU budget of the coalesced path, from a longer fleet so
    // the /proc/self/stat tick granularity (~10ms) stays under 1%.
    let cpu0 = process_cpu_secs();
    let _ = run_fleet(db, store, 32, OVERHEAD_QUERIES_PER_CLIENT, false, 0);
    let request_cpu_us = (process_cpu_secs() - cpu0).max(1e-9) * 1e6
        / (CLIENTS * OVERHEAD_QUERIES_PER_CLIENT) as f64;

    // One fully instrumented fleet: timelines + exemplars (zero slow
    // threshold) + tracer. Proves the traced path under concurrency and
    // rides along as a local wall-clock reference.
    let obs = ds_obs::global();
    let was_enabled = obs.is_enabled();
    obs.enable();
    let traced_secs = run_fleet(db, store, 32, OVERHEAD_QUERIES_PER_CLIENT, true, 0);
    if !was_enabled {
        obs.disable();
    }
    let traced_rps = (CLIENTS * OVERHEAD_QUERIES_PER_CLIENT) as f64 / traced_secs;

    let instrumentation_us = time_instrumentation(db);
    let overhead_pct = instrumentation_us / request_cpu_us * 100.0;
    println!(
        "  traced coalesced {traced_rps:>7.0} req/s   instrumentation {:.0} ns/req \
         of {request_cpu_us:.0} µs/req -> overhead {overhead_pct:.2}% (budget < 2%)",
        instrumentation_us * 1e3
    );

    report.push(Metric::portable("serve/coalescing_speedup", speedup, true));
    report.push(Metric::portable(
        "serve/cache_hit_speedup",
        cache_speedup,
        true,
    ));
    report.push(Metric::local("serve/per_request_rps", per_req_rps, true));
    report.push(Metric::local("serve/warm_cache_rps", warm_rps, true));
    report.push(Metric::local("serve/coalesced_rps", coal_rps, true));
    report.push(Metric::local(
        "serve/traced_coalesced_rps",
        traced_rps,
        true,
    ));
    report.push(Metric::local("serve/request_cpu_us", request_cpu_us, false));
    report.push(Metric::portable(
        "serve/traced_overhead_pct",
        overhead_pct,
        false,
    ));
    request_cpu_us
}

/// Times one request's worth of timeline instrumentation — the exact extra
/// work `timeline: true` adds on the server: the interned template lookup,
/// the six `Instant` stamps, the five stage-histogram records, and the
/// worst-case (zero slow threshold) exemplar materialization + ring push.
/// Returns microseconds per request.
fn time_instrumentation(db: &Arc<Database>) -> f64 {
    let interner = TemplateInterner::new();
    let metrics = Metrics::new();
    let queries: Vec<_> = WORKLOAD
        .iter()
        .map(|sql| parse_query(db, sql).expect("parse workload"))
        .collect();
    let iters = 20_000usize;
    let secs = min_secs(5, || {
        for i in 0..iters {
            let q = &queries[i % queries.len()];
            let t0 = Instant::now();
            let template = interner.get(db, q);
            let (enq, deq, fwd_s, fwd_e) = (
                Instant::now(),
                Instant::now(),
                Instant::now(),
                Instant::now(),
            );
            let done = Instant::now();
            let us = |d: Duration| d.as_micros() as u64;
            metrics.record_stages(
                us(enq.duration_since(t0)),
                us(deq.duration_since(enq)),
                us(fwd_s.duration_since(deq)),
                us(fwd_e.duration_since(fwd_s)),
                us(done.duration_since(fwd_e)),
            );
            metrics.slow.push(RequestTimeline {
                sketch: "imdb".to_string(),
                template: template.as_ref().to_string(),
                total_us: us(done.duration_since(t0)),
                parse_us: 0,
                queue_us: 0,
                batch_wait_us: 0,
                forward_us: 0,
                write_us: 0,
                trace_id: 0,
                span_id: 0,
                parent_span: 0,
                batch_span: 0,
            });
        }
    });
    secs * 1e6 / iters as f64
}

/// Quick-mode fleet sizing: 4 shards, 2 copies of each sketch, a small
/// closed-loop client pool, and a short open-loop chaos run.
const FLEET_SHARDS: usize = 4;
const FLEET_REPLICATION: usize = 2;
const FLEET_CLIENTS: usize = 8;
const FLEET_QUERIES_PER_CLIENT: usize = 40;

fn fleet_config(shards: usize, replication: usize) -> FleetConfig {
    FleetConfig {
        shards,
        replication,
        server: ServeConfig::builder()
            .workers(1)
            .max_batch(32)
            .queue_capacity(1024)
            .request_timeout(Duration::from_secs(60))
            .max_connections(64)
            .timeline(false)
            .slow_threshold(Duration::ZERO)
            // Cold path: the fleet comparison measures the model, not the
            // estimate cache.
            .cache_capacity(0)
            .build()
            .expect("valid fleet config"),
        timeout: Duration::from_secs(60),
    }
}

/// Closed-loop fleet run: `FLEET_CLIENTS` threads, each with its own
/// routing [`FleetClient`], hammering the deployed sketch. Returns elapsed
/// seconds.
fn run_fleet_closed_loop(fleet: &Fleet) -> f64 {
    let topology = fleet.topology();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..FLEET_CLIENTS)
            .map(|i| {
                let topology = topology.clone();
                s.spawn(move || {
                    let mut c = FleetClient::new(topology);
                    for k in 0..FLEET_QUERIES_PER_CLIENT {
                        let sql = WORKLOAD[(i + k) % WORKLOAD.len()];
                        let (_, degraded) = c.estimate("imdb", sql).expect("fleet estimate");
                        assert!(!degraded, "healthy fleet must not degrade");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("fleet client thread");
        }
    });
    t0.elapsed().as_secs_f64()
}

/// Stage 5: the sharded fleet. Two measurements:
///
/// * **Scaling efficiency** — closed-loop throughput of the 4-shard fleet
///   vs a single shard, normalized by `min(shards, cores)`. On a machine
///   with ≥4 cores this is the issue's "≥3×" target expressed as a ratio
///   (3×/4 shards = 0.75 efficiency); on this 1-core CI host the shards
///   time-slice one core, so the honest expectation is parity (≈1.0) and
///   the gate catches the fleet layer adding real overhead. The raw rps
///   numbers ride along as local metrics.
/// * **Chaos** — an open-loop Poisson run (coordinated-omission-free
///   latencies measured from scheduled arrival) during which a
///   seeded-drawn replica is killed mid-traffic (its store wiped — a
///   machine loss), restarted, and healed from the surviving copy. Gated:
///   zero requests fail forever and zero sketch generations are lost.
///   The chaos p99 is recorded as a local metric (it includes the outage
///   window by construction).
fn stage_fleet(report: &mut BenchReport, db: &Arc<Database>, store: &Arc<SketchStore>) {
    println!(
        "\n[5/8] sharded fleet ({FLEET_SHARDS} shards, R={FLEET_REPLICATION}, \
         {FLEET_CLIENTS} clients x {FLEET_QUERIES_PER_CLIENT} queries):"
    );
    let sketch = store.get("imdb").expect("stage-2 sketch");

    // Single-shard baseline: the same serving config, the same routing
    // client, one shard — so the ratio isolates sharding itself.
    let mut single = Fleet::start(Arc::clone(db), fleet_config(1, 1)).expect("single-shard fleet");
    single.deploy("imdb", (*sketch).clone()).expect("deploy");
    let _ = run_fleet_closed_loop(&single); // warm-up
    let single_secs = min_secs(3, || run_fleet_closed_loop(&single));
    single.shutdown();

    let mut fleet = Fleet::start(
        Arc::clone(db),
        fleet_config(FLEET_SHARDS, FLEET_REPLICATION),
    )
    .expect("4-shard fleet");
    let replicas = fleet.deploy("imdb", (*sketch).clone()).expect("deploy");
    let _ = run_fleet_closed_loop(&fleet); // warm-up
    let fleet_secs = min_secs(3, || run_fleet_closed_loop(&fleet));

    let total = (FLEET_CLIENTS * FLEET_QUERIES_PER_CLIENT) as f64;
    let single_rps = total / single_secs;
    let fleet_rps = total / fleet_secs;
    let vs_single = fleet_rps / single_rps;
    let slots = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(FLEET_SHARDS);
    let efficiency = vs_single / slots as f64;
    println!(
        "  single-shard {single_rps:>7.0} req/s   {FLEET_SHARDS}-shard {fleet_rps:>7.0} req/s \
         -> {vs_single:.2}x over {slots} usable core(s) = efficiency {efficiency:.2}"
    );

    // Chaos: open-loop traffic while a replica dies and comes back.
    let faults = FaultInjector::new(BENCH_SEED ^ 31);
    faults.schedule_chaos_kill(replicas[faults.draw_shard(replicas.len())]);
    let generation_before = fleet
        .store(replicas[0])
        .generation("imdb")
        .expect("deployed generation");
    let fleet = Mutex::new(fleet);
    let clients: Vec<Mutex<FleetClient>> = {
        let topology = fleet.lock().unwrap().topology();
        (0..6)
            .map(|_| Mutex::new(FleetClient::new(topology.clone())))
            .collect()
    };
    let cfg = OpenLoopConfig {
        target_rps: 300.0,
        total: 600,
        workers: clients.len(),
        seed: BENCH_SEED ^ 32,
        deadline: Duration::from_secs(30),
    };
    let chaos = std::thread::scope(|s| {
        s.spawn(|| {
            // The chaos driver: kill the scheduled victim a fifth of the
            // way in, bring a blank replacement up shortly after, and heal
            // it from the surviving copy — all while the open loop keeps
            // offering load.
            std::thread::sleep(Duration::from_millis(400));
            let victim = faults.next_chaos_kill().expect("scheduled kill");
            fleet.lock().unwrap().kill(victim);
            std::thread::sleep(Duration::from_millis(400));
            let mut fleet = fleet.lock().unwrap();
            fleet.restart(victim).expect("restart victim");
            fleet.heal().expect("heal fleet");
        });
        run_open_loop(&cfg, |i, worker| {
            let sql = WORKLOAD[i % WORKLOAD.len()];
            let mut client = clients[worker].lock().unwrap();
            client.estimate("imdb", sql).map(|_| ())
        })
    });
    let fleet = fleet.into_inner().unwrap();

    // Zero lost generations: every live replica still serves the deployed
    // generation after the kill/restart/heal cycle.
    let lost = replicas
        .iter()
        .filter(|&&shard| {
            !fleet.is_alive(shard)
                || fleet.store(shard).generation("imdb") != Some(generation_before)
        })
        .count();
    let p99_ms = chaos.p99_us as f64 / 1e3;
    println!(
        "  chaos: {} completed / {} failed-forever at {:.0} req/s offered, \
         p99 {p99_ms:.1} ms, lost generations {lost}",
        chaos.completed, chaos.failed_forever, chaos.offered_rps
    );
    // The chaos contract is binary, so it gates harder than a ratio: any
    // permanently failed request or lost generation aborts the suite.
    assert_eq!(
        chaos.failed_forever, 0,
        "chaos run must not fail requests forever"
    );
    assert_eq!(lost, 0, "chaos run must not lose sketch generations");
    fleet.shutdown();

    report.push(Metric::portable(
        "fleet/scaling_efficiency",
        efficiency,
        true,
    ));
    report.push(Metric::portable(
        "fleet/chaos_failed_forever",
        chaos.failed_forever as f64,
        false,
    ));
    report.push(Metric::portable(
        "fleet/chaos_lost_generations",
        lost as f64,
        false,
    ));
    report.push(Metric::local("fleet/rps", fleet_rps, true));
    report.push(Metric::local("fleet/single_node_rps", single_rps, true));
    report.push(Metric::local(
        "fleet/throughput_vs_single_node",
        vs_single,
        true,
    ));
    report.push(Metric::local("fleet/chaos_p99_ms", p99_ms, false));
}

/// Stage 6: the lifecycle machinery's cost on the serving path. Two
/// measurements, both expressed against the coalesced per-request CPU
/// budget from stage 4 so the gated numbers are dimensionless:
///
/// * **Swap latency** — the generation-keyed [`SketchStore::swap`] is an
///   RCU-style pointer publish; no in-flight request ever blocks on it,
///   but it sits on the daemon's promote path and must stay trivially
///   cheap. Timed in a tight loop over a prebuilt candidate `Arc`, gated
///   as a fraction of one request's CPU budget (the absolute µs records
///   for same-machine diffs).
/// * **Shadow-mirror overhead** — the exact per-request work `ESTIMATE`
///   pays while a candidate shadows: the `shadowing` check (lock + phase
///   probe on the armed path), the query clone, and the job enqueue onto
///   the bounded channel a draining thread empties (full queue drops the
///   mirror, exactly like the server). Gated under the issue's 2%
///   serve-throughput budget — and asserted in-stage, so even a
///   baseline-free run fails loudly if mirroring gets expensive.
///
/// Both gated numbers sit at the tens-of-nanoseconds scale and jitter
/// ±2x run to run on a shared host, so (like `serve/traced_overhead_pct`)
/// the committed baselines pin the *budgets* — 2% for the mirror, 1% of a
/// request's CPU for the swap — not a measured value: CI trips only when
/// a change actually approaches the allowance, never on scheduler noise.
fn stage_lifecycle(
    report: &mut BenchReport,
    db: &Arc<Database>,
    store: &Arc<SketchStore>,
    request_cpu_us: f64,
) {
    use ds_core::lifecycle::{LifecycleConfig, LifecycleManager};
    use ds_query::query::Query;

    println!("\n[6/8] lifecycle (hot-swap latency, shadow-mirror overhead):");
    let sketch = store.get("imdb").expect("stage-2 sketch");

    // Swap latency: identical weights keep every later consumer of the
    // store unaffected; only the generation counter moves.
    let candidate = Arc::new((*sketch).clone());
    let swap_iters = 256usize;
    let swap_secs = min_secs(5, || {
        for _ in 0..swap_iters {
            store
                .swap("imdb", Arc::clone(&candidate))
                .expect("bench swap");
        }
    });
    let swap_us = swap_secs * 1e6 / swap_iters as f64;
    let swap_latency = swap_us / request_cpu_us;
    println!(
        "  hot swap {swap_us:>8.3} µs = {:.4}x of one request's {request_cpu_us:.0} µs CPU budget",
        swap_latency
    );

    // Shadow-mirror overhead: arm a real manager into the Shadow phase so
    // `shadowing` takes the expensive path, then run the mirror work the
    // server adds per ESTIMATE while a candidate scores.
    let manager = LifecycleManager::new(LifecycleConfig::default()).expect("lifecycle config");
    manager.install_candidate(store, "imdb", (*sketch).clone());
    assert!(
        manager.shadowing("imdb"),
        "candidate install must arm the shadow phase"
    );
    let queries: Vec<_> = WORKLOAD
        .iter()
        .map(|sql| parse_query(db, sql).expect("parse workload"))
        .collect();
    let (tx, rx) = std::sync::mpsc::sync_channel::<(String, Query, f64, Option<u64>)>(1024);
    let drain = std::thread::spawn(move || {
        let mut drained = 0u64;
        while rx.recv().is_ok() {
            drained += 1;
        }
        drained
    });
    let mirror_iters = 20_000usize;
    let mirror_secs = min_secs(5, || {
        for i in 0..mirror_iters {
            let q = &queries[i % queries.len()];
            if manager.shadowing("imdb") {
                let _ = tx.try_send(("imdb".to_string(), q.clone(), 1234.5, None));
            }
        }
    });
    drop(tx);
    let drained = drain.join().expect("drain thread");
    assert!(drained > 0, "the mirror queue must have seen traffic");
    let mirror_us = mirror_secs * 1e6 / mirror_iters as f64;
    let shadow_overhead_pct = mirror_us / request_cpu_us * 100.0;
    println!(
        "  shadow mirror {:>6.0} ns/req of {request_cpu_us:.0} µs/req \
         -> overhead {shadow_overhead_pct:.3}% (budget < 2%)",
        mirror_us * 1e3
    );
    assert!(
        shadow_overhead_pct < 2.0,
        "shadow mirroring must cost under 2% of serve throughput \
         (measured {shadow_overhead_pct:.3}%)"
    );

    report.push(Metric::portable(
        "lifecycle/swap_latency",
        swap_latency,
        false,
    ));
    report.push(Metric::local("lifecycle/swap_latency_us", swap_us, false));
    report.push(Metric::portable(
        "lifecycle/shadow_overhead_pct",
        shadow_overhead_pct,
        false,
    ));
    report.push(Metric::local(
        "lifecycle/mirror_ns_per_request",
        mirror_us * 1e3,
        false,
    ));
}

/// Stage 7: the fleet observability plane. Two measurements:
///
/// * **Propagation overhead** — the per-request cost of the v3 trace
///   plumbing end to end: the client minting a root context and
///   formatting its `trace=` token, the server parsing the token back,
///   minting its own span, deriving the child context the batcher
///   carries, and the exemplar's four extra hex fields on the `TRACE`
///   wire. Expressed against the stage-4 per-request CPU budget and
///   gated under the issue's 2% allowance via a budget-pinned baseline,
///   exactly like `serve/traced_overhead_pct`.
/// * **Aggregation scrape latency** — wall time of one fleetmon-style
///   sweep over a 4-shard fleet: scrape every shard's `STATS` over
///   pooled connections and merge the expositions. Merge correctness
///   (counters sum across shards) is asserted inline.
fn stage_obs(
    report: &mut BenchReport,
    db: &Arc<Database>,
    store: &Arc<SketchStore>,
    request_cpu_us: f64,
) {
    use ds_obs::{IdSource, TraceContext};

    println!("\n[7/8] observability plane (trace propagation, 4-shard STATS merge):");

    // Propagation: everything the traced path adds per request that the
    // untraced path skips, client and server side together.
    let client_ids = IdSource::from_entropy();
    let server_ids = IdSource::from_entropy();
    let prop_iters = 100_000usize;
    let prop_secs = min_secs(5, || {
        for _ in 0..prop_iters {
            let root = client_ids.mint();
            let token = root.to_token();
            let parsed = TraceContext::parse_token(&token).expect("token round-trip");
            let span = server_ids.next_span();
            let child = parsed.child(span);
            let batch_span = server_ids.next_span();
            // The exemplar's extra wire fields (only traced timelines
            // pay this formatting).
            let wire = format!(
                " trace_id={:032x} span_id={:016x} parent_span={:016x} batch_span={:016x}",
                parsed.trace_id, span, parsed.span_id, batch_span
            );
            std::hint::black_box((child, wire));
        }
    });
    let prop_us = prop_secs * 1e6 / prop_iters as f64;
    let prop_overhead_pct = prop_us / request_cpu_us * 100.0;
    println!(
        "  trace propagation {:>6.0} ns/req of {request_cpu_us:.0} µs/req \
         -> overhead {prop_overhead_pct:.3}% (budget < 2%)",
        prop_us * 1e3
    );
    assert!(
        prop_overhead_pct < 2.0,
        "trace propagation must cost under 2% of serve throughput \
         (measured {prop_overhead_pct:.3}%)"
    );

    // Aggregation: four real servers, a little estimate traffic on each,
    // then a fleetmon sweep (pooled connections, full merge) timed end
    // to end.
    let servers: Vec<Server> = (0..4)
        .map(|_| {
            Server::start(Arc::clone(db), Arc::clone(store), ServeConfig::default())
                .expect("obs-stage server")
        })
        .collect();
    for (i, server) in servers.iter().enumerate() {
        let mut c = Client::connect(server.local_addr()).expect("obs-stage client");
        for k in 0..8 {
            c.estimate_value("imdb", WORKLOAD[(i + k) % WORKLOAD.len()])
                .expect("obs-stage estimate");
        }
        c.quit().ok();
    }
    let mut conns: Vec<Connection> = servers
        .iter()
        .map(|s| {
            Connection::connect_timeout(s.local_addr(), Duration::from_secs(30))
                .expect("obs-stage scrape connection")
        })
        .collect();
    let scrape = |conns: &mut Vec<Connection>| -> String {
        let docs: Vec<String> = conns
            .iter_mut()
            .map(|conn| {
                match conn
                    .roundtrip(&Request::Stats, false)
                    .expect("scrape STATS")
                {
                    Response::Text(t) => t.replace("\\n", "\n"),
                    other => panic!("unexpected STATS response {other:?}"),
                }
            })
            .collect();
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        ds_obs::merge_expositions(&refs).expect("merge shard expositions")
    };
    let merged = scrape(&mut conns);
    // Correctness before speed: the merged counter equals the per-shard
    // sum (every shard answered the same 8 estimates).
    let ok_of = |doc: &str| {
        ds_obs::parse_families(doc)
            .expect("parse exposition")
            .iter()
            .find(|f| f.name == "ds_serve_ok")
            .and_then(|f| f.scalar())
            .expect("ds_serve_ok sample")
    };
    assert_eq!(
        ok_of(&merged),
        32.0,
        "merged ds_serve_ok must equal the per-shard sum"
    );
    let scrape_secs = min_secs(5, || {
        std::hint::black_box(scrape(&mut conns));
    });
    let scrape_us = scrape_secs * 1e6;
    println!("  4-shard STATS scrape + merge {scrape_us:>8.1} µs/sweep");
    for conn in conns {
        conn.quit().ok();
    }
    for server in servers {
        server.shutdown();
    }

    report.push(Metric::portable(
        "obs/propagation_overhead_pct",
        prop_overhead_pct,
        false,
    ));
    report.push(Metric::local(
        "obs/propagation_ns_per_request",
        prop_us * 1e3,
        false,
    ));
    report.push(Metric::local("obs/agg_scrape_latency_us", scrape_us, false));
}

/// Stage 8: the extended-operator featurization path. The schema-v2
/// featurizer adds per-predicate sampling-bitmap features: every predicate
/// — `=`,`<`,`>`,`IN`-list, `LIKE` pattern — is evaluated row by row
/// against the materialized table sample. That work rides the serving
/// path of every v2 sketch, so its *extra* cost over the v1 featurizer on
/// the identical workload is gated against the stage-4 per-request CPU
/// budget, under the same 2% allowance (and the same budget-pinned
/// baseline discipline) as the tracing and shadow-mirror gates.
fn stage_featurize(report: &mut BenchReport, db: &Arc<Database>, request_cpu_us: f64) {
    use ds_core::featurize::{Featurizer, QueryIndexFeatures};
    use ds_query::{GeneratorConfig, QueryGenerator};
    use ds_storage::sample::sample_all;

    const SAMPLE: usize = 256;
    const PRED_BITMAP_BITS: usize = 64;
    println!(
        "\n[8/8] featurization (v2 per-predicate bitmaps, {SAMPLE}-row samples, \
         {PRED_BITMAP_BITS} bits):"
    );
    let cols = imdb_predicate_columns(db);
    let samples = sample_all(db, SAMPLE, BENCH_SEED ^ 41);
    let v1 = Featurizer::build(db, &cols, SAMPLE);
    let v2 = Featurizer::build(db, &cols, SAMPLE).with_schema_v2(PRED_BITMAP_BITS);
    let mut cfg = GeneratorConfig::new(cols, BENCH_SEED ^ 42).with_extended_ops();
    cfg.max_in_list = 6;
    let queries = QueryGenerator::new(db, cfg).generate_batch(64);

    let mut feats = QueryIndexFeatures::default();
    let mut time_featurizer = |fz: &Featurizer| {
        min_secs(5, || {
            for q in &queries {
                fz.featurize_indices(q, &samples, &mut feats);
            }
        }) * 1e6
            / queries.len() as f64
    };
    let v1_us = time_featurizer(&v1);
    let v2_us = time_featurizer(&v2);
    let extra_us = (v2_us - v1_us).max(0.0);
    let bitmap_overhead_pct = extra_us / request_cpu_us * 100.0;
    println!(
        "  v1 {v1_us:>7.2} µs/query   v2 {v2_us:>7.2} µs/query   extra {:.0} ns/query \
         of {request_cpu_us:.0} µs/req -> overhead {bitmap_overhead_pct:.3}% (budget < 2%)",
        extra_us * 1e3
    );
    assert!(
        bitmap_overhead_pct < 2.0,
        "per-predicate bitmap featurization must cost under 2% of serve \
         throughput (measured {bitmap_overhead_pct:.3}%)"
    );

    report.push(Metric::portable(
        "featurize/bitmap_overhead_pct",
        bitmap_overhead_pct,
        false,
    ));
    report.push(Metric::local("featurize/v1_us_per_query", v1_us, false));
    report.push(Metric::local("featurize/v2_us_per_query", v2_us, false));
}

fn main() -> ExitCode {
    let opts = parse_args();
    banner(
        "QUICK",
        "bench_harness quick suite",
        "pinned kernel/training/serving smoke benchmarks gating CI",
    );
    if opts.trace {
        ds_obs::global().enable();
    }

    let mut current = BenchReport::new("quick");
    stage_kernels(&mut current);
    let (db, store) = stage_training(&mut current);
    stage_inference(&mut current, &db, &store);
    let request_cpu_us = stage_serving(&mut current, &db, &store);
    stage_fleet(&mut current, &db, &store);
    stage_lifecycle(&mut current, &db, &store, request_cpu_us);
    stage_obs(&mut current, &db, &store, request_cpu_us);
    stage_featurize(&mut current, &db, request_cpu_us);

    if opts.trace {
        let obs = ds_obs::global();
        obs.disable();
        let trace = TraceReport::capture(obs);
        if !trace.is_empty() {
            let mut sink = PrettySink::stderr();
            let _ = sink.emit(&trace);
        }
    }

    // Always leave the latest run where CI can pick it up as an artifact.
    let latest_path = format!("{REPO_ROOT}/target/BENCH_quick.latest.json");
    if let Some(dir) = std::path::Path::new(&latest_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&latest_path, current.to_json_string()) {
        eprintln!("error: cannot write {latest_path}: {e}");
        return ExitCode::from(2);
    }
    println!("\nwrote {latest_path}");

    // The summary is written unconditionally — before any gate can fail —
    // so a red bench-smoke run still gets its diff table on the run page.
    let baseline = std::fs::read_to_string(&opts.baseline)
        .ok()
        .and_then(|t| BenchReport::from_json_str(&t).ok());
    let regressions = baseline
        .as_ref()
        .map(|b| compare(b, &current, opts.threshold, opts.strict))
        .unwrap_or_default();
    if let Some(path) = &opts.summary {
        let md = summary_markdown(baseline.as_ref(), &current, &regressions, &opts);
        if let Err(e) = std::fs::write(path, md) {
            eprintln!("error: cannot write summary {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote summary {path}");
    }

    if opts.update {
        if let Err(e) = std::fs::write(&opts.baseline, current.to_json_string()) {
            eprintln!("error: cannot write baseline {}: {e}", opts.baseline);
            return ExitCode::from(2);
        }
        println!("updated baseline {}", opts.baseline);
        return ExitCode::SUCCESS;
    }

    if opts.check {
        if baseline.is_none() {
            eprintln!("error: cannot read baseline {}", opts.baseline);
            eprintln!("hint: create one with `bench_harness --quick --update`");
            return ExitCode::from(2);
        }
        if regressions.is_empty() {
            println!(
                "check OK: no regression beyond {:.0}% vs {}",
                opts.threshold * 100.0,
                opts.baseline
            );
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "check FAILED: {} metric(s) regressed beyond {:.0}% vs {}:",
            regressions.len(),
            opts.threshold * 100.0,
            opts.baseline
        );
        for r in &regressions {
            eprintln!("  {r}");
        }
        return ExitCode::FAILURE;
    }

    ExitCode::SUCCESS
}
