//! `bench_harness` — the pinned quick-mode benchmark suite behind the CI
//! `bench-smoke` gate.
//!
//! Runs three stages sized to finish in a couple of minutes on one core:
//!
//! 1. **kernels** — tiled/threaded matmul vs the reference kernel at the
//!    MSCN-critical shapes (same shapes as the full `nn_kernels` bench);
//! 2. **training** — a miniature fig1a build (small synthetic IMDb, 800
//!    queries, 3 epochs) whose validation q-error is fully deterministic;
//! 3. **serving** — a small coalescing-vs-per-request client fleet against
//!    the TCP server, plus the tracing-enabled overhead measurement.
//!
//! The run is written to `target/BENCH_quick.latest.json` and diffed
//! against the committed baseline `BENCH_quick.json`:
//!
//! ```text
//! bench_harness --quick --check                # gate against the baseline
//! bench_harness --quick --update               # refresh the baseline
//! bench_harness --quick --check --threshold 0.35
//! ```
//!
//! `--check` exits nonzero when any portable metric regressed past the
//! threshold (add `--strict` to gate absolute timings too — only sensible
//! when baseline and current ran on the same machine). `--trace` enables
//! the global `ds-obs` tracer and prints the span/counter report to stderr
//! after the run.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ds_bench::harness::{compare, BenchReport, Metric};
use ds_bench::{banner, BENCH_SEED};
use ds_core::builder::SketchBuilder;
use ds_core::store::SketchStore;
use ds_nn::pool::PoolConfig;
use ds_nn::tensor::{reference, Kernel, Tensor};
use ds_obs::{PrettySink, Sink, TraceReport};
use ds_query::workloads::imdb_predicate_columns;
use ds_serve::{Client, ServeConfig, Server};
use ds_storage::catalog::Database;
use ds_storage::gen::{imdb_database, ImdbConfig};

const REPO_ROOT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
const DEFAULT_THRESHOLD: f64 = 0.25;

/// Quick-mode fleet size: small enough to finish in seconds, large enough
/// for coalescing to engage.
const CLIENTS: usize = 16;
const QUERIES_PER_CLIENT: usize = 25;

/// Same join-heavy workload shapes as the full `serve_throughput` bench.
const WORKLOAD: &[&str] = &[
    "SELECT COUNT(*) FROM title t, movie_keyword mk \
     WHERE mk.movie_id = t.id AND mk.keyword_id = 11",
    "SELECT COUNT(*) FROM title t, movie_keyword mk \
     WHERE mk.movie_id = t.id AND t.production_year > 1995",
    "SELECT COUNT(*) FROM title t, movie_companies mc \
     WHERE mc.movie_id = t.id AND mc.company_type_id = 1",
    "SELECT COUNT(*) FROM title t, movie_info mi \
     WHERE mi.movie_id = t.id AND mi.info_type_id < 50 AND t.kind_id = 1",
    "SELECT COUNT(*) FROM title t, movie_keyword mk, movie_companies mc \
     WHERE mk.movie_id = t.id AND mc.movie_id = t.id \
     AND t.production_year > 1990",
    "SELECT COUNT(*) FROM title t, cast_info ci, movie_info mi \
     WHERE ci.movie_id = t.id AND mi.movie_id = t.id AND ci.role_id = 2",
];

struct Options {
    check: bool,
    update: bool,
    strict: bool,
    trace: bool,
    threshold: f64,
    baseline: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_harness [--quick] [--check] [--update] [--strict] [--trace]\n\
         \x20                    [--baseline <path>] [--threshold <frac>]\n\
         \n\
         --quick      run the pinned quick suite (default; only suite today)\n\
         --check      diff against the baseline; exit 1 on regression\n\
         --update     overwrite the baseline with this run\n\
         --strict     gate absolute timings too (same-machine diffs only)\n\
         --trace      enable the ds-obs tracer; print span report to stderr\n\
         --baseline   baseline path (default: <repo>/BENCH_quick.json)\n\
         --threshold  tolerated fractional worsening (default: {DEFAULT_THRESHOLD})"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        check: false,
        update: false,
        strict: false,
        trace: false,
        threshold: DEFAULT_THRESHOLD,
        baseline: format!("{REPO_ROOT}/BENCH_quick.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {} // the only suite; accepted for CI-visible intent
            "--check" => opts.check = true,
            "--update" => opts.update = true,
            "--strict" => opts.strict = true,
            "--trace" => opts.trace = true,
            "--baseline" => match args.next() {
                Some(p) => opts.baseline = p,
                None => usage(),
            },
            "--threshold" => match args.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => opts.threshold = t,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    opts
}

/// Median wall-clock seconds of `iters` runs of `f`.
fn median_secs<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        times.push(t.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Minimum wall-clock seconds of `iters` runs of `f`. For microsecond-scale
/// kernels the minimum is the noise-robust estimator: both variants of a
/// ratio reach their unperturbed best case, where a median still carries
/// scheduler and frequency-scaling jitter that skews speedup ratios.
fn min_secs<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn filled(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut s = seed | 1;
    let data = (0..rows * cols)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Stage 1: matmul kernels at the MSCN-critical shapes, 25 iterations each
/// (vs 30 in the full bench). The tiled-vs-reference speedup of the two
/// substantial shapes is a dimensionless ratio and gates CI; the head
/// shape's 40µs kernel is too short for a stable ratio, so it (and all
/// absolute medians) only records for same-machine diffs.
fn stage_kernels(report: &mut BenchReport) {
    let shapes = [
        ("input_384x106_x256", 384usize, 106usize, 256usize, true),
        ("hidden_384x256_x256", 384, 256, 256, true),
        ("head_384x256_x1", 384, 256, 1, false),
    ];
    println!(
        "\n[1/3] matmul kernels ({} shapes, 25 iters):",
        shapes.len()
    );
    for (name, m, k, n, gated) in shapes {
        let a = filled(m, k, 0xA0 ^ m as u64);
        let b = filled(k, n, 0xB0 ^ n as u64);
        let t_ref = min_secs(25, || reference::matmul(&a, &b));
        let t_tiled = min_secs(25, || {
            a.matmul_pool(&b, Kernel::Dense, PoolConfig::single())
        });
        assert_eq!(
            reference::matmul(&a, &b).data(),
            a.matmul_pool(&b, Kernel::Dense, PoolConfig::single())
                .data(),
            "kernel paths diverged at {name}"
        );
        let speedup = t_ref / t_tiled;
        println!("  {name:<22} tiled {t_tiled:>10.6}s  speedup {speedup:>5.2}x");
        let speedup_name = format!("kernel/{name}/tiled_speedup");
        report.push(if gated {
            Metric::portable(speedup_name, speedup, true)
        } else {
            Metric::local(speedup_name, speedup, true)
        });
        report.push(Metric::local(
            format!("kernel/{name}/tiled_secs"),
            t_tiled,
            false,
        ));
    }
}

/// Stage 2: a miniature fig1a build. Seeded end to end and bit-identical
/// at any thread count, so the validation q-error is an exact, portable
/// quality gate; wall-clock numbers ride along as local metrics.
fn stage_training(report: &mut BenchReport) -> (Arc<Database>, Arc<SketchStore>) {
    println!("\n[2/3] mini fig1a build (800 queries, 3 epochs):");
    let db = Arc::new(imdb_database(&ImdbConfig {
        movies: 2_000,
        keywords: 1_000,
        companies: 400,
        persons: 5_000,
        seed: BENCH_SEED ^ 21,
    }));
    let (sketch, build) = SketchBuilder::new(&db, imdb_predicate_columns(&db))
        .training_queries(800)
        .epochs(3)
        .sample_size(256)
        .hidden_units(256)
        .max_tables(4)
        .max_predicates(4)
        .seed(BENCH_SEED ^ 22)
        .build_with_report()
        .expect("mini build");
    let val_qerror = build.training.final_val_qerror().expect("validation split");
    let total_secs =
        (build.generation + build.execution + build.featurization + build.training.total_duration)
            .as_secs_f64();
    let rows_per_sec = build
        .training
        .epochs
        .last()
        .map(|e| e.rows_per_sec)
        .unwrap_or(0.0);
    println!(
        "  val mean q-error {val_qerror:>8.3}   total {total_secs:>7.2}s   {rows_per_sec:>8.0} rows/s"
    );
    report.push(Metric::portable(
        "train/final_val_qerror",
        val_qerror,
        false,
    ));
    report.push(Metric::local("train/total_secs", total_secs, false));
    report.push(Metric::local("train/rows_per_sec", rows_per_sec, true));

    let store = Arc::new(SketchStore::new());
    store.insert("imdb", sketch).expect("fresh store");
    (db, store)
}

/// Runs the quick client fleet; returns elapsed seconds.
fn run_fleet(db: &Arc<Database>, store: &Arc<SketchStore>, max_batch: usize) -> f64 {
    let server = Server::start(
        Arc::clone(db),
        Arc::clone(store),
        ServeConfig {
            workers: 1,
            max_batch,
            queue_capacity: 1024,
            request_timeout: Duration::from_secs(60),
            max_connections: CLIENTS + 4,
            ..ServeConfig::default()
        },
    )
    .expect("bind server");
    let addr = server.local_addr();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                s.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    for k in 0..QUERIES_PER_CLIENT {
                        let sql = WORKLOAD[(i + k) % WORKLOAD.len()];
                        c.estimate_value("imdb", sql).expect("wire estimate");
                    }
                    c.quit().expect("QUIT");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let snap = server.shutdown();
    assert_eq!(snap.ok, (CLIENTS * QUERIES_PER_CLIENT) as u64);
    assert_eq!(snap.errors + snap.shed + snap.timeouts, 0);
    elapsed
}

/// Stage 3: coalesced vs per-request serving, plus the observability
/// overhead: the same coalesced fleet with the global tracer enabled. The
/// coalescing speedup is a ratio and gates CI; the overhead percentage is
/// recorded (target <2%) but does not gate — at quick-mode run lengths it
/// sits inside scheduler noise.
fn stage_serving(report: &mut BenchReport, db: &Arc<Database>, store: &Arc<SketchStore>) {
    let total = CLIENTS * QUERIES_PER_CLIENT;
    println!("\n[3/3] serving fleet ({CLIENTS} clients x {QUERIES_PER_CLIENT} queries):");
    let _ = run_fleet(db, store, 1); // warm-up
    let per_req_secs = median_secs(3, || run_fleet(db, store, 1));
    let coal_secs = median_secs(3, || run_fleet(db, store, 32));
    let per_req_rps = total as f64 / per_req_secs;
    let coal_rps = total as f64 / coal_secs;
    let speedup = coal_rps / per_req_rps;
    println!("  per-request {per_req_rps:>7.0} req/s   coalesced {coal_rps:>7.0} req/s   speedup {speedup:.2}x");

    // Tracing overhead: identical coalesced fleet, global tracer on.
    let obs = ds_obs::global();
    let was_enabled = obs.is_enabled();
    obs.enable();
    let traced_secs = median_secs(3, || run_fleet(db, store, 32));
    if !was_enabled {
        obs.disable();
    }
    let overhead_pct = (traced_secs - coal_secs) / coal_secs * 100.0;
    println!(
        "  traced coalesced {:.0} req/s   overhead {overhead_pct:+.2}% (target < 2%)",
        total as f64 / traced_secs
    );

    report.push(Metric::portable("serve/coalescing_speedup", speedup, true));
    report.push(Metric::local("serve/per_request_rps", per_req_rps, true));
    report.push(Metric::local("serve/coalesced_rps", coal_rps, true));
    report.push(Metric::local("serve/obs_overhead_pct", overhead_pct, false));
}

fn main() -> ExitCode {
    let opts = parse_args();
    banner(
        "QUICK",
        "bench_harness quick suite",
        "pinned kernel/training/serving smoke benchmarks gating CI",
    );
    if opts.trace {
        ds_obs::global().enable();
    }

    let mut current = BenchReport::new("quick");
    stage_kernels(&mut current);
    let (db, store) = stage_training(&mut current);
    stage_serving(&mut current, &db, &store);

    if opts.trace {
        let obs = ds_obs::global();
        obs.disable();
        let trace = TraceReport::capture(obs);
        if !trace.is_empty() {
            let mut sink = PrettySink::stderr();
            let _ = sink.emit(&trace);
        }
    }

    // Always leave the latest run where CI can pick it up as an artifact.
    let latest_path = format!("{REPO_ROOT}/target/BENCH_quick.latest.json");
    if let Some(dir) = std::path::Path::new(&latest_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&latest_path, current.to_json_string()) {
        eprintln!("error: cannot write {latest_path}: {e}");
        return ExitCode::from(2);
    }
    println!("\nwrote {latest_path}");

    if opts.update {
        if let Err(e) = std::fs::write(&opts.baseline, current.to_json_string()) {
            eprintln!("error: cannot write baseline {}: {e}", opts.baseline);
            return ExitCode::from(2);
        }
        println!("updated baseline {}", opts.baseline);
        return ExitCode::SUCCESS;
    }

    if opts.check {
        let text = match std::fs::read_to_string(&opts.baseline) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read baseline {}: {e}", opts.baseline);
                eprintln!("hint: create one with `bench_harness --quick --update`");
                return ExitCode::from(2);
            }
        };
        let baseline = match BenchReport::from_json_str(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: malformed baseline {}: {e:?}", opts.baseline);
                return ExitCode::from(2);
            }
        };
        let regressions = compare(&baseline, &current, opts.threshold, opts.strict);
        if regressions.is_empty() {
            println!(
                "check OK: no regression beyond {:.0}% vs {}",
                opts.threshold * 100.0,
                opts.baseline
            );
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "check FAILED: {} metric(s) regressed beyond {:.0}% vs {}:",
            regressions.len(),
            opts.threshold * 100.0,
            opts.baseline
        );
        for r in &regressions {
            eprintln!("  {r}");
        }
        return ExitCode::FAILURE;
    }

    ExitCode::SUCCESS
}
