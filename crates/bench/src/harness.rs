//! The CI-gated benchmark harness: typed metrics, JSON baselines, and
//! threshold-based regression comparison.
//!
//! A harness run produces a [`BenchReport`] — a flat list of named
//! [`Metric`]s — serialized as `BENCH_*.json` via the workspace JSON
//! module (`ds_obs::json`). [`compare`] diffs a current report against a
//! committed baseline and returns every metric that got worse by more
//! than the threshold, which the `bench_harness` binary turns into a
//! nonzero exit for CI.
//!
//! Metrics are split into two classes:
//!
//! * **portable** — dimensionless ratios (tiled speedup, coalescing
//!   speedup) and deterministic quality numbers (seeded validation
//!   q-error). These are comparable across machines and gate CI by
//!   default.
//! * **non-portable** — absolute wall-clock timings. They are recorded
//!   for humans and for same-machine comparisons but only gate under
//!   `strict` (local perf work on one box), because CI hardware differs
//!   from the baseline's.

use ds_obs::json::{JsonError, JsonValue};

/// One named benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Stable, `/`-separated name, e.g. `kernel/hidden_384x256_x256/tiled_speedup`.
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Direction of goodness: `true` if larger is better (speedups,
    /// throughput), `false` if smaller is better (latency, q-error).
    pub higher_is_better: bool,
    /// Whether the value is comparable across machines (see module docs).
    pub portable: bool,
}

impl Metric {
    /// A machine-portable metric (gates CI).
    pub fn portable(name: impl Into<String>, value: f64, higher_is_better: bool) -> Self {
        Self {
            name: name.into(),
            value,
            higher_is_better,
            portable: true,
        }
    }

    /// A machine-local metric (absolute timing; gates only under strict).
    pub fn local(name: impl Into<String>, value: f64, higher_is_better: bool) -> Self {
        Self {
            name: name.into(),
            value,
            higher_is_better,
            portable: false,
        }
    }
}

/// A full harness run: suite name plus its metrics, JSON-serializable.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Suite identifier (e.g. `quick`).
    pub suite: String,
    /// All measurements of the run.
    pub metrics: Vec<Metric>,
}

impl BenchReport {
    /// An empty report for `suite`.
    pub fn new(suite: impl Into<String>) -> Self {
        Self {
            suite: suite.into(),
            metrics: Vec::new(),
        }
    }

    /// Appends a metric.
    pub fn push(&mut self, m: Metric) {
        self.metrics.push(m);
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Serializes to the `BENCH_*.json` document shape.
    pub fn to_json(&self) -> JsonValue {
        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                JsonValue::Obj(vec![
                    ("name".into(), JsonValue::Str(m.name.clone())),
                    ("value".into(), JsonValue::Num(m.value)),
                    (
                        "higher_is_better".into(),
                        JsonValue::Bool(m.higher_is_better),
                    ),
                    ("portable".into(), JsonValue::Bool(m.portable)),
                ])
            })
            .collect();
        JsonValue::Obj(vec![
            ("suite".into(), JsonValue::Str(self.suite.clone())),
            ("metrics".into(), JsonValue::Arr(metrics)),
        ])
    }

    /// Pretty JSON text, ready to write to disk.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Parses a report written by [`BenchReport::to_json_string`].
    pub fn from_json_str(text: &str) -> Result<Self, JsonError> {
        let doc = JsonValue::parse(text)?;
        let bad = |msg: &str| JsonError {
            offset: 0,
            message: msg.to_string(),
        };
        let suite = doc
            .get("suite")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad("missing 'suite'"))?
            .to_string();
        let mut metrics = Vec::new();
        for m in doc
            .get("metrics")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| bad("missing 'metrics'"))?
        {
            metrics.push(Metric {
                name: m
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| bad("metric missing 'name'"))?
                    .to_string(),
                value: m
                    .get("value")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| bad("metric missing 'value'"))?,
                higher_is_better: m
                    .get("higher_is_better")
                    .and_then(JsonValue::as_bool)
                    .ok_or_else(|| bad("metric missing 'higher_is_better'"))?,
                portable: m
                    .get("portable")
                    .and_then(JsonValue::as_bool)
                    .ok_or_else(|| bad("metric missing 'portable'"))?,
            });
        }
        Ok(Self { suite, metrics })
    }
}

/// Why a metric failed the gate.
#[derive(Debug, Clone, PartialEq)]
pub enum RegressionKind {
    /// Present in the baseline but absent from the current run.
    Missing,
    /// Worse than the baseline by more than the threshold.
    Worse {
        /// Baseline value.
        baseline: f64,
        /// Current value.
        current: f64,
        /// Fractional worsening in the metric's bad direction (0.30 = 30%).
        worse_frac: f64,
    },
}

/// One gate failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The affected metric's name.
    pub name: String,
    /// What went wrong.
    pub kind: RegressionKind,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            RegressionKind::Missing => write!(f, "{}: missing from current run", self.name),
            RegressionKind::Worse {
                baseline,
                current,
                worse_frac,
            } => write!(
                f,
                "{}: {baseline:.4} -> {current:.4} ({:+.1}% worse)",
                self.name,
                worse_frac * 100.0
            ),
        }
    }
}

/// Diffs `current` against `baseline`. A baseline metric regresses when it
/// is missing from the current run or worse (in its bad direction) by more
/// than `threshold` (0.25 = tolerate up to 25% worse). Only portable
/// metrics gate unless `strict` also gates absolute timings. Metrics new
/// in `current` never fail the gate — they start gating once the baseline
/// is refreshed.
pub fn compare(
    baseline: &BenchReport,
    current: &BenchReport,
    threshold: f64,
    strict: bool,
) -> Vec<Regression> {
    assert!(threshold >= 0.0, "threshold must be non-negative");
    let mut out = Vec::new();
    for base in &baseline.metrics {
        if !base.portable && !strict {
            continue;
        }
        let Some(cur) = current.get(&base.name) else {
            out.push(Regression {
                name: base.name.clone(),
                kind: RegressionKind::Missing,
            });
            continue;
        };
        if !base.value.is_finite() || !cur.value.is_finite() || base.value == 0.0 {
            // Nothing sane to ratio against; presence is the only gate.
            continue;
        }
        let worse_frac = if base.higher_is_better {
            (base.value - cur.value) / base.value.abs()
        } else {
            (cur.value - base.value) / base.value.abs()
        };
        if worse_frac > threshold {
            out.push(Regression {
                name: base.name.clone(),
                kind: RegressionKind::Worse {
                    baseline: base.value,
                    current: cur.value,
                    worse_frac,
                },
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(pairs: &[(&str, f64, bool, bool)]) -> BenchReport {
        let mut r = BenchReport::new("quick");
        for &(name, value, higher, portable) in pairs {
            r.push(Metric {
                name: name.to_string(),
                value,
                higher_is_better: higher,
                portable,
            });
        }
        r
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let r = report(&[
            ("kernel/speedup", 2.75, true, true),
            ("train/total_secs", 9.28, false, false),
        ]);
        let text = r.to_json_string();
        let back = BenchReport::from_json_str(&text).unwrap();
        assert_eq!(r, back);
        assert!(BenchReport::from_json_str("{\"nope\": 1}").is_err());
    }

    #[test]
    fn synthetic_30_percent_regression_trips_the_gate() {
        // The CI contract: a 30% drop in a portable higher-is-better
        // metric must fail a 20% threshold (and the binary exits nonzero).
        let baseline = report(&[("serve/coalescing_speedup", 7.0, true, true)]);
        let current = report(&[("serve/coalescing_speedup", 4.9, true, true)]);
        let regs = compare(&baseline, &current, 0.20, false);
        assert_eq!(regs.len(), 1);
        let RegressionKind::Worse { worse_frac, .. } = regs[0].kind else {
            panic!("expected Worse, got {:?}", regs[0].kind);
        };
        assert!((worse_frac - 0.30).abs() < 1e-9, "worse_frac={worse_frac}");
        // The same 30% drop passes a generous 35% threshold.
        assert!(compare(&baseline, &current, 0.35, false).is_empty());
    }

    #[test]
    fn direction_and_portability_are_respected() {
        let baseline = report(&[
            ("train/val_qerror", 4.0, false, true),   // lower is better
            ("train/total_secs", 10.0, false, false), // non-portable
        ]);
        // q-error improved (3.0 < 4.0): no regression even at threshold 0.
        let better = report(&[
            ("train/val_qerror", 3.0, false, true),
            ("train/total_secs", 100.0, false, false),
        ]);
        assert!(compare(&baseline, &better, 0.0, false).is_empty());
        // Under strict, the 10x timing blow-up gates too.
        let regs = compare(&baseline, &better, 0.5, true);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "train/total_secs");
        // q-error worsening gates in the correct direction.
        let worse = report(&[
            ("train/val_qerror", 6.0, false, true),
            ("train/total_secs", 10.0, false, false),
        ]);
        assert_eq!(compare(&baseline, &worse, 0.25, false).len(), 1);
    }

    #[test]
    fn missing_metric_is_a_regression_and_new_metric_is_not() {
        let baseline = report(&[("a", 1.0, true, true)]);
        let current = report(&[("b", 1.0, true, true)]);
        let regs = compare(&baseline, &current, 0.5, false);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].kind, RegressionKind::Missing);
        // Display is human-readable for CI logs.
        assert!(regs[0].to_string().contains("missing"));
    }
}
