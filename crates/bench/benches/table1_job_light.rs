//! **E1 — Table 1**: estimation errors (q-errors) on the JOB-light workload
//! for the Deep Sketch vs the HyPer-style sampling estimator vs the
//! PostgreSQL-style estimator.
//!
//! Expected shape (the paper's numbers are on the real IMDb and real
//! systems; ours are on the synthetic IMDb): the Deep Sketch's percentiles
//! beat both baselines, with the gap widening toward the tail, because only
//! the learned model captures the injected cross-join correlations.
//!
//! Run: `cargo bench -p ds-bench --bench table1_job_light`

use ds_bench::{
    banner, bench_imdb, print_table1_style, qerrors_against_truth, standard_sketch_builder,
    BENCH_SEED, PAPER_TABLE1,
};
use ds_core::metrics::QErrorSummary;
use ds_est::oracle::TrueCardinalityOracle;
use ds_est::postgres::PostgresEstimator;
use ds_est::sampling::SamplingEstimator;
use ds_est::CardinalityEstimator;
use ds_query::workloads::imdb_predicate_columns;
use ds_query::workloads::job_light::job_light_workload;

fn main() {
    banner(
        "E1",
        "Table 1 (q-errors on JOB-light)",
        "Deep Sketch vs HyPer-style sampling vs PostgreSQL-style statistics",
    );

    println!("\ngenerating benchmark IMDb …");
    let db = bench_imdb();
    for t in db.tables() {
        println!("  {:<16} {:>8} rows", t.name(), t.num_rows());
    }

    println!("\nbuilding Deep Sketch (10000 training queries, 30 epochs) …");
    let t0 = std::time::Instant::now();
    let (sketch, report) = standard_sketch_builder(&db, imdb_predicate_columns(&db))
        .build_with_report()
        .expect("sketch construction");
    // Cache for the other experiments (E3, E5, E6 reuse this sketch).
    ds_bench::cache_sketch(&ds_bench::standard_sketch_cache_path(&db), &sketch);
    println!(
        "  done in {:.1?} (labels {:.1?}, training {:.1?}); footprint {:.2} MiB; val mean q-error {:.2}",
        t0.elapsed(),
        report.execution,
        report.training.total_duration,
        report.footprint_bytes as f64 / (1024.0 * 1024.0),
        report.training.final_val_qerror().unwrap_or(f64::NAN),
    );

    // Baselines. The sampling estimator gets 100-tuple samples — the same
    // relative coverage class as the paper's 1000 tuples on the 100×-larger
    // real IMDb (and the same budget the sketch's bitmaps use); PostgreSQL
    // gets its default statistics target.
    let hyper = SamplingEstimator::build(&db, 100, BENCH_SEED ^ 3);
    let postgres = PostgresEstimator::build(&db);
    let oracle = TrueCardinalityOracle::new(&db);

    println!("\nevaluating the 70 JOB-light queries …");
    let workload = job_light_workload(&db, BENCH_SEED ^ 4);
    let truths: Vec<f64> = workload.iter().map(|q| oracle.estimate(q)).collect();

    let rows = vec![
        (
            "Deep Sketch",
            QErrorSummary::from_qerrors(&qerrors_against_truth(&sketch, &truths, &workload)),
        ),
        (
            "HyPer",
            QErrorSummary::from_qerrors(&qerrors_against_truth(&hyper, &truths, &workload)),
        ),
        (
            "PostgreSQL",
            QErrorSummary::from_qerrors(&qerrors_against_truth(&postgres, &truths, &workload)),
        ),
    ];

    println!("\nestimation errors on the JOB-light workload (70 queries):\n");
    print_table1_style(&rows, Some(PAPER_TABLE1));

    // Extension beyond the paper: CS2-style correlated join sampling —
    // fixes the cross-join fanout correlation but keeps the 0-tuple
    // weakness, isolating what the learned model adds.
    let cs2 = ds_est::joinsample::JoinSamplingEstimator::build(&db, 0.05);
    let cs2_summary = QErrorSummary::from_qerrors(&qerrors_against_truth(&cs2, &truths, &workload));
    let independence = ds_est::independence::IndependenceOracleEstimator::new(&db);
    let ind_summary =
        QErrorSummary::from_qerrors(&qerrors_against_truth(&independence, &truths, &workload));
    println!("\nextensions (not in the paper):");
    println!("  JoinSample  = CS2-style correlated join sampling (5% of hub keys)");
    println!("  Independence = EXACT per-table selectivities + the independence join");
    println!("                 formula — the residual is pure cross-join correlation error");
    println!("{}", cs2_summary.table_row("JoinSample"));
    println!("{}", ind_summary.table_row("Independence"));

    // Shape check: the learned sketch should lead at the median and at the
    // tail, as in the paper.
    let (sk, hy, pg) = (&rows[0].1, &rows[1].1, &rows[2].1);
    println!("\nshape check:");
    println!(
        "  sketch median {:.2} vs best baseline {:.2} → {}",
        sk.median,
        hy.median.min(pg.median),
        verdict(sk.median <= hy.median.min(pg.median))
    );
    println!(
        "  sketch p95 {:.1} vs best baseline {:.1} → {}",
        sk.p95,
        hy.p95.min(pg.p95),
        verdict(sk.p95 <= hy.p95.min(pg.p95))
    );
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "matches the paper"
    } else {
        "DOES NOT match the paper"
    }
}
