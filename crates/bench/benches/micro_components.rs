//! Criterion micro-benchmarks of the engineering-critical paths:
//! COUNT execution (label generation throughput), featurization, MSCN
//! forward pass, sketch estimation, and the traditional estimators.
//!
//! Run: `cargo bench -p ds-bench --bench micro_components`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use ds_core::featurize::Featurizer;
use ds_core::mscn::{MscnConfig, MscnModel};
use ds_est::postgres::PostgresEstimator;
use ds_est::sampling::SamplingEstimator;
use ds_est::CardinalityEstimator;
use ds_query::workloads::imdb_predicate_columns;
use ds_query::workloads::job_light::job_light_workload;
use ds_query::{GeneratorConfig, QueryGenerator};
use ds_storage::exec::CountExecutor;
use ds_storage::gen::{imdb_database, ImdbConfig};
use ds_storage::sample::sample_all;

fn small_imdb() -> ds_storage::catalog::Database {
    imdb_database(&ImdbConfig {
        movies: 2_000,
        keywords: 500,
        companies: 200,
        persons: 2_000,
        seed: 0xBE7C,
    })
}

fn bench_executor(c: &mut Criterion) {
    let db = small_imdb();
    let workload = job_light_workload(&db, 1);
    let exec = CountExecutor::new();
    // Warm the leaf cache as a real labeling run would.
    for q in &workload {
        exec.count(&db, &q.to_exec()).unwrap();
    }
    c.bench_function("executor/job_light_70_queries", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for q in &workload {
                total += exec.count(&db, black_box(&q.to_exec())).unwrap();
            }
            black_box(total)
        })
    });
}

fn bench_featurizer(c: &mut Criterion) {
    let db = small_imdb();
    let cols = imdb_predicate_columns(&db);
    let samples = sample_all(&db, 100, 2);
    let featurizer = Featurizer::build(&db, &cols, 100);
    let workload = job_light_workload(&db, 2);
    c.bench_function("featurize/job_light_70_queries", |b| {
        b.iter(|| black_box(featurizer.batch_queries(black_box(&workload), &samples)))
    });
}

fn bench_forward(c: &mut Criterion) {
    let db = small_imdb();
    let cols = imdb_predicate_columns(&db);
    let samples = sample_all(&db, 100, 2);
    let featurizer = Featurizer::build(&db, &cols, 100);
    let model = MscnModel::new(
        featurizer.table_dim(),
        featurizer.join_dim(),
        featurizer.pred_dim(),
        MscnConfig {
            hidden: 96,
            seed: 1,
        },
    );
    let workload = job_light_workload(&db, 3);
    let batch = featurizer.batch_queries(&workload, &samples);
    c.bench_function("mscn/forward_batch_70", |b| {
        b.iter(|| black_box(model.predict(black_box(&batch))))
    });
}

fn bench_training_step(c: &mut Criterion) {
    let db = small_imdb();
    let cols = imdb_predicate_columns(&db);
    let samples = sample_all(&db, 100, 2);
    let featurizer = Featurizer::build(&db, &cols, 100);
    let mut generator = QueryGenerator::new(&db, GeneratorConfig::new(cols.clone(), 5));
    let queries = generator.generate_batch(128);
    let batch = featurizer.batch_queries(&queries, &samples);
    let labels: Vec<u64> = (0..128).map(|i| (i as u64 + 1) * 10).collect();
    let normalizer = ds_nn::loss::LabelNormalizer::fit(&labels);
    let loss = ds_nn::loss::QErrorLoss::new(normalizer);
    let model = MscnModel::new(
        featurizer.table_dim(),
        featurizer.join_dim(),
        featurizer.pred_dim(),
        MscnConfig {
            hidden: 96,
            seed: 2,
        },
    );
    c.bench_function("mscn/train_step_batch_128", |b| {
        b.iter_batched(
            || (model.clone(), ds_nn::optim::Adam::new(1e-3)),
            |(mut m, mut adam)| {
                let (y, cache) = m.forward(&batch);
                let (_, grad) = loss.forward_backward(&y, &labels);
                m.backward(&batch, &cache, &grad);
                m.adam_step(&mut adam);
                black_box(m.num_params())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_matmul_shapes(c: &mut Criterion) {
    use ds_nn::pool::PoolConfig;
    use ds_nn::tensor::{Kernel, Tensor};
    let filled = |rows: usize, cols: usize, seed: u64| {
        let mut s = seed | 1;
        let data = (0..rows * cols)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    };
    // The three MSCN-critical shapes: input layer (batch×feature_dim into
    // 256 hidden units), hidden 256×256, and the 256→1 output head.
    for (name, m, k, n) in [
        ("input_384x106x256", 384, 106, 256),
        ("hidden_384x256x256", 384, 256, 256),
        ("head_384x256x1", 384, 256, 1),
    ] {
        let a = filled(m, k, 0xA0 ^ m as u64);
        let b = filled(k, n, 0xB0 ^ n as u64);
        c.bench_function(&format!("matmul/{name}"), |bch| {
            bch.iter(|| {
                black_box(a.matmul_pool(black_box(&b), Kernel::Dense, PoolConfig::single()))
            })
        });
    }
}

fn bench_estimators(c: &mut Criterion) {
    let db = small_imdb();
    let postgres = PostgresEstimator::build(&db);
    let hyper = SamplingEstimator::build(&db, 100, 3);
    let workload = job_light_workload(&db, 4);
    let q4 = workload
        .iter()
        .find(|q| q.num_joins() == 4)
        .expect("4-join query")
        .clone();
    c.bench_function("estimate/postgres_4join", |b| {
        b.iter(|| black_box(postgres.estimate(black_box(&q4))))
    });
    c.bench_function("estimate/sampling_4join", |b| {
        b.iter(|| black_box(hyper.estimate(black_box(&q4))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_executor, bench_featurizer, bench_forward, bench_training_step, bench_matmul_shapes, bench_estimators
}
criterion_main!(benches);
