//! **E3 — Figure 1b / Figure 2**: the demo's template-query result pane.
//!
//! The paper's running example — "the popularity of a certain keyword over
//! time" — as a query template with a `?` placeholder on
//! `title.production_year`, instantiated from the sketch's column sample,
//! grouped by decade, and overlaid with the true cardinality and both
//! traditional estimators (the demo's bar/line chart, printed as a table
//! plus an ASCII chart).
//!
//! Run: `cargo bench -p ds-bench --bench fig2_template_query`

use ds_bench::{banner, bench_imdb, standard_imdb_sketch, BENCH_SEED};
use ds_core::metrics::QErrorSummary;
use ds_core::template::{QueryTemplate, ValueFn};
use ds_est::oracle::TrueCardinalityOracle;
use ds_est::postgres::PostgresEstimator;
use ds_est::sampling::SamplingEstimator;

fn main() {
    banner(
        "E3",
        "Figure 1b / Figure 2 (template queries in the demo UI)",
        "keyword-popularity-over-time template: sketch vs estimators vs truth",
    );
    let db = bench_imdb();
    let sketch = standard_imdb_sketch(&db);
    let oracle = TrueCardinalityOracle::new(&db);
    let postgres = PostgresEstimator::build(&db);
    let hyper = SamplingEstimator::build(&db, 100, BENCH_SEED ^ 3);

    // Choose a frequent keyword from the sketch's own sample (a user would
    // type 'artificial-intelligence'; ids play that role here).
    let mk = db.table_id("movie_keyword").expect("imdb schema");
    let kw_col = db.resolve("movie_keyword.keyword_id").expect("schema").col;
    let keyword = sketch.samples()[mk.0]
        .distinct_values(kw_col)
        .first()
        .copied()
        .expect("non-empty sample");

    let sql = format!(
        "SELECT COUNT(*) FROM title t, movie_keyword mk \
         WHERE mk.movie_id = t.id AND mk.keyword_id = {keyword} \
         AND t.production_year = ?"
    );
    println!("\ntemplate: {sql}");
    let template = QueryTemplate::parse_sql(&db, &sql).expect("template SQL");

    let value_fn = ValueFn::GroupBy(10); // group by decade
    let truth = template.evaluate(sketch.samples(), value_fn, &oracle);
    let ours = template.evaluate(sketch.samples(), value_fn, &sketch);
    let pg = template.evaluate(sketch.samples(), value_fn, &postgres);
    let hy = template.evaluate(sketch.samples(), value_fn, &hyper);

    let max = truth.iter().map(|&(_, v)| v).fold(1.0f64, f64::max);
    println!(
        "\n{:<8} {:>8} {:>8} {:>8} {:>8}   true cardinality",
        "decade", "true", "sketch", "pg", "hyper"
    );
    for i in 0..truth.len() {
        let bar = "█".repeat((truth[i].1 / max * 36.0).round() as usize);
        println!(
            "{:<8} {:>8.0} {:>8.0} {:>8.0} {:>8.0}   {bar}",
            truth[i].0 * 10,
            truth[i].1,
            ours[i].1,
            pg[i].1,
            hy[i].1,
        );
    }

    let qsummary = |series: &[(i64, f64)]| {
        let qs: Vec<f64> = series
            .iter()
            .zip(&truth)
            .map(|(&(_, e), &(_, t))| ds_core::metrics::qerror(e, t))
            .collect();
        QErrorSummary::from_qerrors(&qs)
    };
    println!("\nq-errors over the template series:");
    println!("{}", QErrorSummary::table_header());
    println!("{}", qsummary(&ours).table_row("Deep Sketch"));
    println!("{}", qsummary(&hy).table_row("HyPer"));
    println!("{}", qsummary(&pg).table_row("PostgreSQL"));

    // A second template with an equality placeholder on a low-cardinality
    // column, evaluated point-per-value (ValueFn::Identity), plus a
    // bucketed variant — covering all three demo value functions.
    println!("\nsecond template: company-type mix for recent movies (Identity + Buckets):");
    let sql2 = "SELECT COUNT(*) FROM title t, movie_companies mc \
                WHERE mc.movie_id = t.id AND t.production_year > 2000 \
                AND mc.company_type_id = ?";
    let template2 = QueryTemplate::parse_sql(&db, sql2).expect("template SQL");
    for (label, series) in [
        (
            "true",
            template2.evaluate(sketch.samples(), ValueFn::Identity, &oracle),
        ),
        (
            "sketch",
            template2.evaluate(sketch.samples(), ValueFn::Identity, &sketch),
        ),
    ] {
        print!("  {label:<7}");
        for (v, c) in &series {
            print!("  type{v}={c:.0}");
        }
        println!();
    }
    let sql3 = "SELECT COUNT(*) FROM title t, cast_info ci \
                WHERE ci.movie_id = t.id AND ci.person_id = ?";
    let template3 = QueryTemplate::parse_sql(&db, sql3).expect("template SQL");
    let buckets_true = template3.evaluate(sketch.samples(), ValueFn::Buckets(8), &oracle);
    let buckets_ours = template3.evaluate(sketch.samples(), ValueFn::Buckets(8), &sketch);
    println!("\n  person-id buckets (8 equal-width buckets over the sample range):");
    println!("  {:>12} {:>10} {:>10}", "bucket-lo", "true", "sketch");
    for (t, o) in buckets_true.iter().zip(&buckets_ours) {
        println!("  {:>12} {:>10.0} {:>10.0}", t.0, t.1, o.1);
    }

    let n_instances = truth.len() + 2 + buckets_true.len();
    println!("\n{n_instances} template instances executed against sketch + 2 estimators + truth");
}
