//! **E6 — §1/§4 deployment claims**: "Deep Sketches feature a small
//! footprint size (a few MiBs) and are fast to query (within
//! milliseconds)", enabling client-side result-size previews.
//!
//! Measures the serialized size of sketches across sample sizes and the
//! end-to-end estimation latency (featurize → forward → denormalize) for
//! single queries and batches.
//!
//! Run: `cargo bench -p ds-bench --bench e6_footprint_latency`

use std::time::Instant;

use ds_bench::{banner, bench_imdb, standard_imdb_sketch, BENCH_SEED};
use ds_core::builder::SketchBuilder;
use ds_query::workloads::imdb_predicate_columns;
use ds_query::workloads::job_light::job_light_workload;

fn main() {
    banner(
        "E6",
        "§1/§4 (footprint and latency)",
        "sketches are MiB-scale artifacts answering within milliseconds",
    );
    let db = bench_imdb();

    // --- footprint across sample sizes -----------------------------------
    println!("\n[1] serialized footprint vs sample size (hidden 96):");
    println!(
        "  {:>12} {:>14} {:>14} {:>12}",
        "sample size", "total bytes", "model params", "MiB"
    );
    for &n in &[50usize, 100, 500, 1000] {
        let sketch = SketchBuilder::new(&db, imdb_predicate_columns(&db))
            .training_queries(500) // footprint is training-independent
            .epochs(1)
            .sample_size(n)
            .hidden_units(96)
            .seed(BENCH_SEED ^ n as u64)
            .build()
            .expect("pipeline");
        let bytes = sketch.footprint_bytes();
        println!(
            "  {:>12} {:>14} {:>14} {:>12.3}",
            n,
            bytes,
            sketch.model().num_params(),
            bytes as f64 / (1024.0 * 1024.0)
        );
    }
    println!("  (the paper's full-size sketches on the real IMDb are 'a few MiBs')");

    // --- estimation latency ----------------------------------------------
    println!("\n[2] estimation latency of the standard sketch:");
    let sketch = standard_imdb_sketch(&db);
    let workload = job_light_workload(&db, BENCH_SEED ^ 4);

    // Warm up, then measure single-query latency over many repetitions.
    for q in workload.iter().take(5) {
        let _ = sketch.estimate_one(q);
    }
    let reps = 20;
    let t0 = Instant::now();
    let mut sink = 0.0;
    for _ in 0..reps {
        for q in &workload {
            sink += sketch.estimate_one(q);
        }
    }
    let single = t0.elapsed().as_secs_f64() / (reps * workload.len()) as f64;

    let t1 = Instant::now();
    for _ in 0..reps {
        sink += sketch.estimate_batch(&workload).iter().sum::<f64>();
    }
    let batched = t1.elapsed().as_secs_f64() / (reps * workload.len()) as f64;

    println!("  single-query : {:>9.3} ms/query", single * 1e3);
    println!("  batched (70) : {:>9.3} ms/query", batched * 1e3);
    let ms = single * 1e3;
    println!(
        "  → {} (paper claim: within milliseconds)",
        if ms < 1.0 {
            "sub-millisecond"
        } else if ms < 10.0 {
            "within milliseconds"
        } else {
            "SLOWER than the paper's claim"
        }
    );
    std::hint::black_box(sink);
}
