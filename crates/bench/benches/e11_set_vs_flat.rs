//! **E11 — §2 design-claim ablation**: set semantics vs a flat query
//! vector.
//!
//! §2: "another differentiating factor from other learning-based
//! approaches to cardinality estimation is the use of a model that employs
//! set semantics, inspired by recent work on Deep Sets". This experiment
//! trains the MSCN and a flat-vector MLP (same vocabulary, same bitmaps,
//! same q-error objective, same data, comparable parameter budget) and
//! evaluates both on JOB-light.
//!
//! Run: `cargo bench -p ds-bench --bench e11_set_vs_flat`

use ds_bench::{banner, bench_imdb, BENCH_SEED};
use ds_core::builder::SketchBuilder;
use ds_core::featurize::Featurizer;
use ds_core::flat::{FlatFeaturizer, FlatModel};
use ds_core::metrics::{qerror, QErrorSummary};
use ds_est::oracle::TrueCardinalityOracle;
use ds_est::CardinalityEstimator;
use ds_nn::loss::LabelNormalizer;
use ds_query::workloads::imdb_predicate_columns;
use ds_query::workloads::job_light::job_light_workload;
use ds_query::{GeneratorConfig, QueryGenerator};
use ds_storage::sample::sample_all;

fn main() {
    banner(
        "E11",
        "§2 design claim (set semantics via Deep Sets)",
        "MSCN vs a flat-vector MLP on identical data, features, and objective",
    );
    let db = bench_imdb();
    let cols = imdb_predicate_columns(&db);
    let sample_size = 100;
    let train_queries = 8_000;
    let epochs = 24;

    // Shared training data.
    let samples = sample_all(&db, sample_size, (BENCH_SEED ^ 2) ^ 0x5A);
    let mut gen_cfg = GeneratorConfig::new(cols.clone(), BENCH_SEED ^ 0xE11);
    gen_cfg.max_tables = 5;
    gen_cfg.max_predicates = 4;
    let mut generator = QueryGenerator::new(&db, gen_cfg);
    let queries = generator.generate_batch(train_queries);
    let oracle = TrueCardinalityOracle::new(&db);
    let labels = oracle.label_batch(&queries, 1).expect("labels");
    let normalizer = LabelNormalizer::fit(&labels);

    // --- MSCN (set semantics) -------------------------------------------
    println!("\ntraining MSCN (set model) …");
    let mscn_sketch = SketchBuilder::new(&db, cols.clone())
        .training_queries(train_queries)
        .epochs(epochs)
        .sample_size(sample_size)
        .hidden_units(96)
        .max_tables(5)
        .max_predicates(4)
        .seed(BENCH_SEED ^ 0xE11)
        .build()
        .expect("mscn");
    println!("  {} parameters", mscn_sketch.model().num_params());

    // --- Flat MLP ----------------------------------------------------------
    // The flat input is much wider (bitmaps are not shared across tables),
    // so an equal-parameter budget gives it a comparable hidden width.
    let vocab = Featurizer::build(&db, &cols, sample_size);
    let flat_feat = FlatFeaturizer::new(vocab);
    let mut flat = FlatModel::new(flat_feat.dim(), 96, BENCH_SEED ^ 0xF1A7);
    println!(
        "training flat MLP ({} input dims, {} parameters) …",
        flat_feat.dim(),
        flat.num_params()
    );
    flat.train(
        &flat_feat,
        &samples,
        &queries,
        &labels,
        &normalizer,
        epochs,
        128,
        BENCH_SEED ^ 0x7EA1,
    );

    // --- Evaluate both on JOB-light ----------------------------------------
    let workload = job_light_workload(&db, BENCH_SEED ^ 4);
    let truths: Vec<f64> = workload.iter().map(|q| oracle.estimate(q)).collect();
    let mscn_q: Vec<f64> = workload
        .iter()
        .zip(&truths)
        .map(|(q, &t)| qerror(mscn_sketch.estimate(q), t))
        .collect();
    let flat_ests = flat.estimate_batch(&flat_feat, &samples, &workload, &normalizer);
    let flat_q: Vec<f64> = flat_ests
        .iter()
        .zip(&truths)
        .map(|(&e, &t)| qerror(e, t))
        .collect();

    println!("\nq-errors on JOB-light:");
    println!("{}", QErrorSummary::table_header());
    println!(
        "{}",
        QErrorSummary::from_qerrors(&mscn_q).table_row("MSCN (sets)")
    );
    println!(
        "{}",
        QErrorSummary::from_qerrors(&flat_q).table_row("flat MLP")
    );

    let m = QErrorSummary::from_qerrors(&mscn_q);
    let f = QErrorSummary::from_qerrors(&flat_q);
    println!(
        "\nshape check: MSCN mean {:.2} vs flat {:.2} → {}",
        m.mean,
        f.mean,
        if m.mean <= f.mean {
            "set semantics help, as §2 claims"
        } else {
            "flat model unexpectedly ahead on this run"
        }
    );
}
