//! **E9 — TPC-H support**: the demo "allows users to define Deep Sketches
//! on the TPC-H and IMDb datasets". TPC-H is uniform and independent, so —
//! in contrast to IMDb — the traditional estimators are already accurate
//! and the learned sketch merely has to match them.
//!
//! Run: `cargo bench -p ds-bench --bench e9_tpch`

use ds_bench::{banner, bench_tpch, qerrors_against_truth, BENCH_SEED};
use ds_core::builder::SketchBuilder;
use ds_core::metrics::QErrorSummary;
use ds_est::oracle::TrueCardinalityOracle;
use ds_est::postgres::PostgresEstimator;
use ds_est::sampling::SamplingEstimator;
use ds_est::CardinalityEstimator;
use ds_query::workloads::tpch::tpch_workload;
use ds_query::workloads::tpch_predicate_columns;

fn main() {
    banner(
        "E9",
        "demo scope: TPC-H sketches",
        "on uniform/independent data all estimators are good — the contrast dataset",
    );
    let db = bench_tpch();
    for t in db.tables() {
        println!("  {:<10} {:>8} rows", t.name(), t.num_rows());
    }

    println!("\nbuilding TPC-H Deep Sketch …");
    let (sketch, report) = SketchBuilder::new(&db, tpch_predicate_columns(&db))
        .training_queries(8_000)
        .epochs(25)
        .sample_size(100)
        .hidden_units(96)
        .max_tables(4)
        .max_predicates(4)
        .seed(BENCH_SEED ^ 0xE9)
        .build_with_report()
        .expect("pipeline");
    println!(
        "  trained in {:.1?}; val mean q-error {:.2}",
        report.training.total_duration,
        report.training.final_val_qerror().unwrap_or(f64::NAN)
    );

    let hyper = SamplingEstimator::build(&db, 100, BENCH_SEED ^ 0xE9A);
    let postgres = PostgresEstimator::build(&db);
    let oracle = TrueCardinalityOracle::new(&db);

    let workload = tpch_workload(&db, BENCH_SEED ^ 0xE9B);
    let truths: Vec<f64> = workload.iter().map(|q| oracle.estimate(q)).collect();

    println!(
        "\nq-errors on the TPC-H workload ({} queries):\n",
        workload.len()
    );
    println!("{}", QErrorSummary::table_header());
    println!(
        "{}",
        QErrorSummary::from_qerrors(&qerrors_against_truth(&sketch, &truths, &workload))
            .table_row("Deep Sketch")
    );
    println!(
        "{}",
        QErrorSummary::from_qerrors(&qerrors_against_truth(&hyper, &truths, &workload))
            .table_row("HyPer")
    );
    println!(
        "{}",
        QErrorSummary::from_qerrors(&qerrors_against_truth(&postgres, &truths, &workload))
            .table_row("PostgreSQL")
    );
    println!("\nexpected shape: all three medians close to 1-3 — the IMDb gap");
    println!("(E1) comes from correlations, which TPC-H does not have.");
}
