//! **E8 — ablation of the design choices §2 calls out**: the integration of
//! runtime sampling ("we featurize information about qualifying base table
//! samples … bitmaps are then used as an additional input") and the sample
//! size itself.
//!
//! Trains otherwise-identical models (a) with and without bitmap features
//! and (b) across sample sizes, and evaluates all of them on JOB-light.
//!
//! Run: `cargo bench -p ds-bench --bench e8_ablation_bitmaps`

use ds_bench::{banner, bench_imdb, qerrors_against_truth, BENCH_SEED};
use ds_core::builder::SketchBuilder;
use ds_core::metrics::QErrorSummary;
use ds_est::oracle::TrueCardinalityOracle;
use ds_est::CardinalityEstimator;
use ds_query::workloads::imdb_predicate_columns;
use ds_query::workloads::job_light::job_light_workload;

fn main() {
    banner(
        "E8",
        "§2 design ablation (sample bitmaps; sample size)",
        "bitmaps are the sampling signal — removing them must hurt",
    );
    let db = bench_imdb();
    let oracle = TrueCardinalityOracle::new(&db);
    let workload = job_light_workload(&db, BENCH_SEED ^ 4);
    let truths: Vec<f64> = workload.iter().map(|q| oracle.estimate(q)).collect();

    // Reduced-but-fair training budget per variant keeps the ablation fast.
    let train = |use_bitmaps: bool, sample_size: usize| {
        SketchBuilder::new(&db, imdb_predicate_columns(&db))
            .training_queries(6_000)
            .epochs(20)
            .sample_size(sample_size)
            .hidden_units(96)
            .max_tables(5)
            .max_predicates(4)
            .use_bitmaps(use_bitmaps)
            .seed(BENCH_SEED ^ 0xE8)
            .build()
            .expect("pipeline")
    };

    println!("\n[1] with vs without sample-bitmap features (sample size 100):");
    println!("{}", QErrorSummary::table_header());
    for (label, on) in [("with bitmaps", true), ("no bitmaps", false)] {
        let sketch = train(on, 100);
        let s = QErrorSummary::from_qerrors(&qerrors_against_truth(&sketch, &truths, &workload));
        println!("{}", s.table_row(label));
    }

    println!("\n[2] sample-size sweep (bitmaps on):");
    println!("{}", QErrorSummary::table_header());
    for &n in &[25usize, 50, 100, 200] {
        let sketch = train(true, n);
        let s = QErrorSummary::from_qerrors(&qerrors_against_truth(&sketch, &truths, &workload));
        println!("{}", s.table_row(&format!("{n} samples")));
    }
    println!("\nexpected shape: bitmaps help across the board; accuracy improves");
    println!("with sample size and saturates once rare predicates are covered.");
}
