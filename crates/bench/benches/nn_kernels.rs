//! **NN kernel + pipeline throughput** — the numbers behind the compute
//! backbone: matmul kernel timings at the MSCN-critical shapes, end-to-end
//! training cost at the fig1a configuration (10k queries), and batched vs
//! looped serving latency on a JOB-light-style workload.
//!
//! Writes machine-readable results to `BENCH_nn_kernels.json` at the repo
//! root (hand-rolled JSON; no serde in the offline build).
//!
//! Run: `cargo bench -p ds-bench --bench nn_kernels`

use std::hint::black_box;
use std::time::Instant;

use ds_bench::{banner, bench_imdb, BENCH_SEED};
use ds_core::builder::SketchBuilder;
use ds_nn::pool::PoolConfig;
use ds_nn::tensor::{reference, Kernel, Tensor};
use ds_query::workloads::imdb_predicate_columns;
use ds_query::workloads::job_light::job_light_workload;

/// Median wall-clock seconds of `iters` runs of `f`.
fn median_secs<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        black_box(f());
        times.push(t.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn filled(rows: usize, cols: usize, seed: u64) -> Tensor {
    // Cheap deterministic pseudo-random fill; value distribution is
    // irrelevant for timing.
    let mut s = seed | 1;
    let data = (0..rows * cols)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

struct Shape {
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
}

fn main() {
    banner(
        "NN",
        "kernel + pipeline throughput",
        "tiled matmul at MSCN shapes; fig1a training cost; batched serving",
    );

    // --- (1) matmul kernels at the MSCN-critical shapes -----------------
    // batch×feature_dim · feature_dim×256 (input layer), 256×256 (hidden),
    // 256×1 (output head).
    let shapes = [
        Shape {
            name: "input_384x106_x256",
            m: 384,
            k: 106,
            n: 256,
        },
        Shape {
            name: "hidden_384x256_x256",
            m: 384,
            k: 256,
            n: 256,
        },
        Shape {
            name: "head_384x256_x1",
            m: 384,
            k: 256,
            n: 1,
        },
    ];
    println!("\n[1] matmul kernel medians (seconds):");
    println!(
        "  {:<22} {:>12} {:>12} {:>12} {:>8}",
        "shape", "reference", "tiled", "threaded(4)", "speedup"
    );
    let mut kernel_lines = Vec::new();
    for s in &shapes {
        let a = filled(s.m, s.k, 0xA0 ^ s.m as u64);
        let b = filled(s.k, s.n, 0xB0 ^ s.n as u64);
        let iters = 30;
        let t_ref = median_secs(iters, || reference::matmul(&a, &b));
        let t_tiled = median_secs(iters, || {
            a.matmul_pool(&b, Kernel::Dense, PoolConfig::single())
        });
        let t_thr = median_secs(iters, || {
            a.matmul_pool(&b, Kernel::Dense, PoolConfig::new(4))
        });
        // Sanity: all three paths must agree exactly.
        assert_eq!(
            reference::matmul(&a, &b).data(),
            a.matmul_pool(&b, Kernel::Dense, PoolConfig::new(4)).data(),
            "kernel paths diverged at {}",
            s.name
        );
        let speedup = t_ref / t_tiled;
        println!(
            "  {:<22} {t_ref:>12.6} {t_tiled:>12.6} {t_thr:>12.6} {speedup:>7.2}x",
            s.name
        );
        kernel_lines.push(format!(
            "    {{\"shape\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"reference_secs\": {t_ref:.9}, \"tiled_secs\": {t_tiled:.9}, \
             \"threaded4_secs\": {t_thr:.9}, \"tiled_speedup\": {speedup:.4}}}",
            s.name, s.m, s.k, s.n
        ));
    }

    // --- (2) fig1a training cost at 10k queries -------------------------
    println!("\n[2] fig1a pipeline at 10k queries / 30 epochs:");
    let db = bench_imdb();
    let cols = imdb_predicate_columns(&db);
    let (sketch, report) = SketchBuilder::new(&db, cols.clone())
        .training_queries(10_000)
        .epochs(30)
        .sample_size(100)
        .hidden_units(96)
        .max_tables(5)
        .max_predicates(4)
        .seed(BENCH_SEED ^ 2)
        .build_with_report()
        .expect("pipeline");
    let train_secs = report.training.total_duration.as_secs_f64();
    let exec_secs = report.execution.as_secs_f64();
    println!("  execute (labels) : {exec_secs:>10.2}s");
    println!("  featurize+train  : {train_secs:>10.2}s");
    println!(
        "  final val q-error: {:>10.2}",
        report.training.final_val_qerror().unwrap_or(f64::NAN)
    );

    // --- (3) batched vs looped serving on 1k JOB-light queries ----------
    println!("\n[3] serving 1000 JOB-light queries:");
    let base = job_light_workload(&db, 4);
    let queries: Vec<_> = base.iter().cycle().take(1000).cloned().collect();
    let looped_secs = median_secs(3, || {
        queries
            .iter()
            .map(|q| sketch.estimate_one(q))
            .collect::<Vec<f64>>()
    });
    let batch_secs = median_secs(3, || sketch.estimate_batch(&queries));
    // Sanity: both paths must agree exactly.
    let a = queries
        .iter()
        .map(|q| sketch.estimate_one(q))
        .collect::<Vec<f64>>();
    let b = sketch.estimate_batch(&queries);
    assert_eq!(a, b, "batched serving must match looped serving exactly");
    let speedup = looped_secs / batch_secs;
    println!("  looped estimate_one: {looped_secs:>10.4}s");
    println!("  estimate_batch     : {batch_secs:>10.4}s  ({speedup:.2}x)");

    // --- machine-readable dump ------------------------------------------
    let json = format!(
        "{{\n  \"kernels\": [\n{}\n  ],\n  \"training_fig1a_10k\": {{\"train_secs\": {train_secs:.4}, \"execute_secs\": {exec_secs:.4}, \"val_qerror\": {:.4}}},\n  \"serving_1k_job_light\": {{\"looped_secs\": {looped_secs:.6}, \"batch_secs\": {batch_secs:.6}, \"speedup\": {speedup:.4}}}\n}}\n",
        kernel_lines.join(",\n"),
        report.training.final_val_qerror().unwrap_or(f64::NAN),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_nn_kernels.json");
    std::fs::write(path, &json).expect("write BENCH_nn_kernels.json");
    println!("\nwrote {path}");
}
