//! **E2 — Figure 1a + §3 training-cost discussion**: the four-step sketch
//! creation pipeline and its cost scaling.
//!
//! Paper claims reproduced here (hardware-independent *shape*, not the
//! absolute 39 min of an AWS ml.p2.xlarge GPU):
//!
//! 1. the pipeline decomposes into generation / execution / training, with
//!    training dominating at high epoch counts;
//! 2. "the training time decreases linearly with fewer epochs" — time per
//!    epoch is constant;
//! 3. "for a small number of tables, 10,000 queries will already be
//!    sufficient to achieve good results" — validation q-error flattens
//!    with more queries.
//!
//! Run: `cargo bench -p ds-bench --bench fig1a_training_cost`

use ds_bench::{banner, bench_imdb, BENCH_SEED};
use ds_core::builder::SketchBuilder;
use ds_query::workloads::imdb_predicate_columns;

fn main() {
    banner(
        "E2",
        "Figure 1a / §3 (training cost)",
        "pipeline cost breakdown; time linear in epochs; 10k queries suffice",
    );
    let db = bench_imdb();
    let cols = imdb_predicate_columns(&db);

    // --- (1) pipeline breakdown at the standard configuration ----------
    println!("\n[1] pipeline cost breakdown (10000 queries, 30 epochs):");
    let (_, report) = SketchBuilder::new(&db, cols.clone())
        .training_queries(10_000)
        .epochs(30)
        .sample_size(100)
        .hidden_units(96)
        .max_tables(5)
        .max_predicates(4)
        .seed(BENCH_SEED ^ 2)
        .build_with_report()
        .expect("pipeline");
    println!("  step 1+2 generate queries : {:>10.2?}", report.generation);
    println!("  step 3   execute (labels) : {:>10.2?}", report.execution);
    println!(
        "  step 4   featurize+train  : {:>10.2?}  ({:.2?}/epoch)",
        report.training.total_duration,
        report.training.total_duration / report.training.epochs.len() as u32
    );

    // --- (2) training time is linear in epochs --------------------------
    println!("\n[2] training time vs epochs (2000 queries, hidden 64):");
    println!("  {:>7} {:>12} {:>14}", "epochs", "total", "per-epoch");
    let mut per_epoch = Vec::new();
    for &epochs in &[5usize, 10, 20, 40] {
        let (_, r) = SketchBuilder::new(&db, cols.clone())
            .training_queries(2_000)
            .epochs(epochs)
            .sample_size(100)
            .hidden_units(64)
            .seed(BENCH_SEED ^ 7)
            .build_with_report()
            .expect("pipeline");
        let total = r.training.total_duration;
        let per = total.as_secs_f64() / epochs as f64;
        per_epoch.push(per);
        println!("  {epochs:>7} {total:>12.2?} {per:>12.3}s");
    }
    let spread = per_epoch.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
        / per_epoch.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    println!(
        "  per-epoch spread {:.2}× → {}",
        spread,
        if spread < 2.0 {
            "approximately linear in epochs, as claimed"
        } else {
            "NOT linear (check system noise)"
        }
    );

    // --- (3) more queries → better validation q-error, flattening -------
    println!("\n[3] validation mean q-error vs number of training queries (16 epochs):");
    println!(
        "  {:>9} {:>14} {:>12}",
        "queries", "val q-error", "train time"
    );
    for &n in &[1_000usize, 2_500, 5_000, 10_000] {
        let (_, r) = SketchBuilder::new(&db, cols.clone())
            .training_queries(n)
            .epochs(16)
            .sample_size(100)
            .hidden_units(64)
            .seed(BENCH_SEED ^ 9)
            .build_with_report()
            .expect("pipeline");
        println!(
            "  {n:>9} {:>14.2} {:>12.2?}",
            r.training.final_val_qerror().unwrap_or(f64::NAN),
            r.training.total_duration
        );
    }
    println!("\npaper reference: 90k queries × 100 epochs ≈ 39 min on an AWS");
    println!("ml.p2.xlarge GPU; 10k queries / 25 epochs suffice for small table sets.");
}
