//! **E12 — extension**: sketch staleness and maintenance.
//!
//! §4: "more research is needed to automate the training and utilization
//! of Deep Sketches in query optimizers." This experiment simulates the
//! operational lifecycle: a sketch is trained on one database state, the
//! database evolves (more titles, different era/popularity mix), and we
//! measure (a) how stale the sketch's estimates become, (b) whether the
//! KS-based drift detector fires, and (c) how much of the loss a cheap
//! sample refresh recovers vs a full retrain.
//!
//! Run: `cargo bench -p ds-bench --bench e12_drift`

use ds_bench::{banner, qerrors_against_truth, standard_sketch_builder, BENCH_SEED};
use ds_core::maintain::{detect_drift, refresh_samples};
use ds_core::metrics::QErrorSummary;
use ds_est::oracle::TrueCardinalityOracle;
use ds_est::CardinalityEstimator;
use ds_query::workloads::imdb_predicate_columns;
use ds_query::workloads::job_light::job_light_workload;
use ds_storage::gen::{imdb_database, ImdbConfig};

fn main() {
    banner(
        "E12 (extension)",
        "§4: automating sketch maintenance",
        "stale sketch vs drift detection vs sample refresh vs retrain",
    );

    // The database at training time…
    let db_v1 = imdb_database(&ImdbConfig {
        movies: 8_000,
        keywords: 4_000,
        companies: 1_500,
        persons: 20_000,
        seed: BENCH_SEED,
    });
    // …and after evolution: 50% more titles with a different seed — new
    // keyword bands dominate, fanouts shift.
    let db_v2 = imdb_database(&ImdbConfig {
        movies: 12_000,
        keywords: 4_000,
        companies: 1_500,
        persons: 20_000,
        seed: BENCH_SEED ^ 0xD41F7,
    });

    println!("\ntraining sketch on v1 ({} rows) …", db_v1.total_rows());
    let sketch_v1 = standard_sketch_builder(&db_v1, imdb_predicate_columns(&db_v1))
        .build()
        .expect("v1 sketch");

    // Drift check.
    let report = detect_drift(&sketch_v1, &db_v2, BENCH_SEED ^ 0xD);
    let (t, col, worst) = report.worst().expect("drift columns");
    println!(
        "\ndrift detector against v2 ({} rows): max KS {:.3} (worst: {}.{} — a key\n\
         column, inflated by growth alone); predicate-column KS {:.3}",
        db_v2.total_rows(),
        report.max_drift,
        db_v2.table(t).name(),
        col,
        report.predicate_drift
    );
    println!(
        "  needs_retraining(0.15) on predicate columns → {}",
        report.needs_retraining(0.15)
    );
    let _ = worst;

    // Evaluate three maintenance strategies on the v2 workload.
    let oracle_v2 = TrueCardinalityOracle::new(&db_v2);
    let workload = job_light_workload(&db_v2, BENCH_SEED ^ 4);
    let truths: Vec<f64> = workload.iter().map(|q| oracle_v2.estimate(q)).collect();

    let stale = QErrorSummary::from_qerrors(&qerrors_against_truth(&sketch_v1, &truths, &workload));

    let refreshed_sketch = refresh_samples(&sketch_v1, &db_v2, BENCH_SEED ^ 0xD2);
    let refreshed = QErrorSummary::from_qerrors(&qerrors_against_truth(
        &refreshed_sketch,
        &truths,
        &workload,
    ));

    println!("\nretraining on v2 …");
    let retrained_sketch = standard_sketch_builder(&db_v2, imdb_predicate_columns(&db_v2))
        .seed(BENCH_SEED ^ 0xD3)
        .build()
        .expect("v2 sketch");
    let retrained = QErrorSummary::from_qerrors(&qerrors_against_truth(
        &retrained_sketch,
        &truths,
        &workload,
    ));

    println!("\nJOB-light q-errors against the evolved database:");
    println!("{}", QErrorSummary::table_header());
    println!("{}", stale.table_row("stale (v1)"));
    println!("{}", refreshed.table_row("refreshed"));
    println!("{}", retrained.table_row("retrained"));

    println!(
        "\nreading the result: once the detector fires, only retraining restores\n\
         accuracy. Notably, refreshing samples WITHOUT retraining makes things\n\
         worse — the sample bitmaps are part of the learned input distribution,\n\
         so handing a v1-trained model v2 bitmaps shifts its inputs\n\
         off-distribution. Automation should therefore couple the drift signal\n\
         to retraining (cheap here: ~40 s), not to sample refresh alone."
    );
}
