//! **E5 — §2 0-tuple claim**: "One advantage of our approach over pure
//! sampling-based cardinality estimators is that it addresses 0-tuple
//! situations … sampling-based approaches usually fall back to an
//! 'educated' guess — causing large estimation errors. Our approach, in
//! contrast, handles such situations reasonably well."
//!
//! Generates evaluation queries, splits them into 0-tuple and non-0-tuple
//! subsets (w.r.t. the 100-tuple samples both the sketch and the sampling
//! estimator use), and compares q-errors per subset.
//!
//! Run: `cargo bench -p ds-bench --bench e5_zero_tuple`

use ds_bench::{banner, bench_imdb, qerrors_against_truth, standard_imdb_sketch, BENCH_SEED};
use ds_core::metrics::QErrorSummary;
use ds_est::oracle::TrueCardinalityOracle;
use ds_est::postgres::PostgresEstimator;
use ds_est::sampling::SamplingEstimator;
use ds_est::CardinalityEstimator;
use ds_query::workloads::imdb_predicate_columns;
use ds_query::{GeneratorConfig, QueryGenerator};

fn main() {
    banner(
        "E5",
        "§2 (0-tuple situations)",
        "sampling falls back to an educated guess; the sketch reads static features",
    );
    let db = bench_imdb();
    let sketch = standard_imdb_sketch(&db);
    let hyper = SamplingEstimator::build(&db, 100, BENCH_SEED ^ 3);
    let postgres = PostgresEstimator::build(&db);
    let oracle = TrueCardinalityOracle::new(&db);

    // Evaluation queries from the training distribution (selective
    // equality predicates on big domains make 0-tuple situations common).
    let mut cfg = GeneratorConfig::new(imdb_predicate_columns(&db), BENCH_SEED ^ 0xE5);
    cfg.max_tables = 4;
    cfg.max_predicates = 3;
    let mut generator = QueryGenerator::new(&db, cfg);
    let queries = generator.generate_batch(3_000);

    let (zero, nonzero): (Vec<_>, Vec<_>) =
        queries.into_iter().partition(|q| hyper.is_zero_tuple(q));
    println!(
        "\n{} 0-tuple queries, {} non-0-tuple queries (100-tuple samples)",
        zero.len(),
        nonzero.len()
    );

    for (name, subset) in [
        ("0-TUPLE situations", &zero),
        ("non-0-tuple queries", &nonzero),
    ] {
        let truths: Vec<f64> = subset.iter().map(|q| oracle.estimate(q)).collect();
        println!("\nq-errors on {name} ({} queries):", subset.len());
        println!("{}", QErrorSummary::table_header());
        for est in [&sketch as &dyn CardinalityEstimator, &hyper, &postgres] {
            let label = if est.name().starts_with("Deep") {
                "Deep Sketch"
            } else {
                est.name()
            };
            let qs = qerrors_against_truth(est, &truths, subset);
            println!("{}", QErrorSummary::from_qerrors(&qs).table_row(label));
        }
    }

    // Shape check: the sampling estimator's degradation from non-0-tuple
    // to 0-tuple should far exceed the sketch's.
    let q_of = |est: &dyn CardinalityEstimator, subset: &[ds_query::query::Query]| {
        let truths: Vec<f64> = subset.iter().map(|q| oracle.estimate(q)).collect();
        QErrorSummary::from_qerrors(&qerrors_against_truth(est, &truths, subset)).median
    };
    let hy_ratio = q_of(&hyper, &zero) / q_of(&hyper, &nonzero);
    let sk_ratio = q_of(&sketch, &zero) / q_of(&sketch, &nonzero);
    println!(
        "\nmedian degradation 0-tuple vs rest: sampling {hy_ratio:.1}×, sketch {sk_ratio:.1}× → {}",
        if hy_ratio > sk_ratio {
            "sketch is more robust in 0-tuple situations, as claimed"
        } else {
            "UNEXPECTED: sampling degraded less than the sketch"
        }
    );
}
