//! **E10 — extension**: do better cardinality estimates give better join
//! orders?
//!
//! The paper motivates Deep Sketches as input to "existing, sophisticated
//! join enumeration algorithms and cost models" but defers measuring the
//! effect ("which is orthogonal to having better estimates in the first
//! place"). This experiment closes that loop with the `ds-plan` substrate:
//! a `C_out` bitmask-DP optimizer is run once per estimator, and each
//! chosen plan is re-costed with *true* cardinalities. Regret = true cost
//! of the chosen plan / true cost of the true-optimal plan.
//!
//! Run: `cargo bench -p ds-bench --bench e10_plan_quality`

use ds_bench::{banner, bench_imdb, standard_imdb_sketch, BENCH_SEED};
use ds_est::oracle::TrueCardinalityOracle;
use ds_est::postgres::PostgresEstimator;
use ds_est::sampling::SamplingEstimator;
use ds_est::CardinalityEstimator;
use ds_plan::quality::workload_regret;
use ds_query::workloads::job_light::job_light_workload;

fn main() {
    banner(
        "E10 (extension)",
        "§1: estimates feed join enumeration + cost models",
        "plan regret under C_out when optimizing with each estimator's numbers",
    );
    let db = bench_imdb();
    let sketch = standard_imdb_sketch(&db);
    let hyper = SamplingEstimator::build(&db, 100, BENCH_SEED ^ 3);
    let postgres = PostgresEstimator::build(&db);
    let oracle = TrueCardinalityOracle::new(&db);

    // Multi-join JOB-light queries (plan space is trivial below 2 joins).
    let workload = job_light_workload(&db, BENCH_SEED ^ 4);
    let eligible = workload.iter().filter(|q| q.num_joins() >= 2).count();
    println!("\n{eligible} JOB-light queries with ≥ 2 joins\n");

    println!(
        "{:<14} {:>10} {:>12} {:>10}",
        "estimator", "mean", "optimal-%", "max"
    );
    for est in [&sketch as &dyn CardinalityEstimator, &hyper, &postgres] {
        let label = if est.name().starts_with("Deep") {
            "Deep Sketch"
        } else {
            est.name()
        };
        let report = workload_regret(&workload, est, &oracle);
        println!(
            "{label:<14} {:>10.3} {:>11.0}% {:>10.2}",
            report.mean,
            report.optimal_fraction * 100.0,
            report.max
        );
    }
    println!(
        "\nreading the result: all estimators land close to regret 1.0 on this\n\
         star schema — its plan space is small and C_out differences between\n\
         orders are mild. Notably, the traditional estimators' errors are\n\
         *systematic* (consistent underestimation cancels when comparing two\n\
         plans), while the sketch's errors are noisier per subset and can\n\
         occasionally flip an order. This mirrors the observation of Leis et\n\
         al. (VLDBJ 2018) that estimation accuracy and plan quality are\n\
         related but not identical — exactly why the paper calls the plan\n\
         question 'orthogonal' and defers it."
    );
}
