//! **E4 — §3 convergence claim**: "From our experience, 25 epochs are
//! usually enough to achieve a reasonable mean q-error on a separate
//! validation set."
//!
//! Trains the standard configuration for 50 epochs and prints the
//! validation mean q-error per epoch; the curve should be near its floor by
//! epoch ~25.
//!
//! Run: `cargo bench -p ds-bench --bench e4_convergence`

use ds_bench::{banner, bench_imdb, BENCH_SEED};
use ds_core::builder::SketchBuilder;
use ds_query::workloads::imdb_predicate_columns;

fn main() {
    banner(
        "E4",
        "§3 claim: 25 epochs usually suffice",
        "validation mean q-error per training epoch (50 epochs)",
    );
    let db = bench_imdb();
    let (_, report) = SketchBuilder::new(&db, imdb_predicate_columns(&db))
        .training_queries(8_000)
        .epochs(50)
        .sample_size(100)
        .hidden_units(96)
        .max_tables(5)
        .max_predicates(4)
        .seed(BENCH_SEED ^ 0xE4)
        .build_with_report()
        .expect("pipeline");

    let vals: Vec<f64> = report
        .training
        .epochs
        .iter()
        .map(|e| e.val_mean_qerror.expect("validation enabled"))
        .collect();

    let max = vals.iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "\n{:>6} {:>14} {:>12}  curve",
        "epoch", "val q-error", "train loss"
    );
    for (i, e) in report.training.epochs.iter().enumerate() {
        let bar = "▆".repeat(((vals[i] / max) * 40.0).round() as usize);
        println!(
            "{:>6} {:>14.2} {:>12.2}  {bar}",
            i + 1,
            vals[i],
            e.train_loss
        );
    }

    // Shape check: q-error at epoch 25 should be within 30% of the
    // eventual floor (the paper's "reasonable" point).
    let floor = vals.iter().cloned().fold(f64::MAX, f64::min);
    let at25 = vals[24.min(vals.len() - 1)];
    println!(
        "\nfloor (best epoch): {floor:.2}; at epoch 25: {at25:.2} ({:.0}% above floor) → {}",
        (at25 / floor - 1.0) * 100.0,
        if at25 <= floor * 1.5 {
            "25 epochs reach a reasonable q-error, as claimed"
        } else {
            "convergence slower than the paper claims on this setup"
        }
    );
}
