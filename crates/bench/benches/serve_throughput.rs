//! E13 — serving throughput: request coalescing vs per-request dispatch,
//! plus the warm-cache ceiling.
//!
//! The same TCP server, the same 64 concurrent clients, the same
//! JOB-light-style workload — measured twice: once with `max_batch = 1`
//! (every request is its own forward pass) and once with `max_batch = 64`
//! (concurrent requests coalesce into micro-batches answered by one
//! `estimate_batch` pass). The batched compute backbone makes a coalesced
//! pass far cheaper per query than independent passes, so coalescing should
//! deliver ≥3× the end-to-end throughput at this concurrency. The
//! forward-pass scenarios disable the estimate cache so they keep measuring
//! the model path; a third, **open-loop** scenario then turns the default
//! cache back on and pipelines requests without waiting for responses —
//! the per-RTT serialization of the closed-loop fleet would otherwise cap
//! measured throughput far below what the server sustains — to record the
//! warm-cache ceiling (issue target: >100k req/s).
//!
//! A final **honest open-loop** scenario drives the cold path with Poisson
//! arrivals at ~120% of the measured closed-loop capacity and records
//! p50/p95/p99 latency measured from each request's *scheduled arrival*
//! (`ds_bench::loadgen`), so coordinated omission cannot hide queueing
//! under overload the way the closed-loop fleets structurally do.
//!
//! Writes machine-readable results to `BENCH_serve.json` at the repo root.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ds_bench::loadgen::{run_open_loop, OpenLoopConfig};
use ds_bench::{banner, BENCH_SEED};
use ds_core::builder::SketchBuilder;
use ds_core::store::SketchStore;
use ds_query::parser::parse_query;
use ds_query::workloads::imdb_predicate_columns;
use ds_serve::{Client, MetricsSnapshot, ServeConfig, Server};
use ds_storage::catalog::Database;
use ds_storage::gen::{imdb_database, ImdbConfig};

const CLIENTS: usize = 64;
const QUERIES_PER_CLIENT: usize = 24;

// Join-heavy, JOB-light-shaped queries: multi-table featurization keeps
// the forward pass (the thing coalescing amortizes) the dominant cost.
const WORKLOAD: &[&str] = &[
    "SELECT COUNT(*) FROM title t, movie_keyword mk \
     WHERE mk.movie_id = t.id AND mk.keyword_id = 11",
    "SELECT COUNT(*) FROM title t, movie_keyword mk \
     WHERE mk.movie_id = t.id AND t.production_year > 1995",
    "SELECT COUNT(*) FROM title t, movie_companies mc \
     WHERE mc.movie_id = t.id AND mc.company_type_id = 1",
    "SELECT COUNT(*) FROM title t, movie_info mi \
     WHERE mi.movie_id = t.id AND mi.info_type_id < 50 AND t.kind_id = 1",
    "SELECT COUNT(*) FROM title t, movie_keyword mk, movie_companies mc \
     WHERE mk.movie_id = t.id AND mc.movie_id = t.id \
     AND t.production_year > 1990",
    "SELECT COUNT(*) FROM title t, cast_info ci, movie_info mi \
     WHERE ci.movie_id = t.id AND mi.movie_id = t.id AND ci.role_id = 2",
];

/// Runs the full client fleet against a fresh server with the given batch
/// cap; returns (elapsed, final metrics). `instrumented` turns on the
/// per-request timeline pipeline with a zero slow threshold (six stamps,
/// five stage-histogram records and an exemplar push per request); the
/// bare fleet turns it off so the pair brackets the full tracing cost.
fn run_fleet(
    db: &Arc<Database>,
    store: &Arc<SketchStore>,
    max_batch: usize,
    instrumented: bool,
) -> (Duration, MetricsSnapshot) {
    let server = Server::start(
        Arc::clone(db),
        Arc::clone(store),
        ServeConfig::builder()
            // Single worker: this host has one core, and one worker forms
            // the largest (most amortized) batches.
            .workers(1)
            .max_batch(max_batch)
            .queue_capacity(4096)
            .request_timeout(Duration::from_secs(60))
            .max_connections(CLIENTS + 8)
            .timeline(instrumented)
            .slow_threshold(Duration::ZERO)
            // This fleet measures the forward-pass path; the 6-template
            // workload would otherwise be answered from the cache.
            .cache_capacity(0)
            .build()
            .expect("valid bench config"),
    )
    .expect("bind server");
    let addr = server.local_addr();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                s.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    for k in 0..QUERIES_PER_CLIENT {
                        let sql = WORKLOAD[(i + k) % WORKLOAD.len()];
                        c.estimate_value("imdb", sql).expect("wire estimate");
                    }
                    c.quit().expect("QUIT");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });
    let elapsed = t0.elapsed();
    let snap = server.shutdown();
    assert_eq!(snap.ok, (CLIENTS * QUERIES_PER_CLIENT) as u64);
    assert_eq!(snap.errors + snap.shed + snap.timeouts, 0);
    (elapsed, snap)
}

/// How many pipelined requests each open-loop client writes before reading
/// any response. Large enough that connection setup and the cold pass
/// amortize away.
const OPEN_LOOP_REQUESTS_PER_CLIENT: usize = 400;

/// The warm-cache, open-loop scenario: the default estimate cache is on,
/// and each client writes its whole request batch before reading a single
/// response, so the measurement is the server's sustainable rate rather
/// than the closed-loop round-trip latency. Returns (elapsed, requests,
/// cache hits).
fn run_warm_cache_open_loop(db: &Arc<Database>, store: &Arc<SketchStore>) -> (Duration, u64, f64) {
    let server = Server::start(
        Arc::clone(db),
        Arc::clone(store),
        ServeConfig::builder()
            .workers(1)
            .max_batch(64)
            .queue_capacity(4096)
            .request_timeout(Duration::from_secs(60))
            .max_connections(CLIENTS + 8)
            .timeline(false)
            .build()
            .expect("valid bench config"),
    )
    .expect("bind server");
    let addr = server.local_addr();
    // Cold pass: populate every template+literal pair once.
    {
        let mut c = Client::connect(addr).expect("connect");
        for sql in WORKLOAD {
            c.estimate_value("imdb", sql).expect("cold estimate");
        }
        c.quit().expect("QUIT");
    }
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                s.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let mut writer = BufWriter::new(stream.try_clone().expect("clone stream"));
                    let mut reader = BufReader::new(stream);
                    for k in 0..OPEN_LOOP_REQUESTS_PER_CLIENT {
                        let sql = WORKLOAD[(i + k) % WORKLOAD.len()];
                        writeln!(writer, "ESTIMATE imdb {sql}").expect("write request");
                    }
                    writer.flush().expect("flush pipeline");
                    let mut line = String::new();
                    for k in 0..OPEN_LOOP_REQUESTS_PER_CLIENT {
                        line.clear();
                        reader.read_line(&mut line).expect("read response");
                        assert!(line.starts_with("OK "), "request {k}: {line}");
                    }
                    writeln!(writer, "QUIT").expect("write QUIT");
                    writer.flush().expect("flush QUIT");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("open-loop client");
        }
    });
    let elapsed = t0.elapsed();
    // Read the hit counter before shutdown so the warm claim is auditable.
    let mut c = Client::connect(addr).expect("connect");
    let hits = c
        .stats()
        .expect("STATS")
        .iter()
        .find(|s| s.name == "ds_serve_cache_hits")
        .map(|s| s.value)
        .expect("cache hit counter");
    c.quit().expect("QUIT");
    let snap = server.shutdown();
    let total = (CLIENTS * OPEN_LOOP_REQUESTS_PER_CLIENT) as u64;
    assert_eq!(snap.errors + snap.shed + snap.timeouts, 0);
    (elapsed, total, hits)
}

fn main() {
    banner(
        "E13",
        "serving throughput (new experiment)",
        "coalescing concurrent requests into micro-batches multiplies \
         end-to-end serving throughput",
    );

    let db = Arc::new(imdb_database(&ImdbConfig {
        movies: 6_000,
        keywords: 2_000,
        companies: 800,
        persons: 10_000,
        seed: BENCH_SEED ^ 13,
    }));
    println!("bench IMDb: {} rows", db.total_rows());

    println!("training the serving sketch …");
    let store = Arc::new(SketchStore::new());
    let sketch = SketchBuilder::new(&db, imdb_predicate_columns(&db))
        .training_queries(2_000)
        .epochs(6)
        .sample_size(256)
        .hidden_units(256)
        .max_tables(4)
        .seed(BENCH_SEED ^ 14)
        .build()
        .expect("serving sketch");
    store.insert("imdb", sketch).expect("fresh store");

    // Correctness gate before timing anything: wire answers must be
    // bit-identical to local estimate_one — with the observability layer
    // off AND on (tracing must never perturb an estimate).
    {
        let s = store.get("imdb").unwrap();
        let server = Server::start(
            Arc::clone(&db),
            Arc::clone(&store),
            ServeConfig::builder()
                // Keep a timeline exemplar for every request so the stage
                // decomposition can be checked below.
                .slow_threshold(Duration::ZERO)
                .build()
                .expect("valid bench config"),
        )
        .expect("bind server");
        let mut c = Client::connect(server.local_addr()).expect("connect");
        let obs = ds_obs::global();
        for sql in WORKLOAD {
            let local = s.estimate_one(&parse_query(&db, sql).expect("parse"));
            let wire = c.estimate_value("imdb", sql).expect("wire estimate");
            assert_eq!(wire.to_bits(), local.to_bits(), "untraced: {sql}");
            obs.enable();
            let traced = c.estimate_value("imdb", sql).expect("traced wire estimate");
            obs.disable();
            assert_eq!(traced.to_bits(), local.to_bits(), "traced: {sql}");
        }
        // Every request left a timeline exemplar; its five stages must
        // decompose the request wall time (5% tolerance plus a few µs of
        // per-stage integer truncation).
        let traces = c.trace().expect("TRACE");
        assert_eq!(traces.len(), 2 * WORKLOAD.len(), "one exemplar per request");
        for t in &traces {
            let diff = (t.total_us as f64 - t.stage_sum_us() as f64).abs();
            assert!(
                diff <= 0.05 * t.total_us as f64 + 6.0,
                "stage decomposition off: {t:?}"
            );
        }
        println!(
            "correctness gate: wire == local for {} queries (untraced + traced); \
             {} timeline exemplars decompose wall time",
            WORKLOAD.len(),
            traces.len()
        );
        c.quit().expect("QUIT");
        server.shutdown();
    }

    let total = CLIENTS * QUERIES_PER_CLIENT;
    println!("\n[1] per-request dispatch (max_batch = 1), {CLIENTS} clients:");
    // Warm-up run to stabilize allocator/page-cache effects, then measure.
    let _ = run_fleet(&db, &store, 1, false);
    let (per_req_elapsed, per_req) = run_fleet(&db, &store, 1, false);
    let per_req_rps = total as f64 / per_req_elapsed.as_secs_f64();
    println!(
        "  {total} requests in {:.3}s  ->  {per_req_rps:.0} req/s (batches={}, mean {:.2})",
        per_req_elapsed.as_secs_f64(),
        per_req.batches,
        per_req.mean_batch
    );

    println!("\n[2] coalesced dispatch (max_batch = 64), {CLIENTS} clients:");
    let _ = run_fleet(&db, &store, 64, false);
    let (coal_elapsed, coal) = run_fleet(&db, &store, 64, false);
    let coal_rps = total as f64 / coal_elapsed.as_secs_f64();
    println!(
        "  {total} requests in {:.3}s  ->  {coal_rps:.0} req/s (batches={}, mean {:.2}, max {})",
        coal_elapsed.as_secs_f64(),
        coal.batches,
        coal.mean_batch,
        coal.max_batch
    );

    let speedup = coal_rps / per_req_rps;
    println!("\ncoalescing speedup at {CLIENTS} clients: {speedup:.2}x (issue target: >=3x)");
    assert!(
        coal.batches < coal.ok,
        "coalescing never engaged (batches={} ok={})",
        coal.batches,
        coal.ok
    );

    println!(
        "\n[3] warm-cache open loop (cache on, {CLIENTS} clients x \
         {OPEN_LOOP_REQUESTS_PER_CLIENT} pipelined requests):"
    );
    let _ = run_warm_cache_open_loop(&db, &store);
    let (warm_elapsed, warm_total, warm_hits) = run_warm_cache_open_loop(&db, &store);
    let warm_rps = warm_total as f64 / warm_elapsed.as_secs_f64();
    let hit_rate = warm_hits / warm_total as f64;
    println!(
        "  {warm_total} requests in {:.3}s  ->  {warm_rps:.0} req/s \
         (hit rate {:.1}%, issue target: >100k req/s)",
        warm_elapsed.as_secs_f64(),
        hit_rate * 100.0,
    );
    assert!(
        hit_rate > 0.99,
        "open-loop fleet must run warm (hit rate {hit_rate:.3})"
    );

    // --- observability overhead: same coalesced fleet, fully traced ---
    // The traced side pays for everything at once: the global tracer plus
    // per-request timelines with an exemplar kept for every request.
    // Interleave untraced/traced pairs and take per-mode medians so slow
    // drift (thermal, page cache) cancels instead of biasing one side.
    println!("\n[4] observability overhead (max_batch = 64, tracer + timelines on):");
    let obs = ds_obs::global();
    let mut plain_secs = Vec::new();
    let mut traced_secs = Vec::new();
    for pair in 0..6 {
        // Alternate which mode runs first: the second run of a pair is
        // systematically warmer, and a fixed order biases the comparison.
        let trace_first = pair % 2 == 1;
        for step in 0..2 {
            if (step == 0) == trace_first {
                obs.enable();
                traced_secs.push(run_fleet(&db, &store, 64, true).0.as_secs_f64());
                obs.disable();
            } else {
                plain_secs.push(run_fleet(&db, &store, 64, false).0.as_secs_f64());
            }
        }
    }
    plain_secs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    traced_secs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let plain_med = plain_secs[plain_secs.len() / 2];
    let traced_med = traced_secs[traced_secs.len() / 2];
    let overhead_pct = (traced_med - plain_med) / plain_med * 100.0;
    println!(
        "  untraced {plain_med:.3}s vs traced {traced_med:.3}s -> overhead {overhead_pct:+.2}% \
         (issue target: < 2%)"
    );

    // --- honest open-loop tail latency under overload ---
    // Poisson arrivals at ~120% of the measured closed-loop coalesced
    // capacity, cold path (cache off). Latency is measured from each
    // request's scheduled arrival, so time spent queueing behind an
    // overloaded server lands in the percentiles instead of silently
    // thinning the offered load.
    const OPEN_LOOP_WORKERS: usize = 32;
    let target_rps = coal_rps * 1.2;
    let open_total = (target_rps * 3.0) as usize; // ~3s of offered load
    println!(
        "\n[5] honest open loop (Poisson arrivals at {target_rps:.0} req/s, \
         {open_total} requests, cold path):"
    );
    let open = {
        let server = Server::start(
            Arc::clone(&db),
            Arc::clone(&store),
            ServeConfig::builder()
                .workers(1)
                .max_batch(64)
                .queue_capacity(4096)
                .request_timeout(Duration::from_secs(60))
                .max_connections(OPEN_LOOP_WORKERS + 8)
                .timeline(false)
                .cache_capacity(0)
                .build()
                .expect("valid bench config"),
        )
        .expect("bind server");
        let addr = server.local_addr();
        let clients: Vec<Mutex<Client>> = (0..OPEN_LOOP_WORKERS)
            .map(|_| Mutex::new(Client::connect(addr).expect("connect")))
            .collect();
        let cfg = OpenLoopConfig {
            target_rps,
            total: open_total,
            workers: OPEN_LOOP_WORKERS,
            seed: BENCH_SEED ^ 15,
            deadline: Duration::from_secs(30),
        };
        let report = run_open_loop(&cfg, |i, worker| {
            let sql = WORKLOAD[i % WORKLOAD.len()];
            clients[worker]
                .lock()
                .expect("client slot")
                .estimate_value("imdb", sql)
                .map(|_| ())
        });
        let snap = server.shutdown();
        assert_eq!(report.failed_forever, 0, "open loop lost requests");
        assert!(snap.ok >= report.completed);
        report
    };
    println!(
        "  offered {:.0} req/s, achieved {:.0} req/s -> p50 {:.2} ms  p95 {:.2} ms  \
         p99 {:.2} ms  max {:.2} ms",
        open.offered_rps,
        open.achieved_rps,
        open.p50_us as f64 / 1e3,
        open.p95_us as f64 / 1e3,
        open.p99_us as f64 / 1e3,
        open.max_us as f64 / 1e3,
    );

    let json = format!(
        "{{\n  \"experiment\": \"serve_throughput\",\n  \"clients\": {CLIENTS},\n  \"queries_per_client\": {QUERIES_PER_CLIENT},\n  \"per_request\": {{\"secs\": {:.4}, \"rps\": {per_req_rps:.1}, \"batches\": {}, \"mean_batch\": {:.3}}},\n  \"coalesced\": {{\"secs\": {:.4}, \"rps\": {coal_rps:.1}, \"batches\": {}, \"mean_batch\": {:.3}, \"max_batch\": {}, \"p99_us\": {}}},\n  \"speedup\": {speedup:.3},\n  \"warm_cache\": {{\"mode\": \"open-loop pipelined\", \"requests\": {warm_total}, \"secs\": {:.4}, \"rps\": {warm_rps:.1}, \"hit_rate\": {hit_rate:.4}}},\n  \"open_loop\": {{\"mode\": \"poisson, latency from scheduled arrival\", \"requests\": {open_total}, \"offered_rps\": {:.1}, \"achieved_rps\": {:.1}, \"failed_forever\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}}},\n  \"obs_overhead\": {{\"includes\": \"tracer+timelines+exemplars\", \"untraced_secs\": {plain_med:.4}, \"traced_secs\": {traced_med:.4}, \"overhead_pct\": {overhead_pct:.3}}}\n}}\n",
        per_req_elapsed.as_secs_f64(),
        per_req.batches,
        per_req.mean_batch,
        coal_elapsed.as_secs_f64(),
        coal.batches,
        coal.mean_batch,
        coal.max_batch,
        coal.p99_us,
        warm_elapsed.as_secs_f64(),
        open.offered_rps,
        open.achieved_rps,
        open.failed_forever,
        open.p50_us,
        open.p95_us,
        open.p99_us,
        open.max_us,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("wrote {path}");
}
