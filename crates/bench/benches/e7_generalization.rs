//! **E7 — §2 generalization claim**: "Considering that MSCN was trained
//! with a uniform distribution between =, <, and > predicates, it performs
//! reasonably well [on the equality-heavy JOB-light]. This experiment shows
//! that MSCN can generalize to workloads with distributions different from
//! the training data."
//!
//! Two axes of distribution shift are measured:
//!
//! 1. *predicate-type shift* — evaluate on (a) a held-out workload drawn
//!    from the training distribution (uniform ops) and (b) JOB-light
//!    (equality-heavy, range only on production_year);
//! 2. *join-count shift* — train with ≤ 2 joins only (as MSCN did) and
//!    evaluate on JOB-light's 3- and 4-join queries.
//!
//! Run: `cargo bench -p ds-bench --bench e7_generalization`

use ds_bench::{
    banner, bench_imdb, qerrors_against_truth, standard_imdb_sketch, standard_sketch_builder,
    BENCH_SEED,
};
use ds_core::metrics::QErrorSummary;
use ds_est::oracle::TrueCardinalityOracle;
use ds_est::CardinalityEstimator;
use ds_query::workloads::imdb_predicate_columns;
use ds_query::workloads::job_light::job_light_workload;
use ds_query::{GeneratorConfig, QueryGenerator};

fn main() {
    banner(
        "E7",
        "§2 (generalization across workload distributions)",
        "train on uniform {=,<,>}; evaluate in- and out-of-distribution",
    );
    let db = bench_imdb();
    let oracle = TrueCardinalityOracle::new(&db);
    let sketch = standard_imdb_sketch(&db);

    // --- [1] predicate-type shift ----------------------------------------
    // Held-out queries from the training distribution (different seed).
    let mut cfg = GeneratorConfig::new(imdb_predicate_columns(&db), BENCH_SEED ^ 0x717);
    cfg.max_tables = 5;
    cfg.max_predicates = 4;
    let held_out = QueryGenerator::new(&db, cfg).generate_batch(500);
    let job_light = job_light_workload(&db, BENCH_SEED ^ 4);

    // Make the distribution shift visible (the §2 argument).
    use ds_query::workloads::stats::WorkloadProfile;
    let p_train = WorkloadProfile::of(&held_out);
    let p_jl = WorkloadProfile::of(&job_light);
    println!(
        "\ntraining-like distribution: eq fraction {:.0}%, mean joins {:.2}",
        p_train.op_fraction(ds_storage::predicate::CmpOp::Eq) * 100.0,
        p_train.mean_joins()
    );
    println!(
        "JOB-light distribution:     eq fraction {:.0}%, mean joins {:.2}",
        p_jl.op_fraction(ds_storage::predicate::CmpOp::Eq) * 100.0,
        p_jl.mean_joins()
    );

    println!("\n[1] same model, two evaluation distributions:");
    println!("{}", QErrorSummary::table_header());
    let truths_ho: Vec<f64> = held_out.iter().map(|q| oracle.estimate(q)).collect();
    let s_ho = QErrorSummary::from_qerrors(&qerrors_against_truth(&sketch, &truths_ho, &held_out));
    println!("{}", s_ho.table_row("in-dist."));
    let truths_jl: Vec<f64> = job_light.iter().map(|q| oracle.estimate(q)).collect();
    let s_jl = QErrorSummary::from_qerrors(&qerrors_against_truth(&sketch, &truths_jl, &job_light));
    println!("{}", s_jl.table_row("JOB-light"));
    println!(
        "  median shift {:.2}× → {}",
        s_jl.median / s_ho.median,
        if s_jl.median < s_ho.median * 4.0 {
            "generalizes across the predicate-type shift, as claimed"
        } else {
            "LARGE degradation under distribution shift"
        }
    );

    // --- [2] join-count shift: train ≤2 joins, evaluate 3-4 joins ---------
    println!("\n[2] join-count extrapolation (train ≤ 2 joins, like MSCN):");
    let narrow = standard_sketch_builder(&db, imdb_predicate_columns(&db))
        .max_tables(3)
        .seed(BENCH_SEED ^ 0x727)
        .build()
        .expect("pipeline");

    let small: Vec<_> = job_light
        .iter()
        .filter(|q| q.num_joins() <= 2)
        .cloned()
        .collect();
    let big: Vec<_> = job_light
        .iter()
        .filter(|q| q.num_joins() >= 3)
        .cloned()
        .collect();

    println!("{}", QErrorSummary::table_header());
    for (label, subset) in [("≤2 joins (seen)", &small), ("3-4 joins (unseen)", &big)] {
        let truths: Vec<f64> = subset.iter().map(|q| oracle.estimate(q)).collect();
        let s = QErrorSummary::from_qerrors(&qerrors_against_truth(&narrow, &truths, subset));
        println!("{}", s.table_row(label));
    }
    println!("  (the standard sketch trains with up to 4 joins and avoids this extrapolation)");

    let _ = sketch.name();
}
