//! Dynamic-programming join enumeration over connected subsets.
//!
//! Classic bitmask DP (in the spirit of DPccp): for every *connected*
//! subset `S` of the query's tables, the cheapest plan is the best split
//! `S = S₁ ∪ S₂` into disjoint connected parts with at least one join edge
//! between them. The objective is `C_out`: the sum of estimated
//! cardinalities of all intermediate results — the cost model of "How Good
//! Are Query Optimizers, Really?" (Leis et al., PVLDB 2015), which the
//! paper builds on.
//!
//! Subset cardinalities come from any [`CardinalityEstimator`] applied to
//! the induced sub-query (tables of `S`, the join edges within `S`, and
//! the base-table predicates on `S`), memoized per subset.

use std::collections::HashMap;

use ds_est::CardinalityEstimator;
use ds_query::query::Query;
use ds_storage::catalog::TableId;
use ds_storage::exec::JoinEdge;

use crate::plan::JoinPlan;

/// A join-order optimizer for one query, parameterized by an estimator.
pub struct Optimizer<'a> {
    estimator: &'a dyn CardinalityEstimator,
}

/// The result of an optimization run.
#[derive(Debug, Clone)]
pub struct OptimizedPlan {
    /// The chosen plan.
    pub plan: JoinPlan,
    /// Its estimated `C_out` cost (sum of intermediate cardinalities).
    pub estimated_cost: f64,
}

impl<'a> Optimizer<'a> {
    /// Creates an optimizer using `estimator` for subset cardinalities.
    pub fn new(estimator: &'a dyn CardinalityEstimator) -> Self {
        Self { estimator }
    }

    /// Finds the `C_out`-cheapest bushy plan for `query`.
    ///
    /// # Panics
    /// Panics if the query has no tables, more than 30 tables, or a
    /// disconnected join graph.
    pub fn optimize(&self, query: &Query) -> OptimizedPlan {
        let n = query.tables.len();
        assert!(n >= 1, "query has no tables");
        assert!(n <= 30, "bitmask DP supports at most 30 tables");
        if n == 1 {
            return OptimizedPlan {
                plan: JoinPlan::Leaf(query.tables[0]),
                estimated_cost: 0.0,
            };
        }

        // Local index ↔ TableId and edge masks.
        let index: HashMap<TableId, usize> = query
            .tables
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i))
            .collect();
        let edges: Vec<(u32, u32)> = query
            .joins
            .iter()
            .map(|e| {
                let (a, b) = e.tables();
                (1u32 << index[&a], 1u32 << index[&b])
            })
            .collect();
        let full: u32 = (1u32 << n) - 1;

        let connects = |s1: u32, s2: u32| {
            edges
                .iter()
                .any(|&(a, b)| (a & s1 != 0 && b & s2 != 0) || (a & s2 != 0 && b & s1 != 0))
        };
        let connected = |s: u32| {
            let start = s & s.wrapping_neg(); // lowest set bit
            let mut reach = start;
            loop {
                let mut grown = reach;
                for &(a, b) in &edges {
                    if a & reach != 0 && b & s != 0 {
                        grown |= b;
                    }
                    if b & reach != 0 && a & s != 0 {
                        grown |= a;
                    }
                }
                if grown == reach {
                    break;
                }
                reach = grown;
            }
            reach == s
        };
        assert!(connected(full), "query join graph is disconnected");

        // Memoized subset cardinalities.
        let mut card_memo: HashMap<u32, f64> = HashMap::new();
        let card = |mask: u32, memo: &mut HashMap<u32, f64>| -> f64 {
            if let Some(&c) = memo.get(&mask) {
                return c;
            }
            let sub = induced_subquery(query, mask, &index);
            let c = self.estimator.estimate(&sub).max(1.0);
            memo.insert(mask, c);
            c
        };

        // DP over subsets in increasing popcount order.
        // best[mask] = (cost of sub-joins below mask's root, plan)
        let mut best: HashMap<u32, (f64, JoinPlan)> = HashMap::new();
        for i in 0..n {
            best.insert(1 << i, (0.0, JoinPlan::Leaf(query.tables[i])));
        }
        let mut masks: Vec<u32> = (1..=full).filter(|m| m.count_ones() >= 2).collect();
        masks.sort_by_key(|m| m.count_ones());
        for &mask in &masks {
            if !connected(mask) {
                continue;
            }
            let mut best_here: Option<(f64, JoinPlan)> = None;
            // Enumerate proper sub-splits (s1, complement) once per pair.
            let mut s1 = (mask - 1) & mask;
            while s1 != 0 {
                let s2 = mask & !s1;
                if s1 < s2 {
                    // visit each unordered pair once
                    if let (Some((c1, p1)), Some((c2, p2))) = (best.get(&s1), best.get(&s2)) {
                        if connects(s1, s2) {
                            // Children's intermediate results count once each.
                            let sub_cost = c1
                                + c2
                                + if s1.count_ones() > 1 {
                                    card(s1, &mut card_memo)
                                } else {
                                    0.0
                                }
                                + if s2.count_ones() > 1 {
                                    card(s2, &mut card_memo)
                                } else {
                                    0.0
                                };
                            if best_here.as_ref().is_none_or(|(c, _)| sub_cost < *c) {
                                best_here = Some((
                                    sub_cost,
                                    JoinPlan::Join(Box::new(p1.clone()), Box::new(p2.clone())),
                                ));
                            }
                        }
                    }
                }
                s1 = (s1 - 1) & mask;
            }
            if let Some(b) = best_here {
                best.insert(mask, b);
            }
        }

        let (sub_cost, plan) = best.remove(&full).expect("connected query has a plan");
        // The root's own output counts toward C_out as well.
        let total = sub_cost + card(full, &mut card_memo);
        OptimizedPlan {
            plan,
            estimated_cost: total,
        }
    }

    /// `C_out` of an *arbitrary* plan under this optimizer's estimator:
    /// the sum of every intermediate (including the final) result's
    /// estimated cardinality.
    pub fn cost_of(&self, query: &Query, plan: &JoinPlan) -> f64 {
        let index: HashMap<TableId, usize> = query
            .tables
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i))
            .collect();
        let mut total = 0.0;
        plan.for_each_intermediate(&mut |tables| {
            let mask = tables.iter().fold(0u32, |m, t| m | (1 << index[t]));
            let sub = induced_subquery(query, mask, &index);
            total += self.estimator.estimate(&sub).max(1.0);
        });
        total
    }
}

/// The sub-query induced by a subset mask: its tables, the join edges with
/// both ends inside, and the predicates on those tables.
fn induced_subquery(query: &Query, mask: u32, index: &HashMap<TableId, usize>) -> Query {
    let tables: Vec<TableId> = query
        .tables
        .iter()
        .copied()
        .filter(|t| mask & (1 << index[t]) != 0)
        .collect();
    let joins: Vec<JoinEdge> = query
        .joins
        .iter()
        .copied()
        .filter(|e| {
            let (a, b) = e.tables();
            mask & (1 << index[&a]) != 0 && mask & (1 << index[&b]) != 0
        })
        .collect();
    let predicates = query
        .predicates
        .iter()
        .filter(|(t, _)| mask & (1 << index[t]) != 0)
        .cloned()
        .collect();
    Query {
        tables,
        joins,
        predicates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_est::oracle::TrueCardinalityOracle;
    use ds_query::parser::parse_query;
    use ds_storage::gen::{imdb_database, ImdbConfig};

    #[test]
    fn single_and_two_table_plans() {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let oracle = TrueCardinalityOracle::new(&db);
        let opt = Optimizer::new(&oracle);

        let q1 = parse_query(&db, "SELECT COUNT(*) FROM title WHERE title.kind_id = 1").unwrap();
        let p1 = opt.optimize(&q1);
        assert_eq!(p1.plan, JoinPlan::Leaf(db.table_id("title").unwrap()));
        assert_eq!(p1.estimated_cost, 0.0);

        let q2 = parse_query(
            &db,
            "SELECT COUNT(*) FROM title, movie_keyword \
             WHERE movie_keyword.movie_id = title.id",
        )
        .unwrap();
        let p2 = opt.optimize(&q2);
        assert_eq!(p2.plan.num_joins(), 1);
        // Cost = the single join's output cardinality.
        assert_eq!(p2.estimated_cost, oracle.estimate(&q2));
    }

    #[test]
    fn optimal_plan_joins_the_selective_side_first() {
        // Star query where one satellite is drastically filtered: the
        // optimal C_out plan joins that satellite before the wide one.
        let db = imdb_database(&ImdbConfig::tiny(2));
        let oracle = TrueCardinalityOracle::new(&db);
        let opt = Optimizer::new(&oracle);
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM title, movie_keyword, cast_info \
             WHERE movie_keyword.movie_id = title.id AND cast_info.movie_id = title.id \
             AND movie_keyword.keyword_id = 1",
        )
        .unwrap();
        let result = opt.optimize(&q);
        // Whatever the shape, the chosen plan's true cost must equal the
        // minimum over all bushy plans, which we verify by brute force.
        let best_by_hand = brute_force_best(&opt, &q);
        assert!(
            (result.estimated_cost - best_by_hand).abs() < 1e-6,
            "dp={} brute={best_by_hand}",
            result.estimated_cost
        );
    }

    /// Brute-force over all bushy plans of a ≤4-table query.
    fn brute_force_best(opt: &Optimizer<'_>, q: &Query) -> f64 {
        fn plans(tables: &[TableId]) -> Vec<JoinPlan> {
            if tables.len() == 1 {
                return vec![JoinPlan::Leaf(tables[0])];
            }
            let mut out = Vec::new();
            // All ways to split into non-empty subsets (ordered halves
            // deduplicated by the s1 < s2 convention being ignored —
            // fine for brute force).
            let n = tables.len();
            for mask in 1..(1u32 << n) - 1 {
                let (mut left, mut right) = (Vec::new(), Vec::new());
                for (i, &t) in tables.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        left.push(t);
                    } else {
                        right.push(t);
                    }
                }
                for l in plans(&left) {
                    for r in plans(&right) {
                        out.push(JoinPlan::Join(Box::new(l.clone()), Box::new(r)));
                    }
                }
            }
            out
        }
        plans(&q.tables)
            .into_iter()
            // Only plans whose every intermediate is connected are valid
            // (others imply cross products the estimators cannot see);
            // cost_of would still work, but the DP never considers them.
            .filter(|p| {
                let mut ok = true;
                p.for_each_intermediate(&mut |tables| {
                    let sub = Query {
                        tables: tables.to_vec(),
                        joins: q
                            .joins
                            .iter()
                            .copied()
                            .filter(|e| {
                                let (a, b) = e.tables();
                                tables.contains(&a) && tables.contains(&b)
                            })
                            .collect(),
                        predicates: vec![],
                    };
                    ok &= sub.to_exec().is_connected();
                });
                ok
            })
            .map(|p| opt.cost_of(q, &p))
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn dp_matches_brute_force_on_four_tables() {
        let db = imdb_database(&ImdbConfig::tiny(3));
        let oracle = TrueCardinalityOracle::new(&db);
        let opt = Optimizer::new(&oracle);
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM title, movie_keyword, cast_info, movie_info \
             WHERE movie_keyword.movie_id = title.id AND cast_info.movie_id = title.id \
             AND movie_info.movie_id = title.id \
             AND movie_info.info_type_id = 5 AND title.production_year > 2000",
        )
        .unwrap();
        let dp = opt.optimize(&q);
        let brute = brute_force_best(&opt, &q);
        assert!(
            (dp.estimated_cost - brute).abs() < 1e-6,
            "dp={} brute={brute}",
            dp.estimated_cost
        );
        assert_eq!(dp.plan.num_joins(), 3);
    }

    #[test]
    fn cost_of_agrees_with_optimize_for_the_chosen_plan() {
        let db = imdb_database(&ImdbConfig::tiny(4));
        let oracle = TrueCardinalityOracle::new(&db);
        let opt = Optimizer::new(&oracle);
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM title, movie_keyword, movie_companies \
             WHERE movie_keyword.movie_id = title.id AND movie_companies.movie_id = title.id \
             AND movie_companies.company_type_id = 2",
        )
        .unwrap();
        let result = opt.optimize(&q);
        let recomputed = opt.cost_of(&q, &result.plan);
        assert!((result.estimated_cost - recomputed).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_query_rejected() {
        let db = imdb_database(&ImdbConfig::tiny(5));
        let oracle = TrueCardinalityOracle::new(&db);
        let opt = Optimizer::new(&oracle);
        let q = Query {
            tables: vec![TableId(1), TableId(2)],
            joins: vec![],
            predicates: vec![],
        };
        opt.optimize(&q);
    }
}
