//! # ds-plan
//!
//! Join-order optimization substrate, built to answer the question the
//! paper raises and defers: *"Estimates of intermediate query result sizes
//! are the core ingredient to cost-based query optimizers … the estimates
//! produced by Deep Sketches can directly be leveraged by existing,
//! sophisticated join enumeration algorithms and cost models."*
//!
//! This crate provides exactly those two ingredients —
//!
//! * [`plan::JoinPlan`] — binary join trees over a query's tables;
//! * [`dp::Optimizer`] — dynamic programming over *connected* table
//!   subsets (bitmask DP, csg-cmp style) minimizing the classic `C_out`
//!   cost: the sum of intermediate result cardinalities;
//!
//! — parameterized by any [`ds_est::CardinalityEstimator`], plus
//! [`quality`] to quantify the *regret* of optimizing with estimated
//! instead of true cardinalities. Experiment E10 uses this to show that
//! the Deep Sketch's better estimates translate into better join orders.

pub mod dp;
pub mod plan;
pub mod quality;

pub use dp::Optimizer;
pub use plan::JoinPlan;
pub use quality::{plan_regret, workload_regret, RegretReport};
