//! Plan-quality measurement: how much does optimizing with *estimated*
//! cardinalities cost, compared to optimizing with the truth?
//!
//! For a query `q` and estimator `E`:
//!
//! 1. pick plan `P_E` by running the DP with `E`'s estimates;
//! 2. pick the reference plan `P*` with *true* cardinalities;
//! 3. regret(E, q) = `C_out_true(P_E) / C_out_true(P*) ≥ 1`.
//!
//! A regret of 1 means the estimator's plan is as good as the true-optimal
//! plan, even if its estimates were off; large regret means the estimation
//! errors changed the join order for the worse.

use ds_est::oracle::TrueCardinalityOracle;
use ds_est::CardinalityEstimator;
use ds_query::query::Query;

use crate::dp::Optimizer;

/// The regret of one estimator on one query.
pub fn plan_regret(
    query: &Query,
    estimator: &dyn CardinalityEstimator,
    oracle: &TrueCardinalityOracle<'_>,
) -> f64 {
    let est_opt = Optimizer::new(estimator);
    let true_opt = Optimizer::new(oracle);
    let chosen = est_opt.optimize(query).plan;
    let reference = true_opt.optimize(query);
    let chosen_true_cost = true_opt.cost_of(query, &chosen);
    (chosen_true_cost / reference.estimated_cost.max(1.0)).max(1.0)
}

/// Aggregate regret of an estimator over a workload.
#[derive(Debug, Clone)]
pub struct RegretReport {
    /// Per-query regrets (≥ 1), in workload order. Single-table and
    /// 1-join queries are skipped (their plan space is trivial).
    pub regrets: Vec<f64>,
    /// Fraction of multi-join queries where the estimator picked a plan
    /// with the true-optimal cost.
    pub optimal_fraction: f64,
    /// Mean regret.
    pub mean: f64,
    /// Maximum regret.
    pub max: f64,
}

/// Measures regret over all queries with ≥ 2 joins.
pub fn workload_regret(
    workload: &[Query],
    estimator: &dyn CardinalityEstimator,
    oracle: &TrueCardinalityOracle<'_>,
) -> RegretReport {
    let mut regrets = Vec::new();
    for q in workload.iter().filter(|q| q.num_joins() >= 2) {
        regrets.push(plan_regret(q, estimator, oracle));
    }
    assert!(!regrets.is_empty(), "workload has no multi-join queries");
    let optimal = regrets.iter().filter(|&&r| r < 1.0001).count();
    RegretReport {
        optimal_fraction: optimal as f64 / regrets.len() as f64,
        mean: regrets.iter().sum::<f64>() / regrets.len() as f64,
        max: regrets.iter().cloned().fold(1.0, f64::max),
        regrets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_query::workloads::job_light::job_light_workload;
    use ds_storage::gen::{imdb_database, ImdbConfig};

    #[test]
    fn oracle_has_zero_regret() {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let oracle = TrueCardinalityOracle::new(&db);
        let wl = job_light_workload(&db, 2);
        let report = workload_regret(&wl, &oracle, &oracle);
        assert!(report.regrets.iter().all(|&r| (r - 1.0).abs() < 1e-9));
        assert_eq!(report.optimal_fraction, 1.0);
        assert_eq!(report.max, 1.0);
    }

    #[test]
    fn bad_estimates_cause_regret() {
        // An adversarial estimator that inverts cardinalities: big results
        // look small and vice versa. It must do no better than the oracle
        // and, on a correlated workload, strictly worse somewhere.
        struct Inverse<'a>(&'a TrueCardinalityOracle<'a>);
        impl CardinalityEstimator for Inverse<'_> {
            fn name(&self) -> &str {
                "inverse"
            }
            fn estimate(&self, q: &Query) -> f64 {
                1e12 / self.0.estimate(q).max(1.0)
            }
        }
        let db = imdb_database(&ImdbConfig::tiny(2));
        let oracle = TrueCardinalityOracle::new(&db);
        let inv = Inverse(&oracle);
        let wl = job_light_workload(&db, 3);
        let report = workload_regret(&wl, &inv, &oracle);
        assert!(report.mean >= 1.0);
        assert!(
            report.max > 1.01,
            "inverted estimates should pick at least one bad plan: {report:?}"
        );
    }

    #[test]
    fn regret_is_at_least_one_for_any_estimator() {
        struct Constant;
        impl CardinalityEstimator for Constant {
            fn name(&self) -> &str {
                "const"
            }
            fn estimate(&self, _: &Query) -> f64 {
                42.0
            }
        }
        let db = imdb_database(&ImdbConfig::tiny(3));
        let oracle = TrueCardinalityOracle::new(&db);
        let wl = job_light_workload(&db, 4);
        let report = workload_regret(&wl, &Constant, &oracle);
        assert!(report.regrets.iter().all(|&r| r >= 1.0));
        assert!(report.optimal_fraction <= 1.0);
    }
}
