//! Binary join plans.

use ds_storage::catalog::{Database, TableId};

/// A binary join tree over a subset of a query's tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinPlan {
    /// A base-table scan.
    Leaf(TableId),
    /// A join of two sub-plans.
    Join(Box<JoinPlan>, Box<JoinPlan>),
}

impl JoinPlan {
    /// All tables in the plan, left-to-right.
    pub fn tables(&self) -> Vec<TableId> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables(&self, out: &mut Vec<TableId>) {
        match self {
            JoinPlan::Leaf(t) => out.push(*t),
            JoinPlan::Join(l, r) => {
                l.collect_tables(out);
                r.collect_tables(out);
            }
        }
    }

    /// Number of joins (internal nodes).
    pub fn num_joins(&self) -> usize {
        match self {
            JoinPlan::Leaf(_) => 0,
            JoinPlan::Join(l, r) => 1 + l.num_joins() + r.num_joins(),
        }
    }

    /// Visits every internal node's table set (the intermediate results),
    /// bottom-up.
    pub fn for_each_intermediate(&self, f: &mut impl FnMut(&[TableId])) {
        if let JoinPlan::Join(l, r) = self {
            l.for_each_intermediate(f);
            r.for_each_intermediate(f);
            let tables = self.tables();
            f(&tables);
        }
    }

    /// Renders like `((title ⋈ movie_keyword) ⋈ cast_info)`.
    pub fn display(&self, db: &Database) -> String {
        match self {
            JoinPlan::Leaf(t) => db.table(*t).name().to_string(),
            JoinPlan::Join(l, r) => {
                format!("({} ⋈ {})", l.display(db), r.display(db))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_storage::gen::{imdb_database, ImdbConfig};

    fn leaf(i: usize) -> JoinPlan {
        JoinPlan::Leaf(TableId(i))
    }

    fn join(l: JoinPlan, r: JoinPlan) -> JoinPlan {
        JoinPlan::Join(Box::new(l), Box::new(r))
    }

    #[test]
    fn tables_and_join_counts() {
        let p = join(join(leaf(0), leaf(5)), leaf(2));
        assert_eq!(p.tables(), vec![TableId(0), TableId(5), TableId(2)]);
        assert_eq!(p.num_joins(), 2);
        assert_eq!(leaf(1).num_joins(), 0);
    }

    #[test]
    fn intermediates_are_visited_bottom_up() {
        let p = join(join(leaf(0), leaf(1)), leaf(2));
        let mut seen = Vec::new();
        p.for_each_intermediate(&mut |tables| seen.push(tables.len()));
        assert_eq!(seen, vec![2, 3]); // inner join first, then the root
    }

    #[test]
    fn display_is_readable() {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let t = db.table_id("title").unwrap();
        let mk = db.table_id("movie_keyword").unwrap();
        let p = join(JoinPlan::Leaf(t), JoinPlan::Leaf(mk));
        assert_eq!(p.display(&db), "(title ⋈ movie_keyword)");
    }
}
