//! An ablation estimator that isolates the *independence* error from the
//! *statistics* error.
//!
//! The PostgreSQL-style estimator errs for two composable reasons: its
//! per-column statistics are lossy (MCV truncation, histogram
//! interpolation, per-table attribute independence) and its join formula
//! assumes independence between predicates and join fanout. This estimator
//! removes the first error entirely — per-table selectivities are computed
//! *exactly* by scanning the base table — while keeping the distinct-count
//! join formula. Whatever error remains is purely the cross-join
//! independence assumption: the error class the paper's learned model is
//! designed to capture.

use ds_query::query::Query;
use ds_storage::catalog::Database;

use crate::{check_tables, CardinalityEstimator, EstimateError};

/// Exact per-table selectivities + the independence join formula.
///
/// Not a practical estimator (it scans base tables per query); it exists
/// to decompose estimation error in experiments.
pub struct IndependenceOracleEstimator<'a> {
    db: &'a Database,
    /// Distinct counts of every column (join-formula input), precomputed.
    n_distinct: Vec<Vec<f64>>,
    name: String,
}

impl<'a> IndependenceOracleEstimator<'a> {
    /// Creates the estimator (precomputes distinct counts).
    pub fn new(db: &'a Database) -> Self {
        let n_distinct = db
            .tables()
            .iter()
            .map(|t| {
                t.columns()
                    .iter()
                    .map(|c| c.n_distinct().max(1) as f64)
                    .collect()
            })
            .collect();
        Self {
            db,
            n_distinct,
            name: "Independence".to_string(),
        }
    }
}

impl CardinalityEstimator for IndependenceOracleEstimator<'_> {
    fn name(&self) -> &str {
        &self.name
    }

    /// `∏ exact_count(Tᵢ, predsᵢ) × ∏_joins 1/max(nd(l), nd(r))`, ≥ 1.
    fn estimate(&self, query: &Query) -> f64 {
        let mut card = 1.0;
        for &t in &query.tables {
            card *= self.db.table(t).filter_count(&query.preds_of(t)) as f64;
        }
        for join in &query.joins {
            let nd_l = self.n_distinct[join.left.table.0][join.left.col];
            let nd_r = self.n_distinct[join.right.table.0][join.right.col];
            card /= nd_l.max(nd_r);
        }
        card.max(1.0)
    }

    /// As `estimate`, but rejects queries referencing unknown tables.
    fn try_estimate(&self, query: &Query) -> Result<f64, EstimateError> {
        check_tables(query, self.db.num_tables())?;
        Ok(self.estimate(query))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TrueCardinalityOracle;
    use crate::postgres::PostgresEstimator;
    use ds_query::parser::parse_query;
    use ds_query::workloads::job_light::job_light_workload;
    use ds_storage::gen::{imdb_database, ImdbConfig};

    fn qerr(e: f64, t: f64) -> f64 {
        let (e, t) = (e.max(1.0), t.max(1.0));
        (e / t).max(t / e)
    }

    #[test]
    fn exact_on_single_tables() {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let est = IndependenceOracleEstimator::new(&db);
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM title WHERE title.production_year > 2000 AND title.kind_id = 1",
        )
        .unwrap();
        let truth = db
            .table(db.table_id("title").unwrap())
            .filter_count(&q.preds_of(db.table_id("title").unwrap()));
        assert_eq!(est.estimate(&q), (truth as f64).max(1.0));
    }

    #[test]
    fn at_least_as_good_as_postgres_on_base_tables() {
        // With exact selectivities, the remaining error on single-table
        // queries is zero — strictly dominating PG there.
        let db = imdb_database(&ImdbConfig::tiny(2));
        let ind = IndependenceOracleEstimator::new(&db);
        let oracle = TrueCardinalityOracle::new(&db);
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM movie_keyword WHERE movie_keyword.keyword_id = 3",
        )
        .unwrap();
        assert_eq!(qerr(ind.estimate(&q), oracle.estimate(&q)), 1.0);
    }

    #[test]
    fn join_error_remains_on_correlated_data() {
        // The point of the ablation: exact per-table stats do NOT fix the
        // cross-join correlation error.
        let db = imdb_database(&ImdbConfig::tiny(3));
        let ind = IndependenceOracleEstimator::new(&db);
        let pg = PostgresEstimator::build(&db);
        let oracle = TrueCardinalityOracle::new(&db);
        let wl = job_light_workload(&db, 5);
        let mut ind_worst = 1.0f64;
        let mut ind_beats_pg = 0usize;
        let mut total = 0usize;
        for q in &wl {
            let t = oracle.estimate(q);
            let qi = qerr(ind.estimate(q), t);
            let qp = qerr(pg.estimate(q), t);
            ind_worst = ind_worst.max(qi);
            if qi <= qp + 1e-9 {
                ind_beats_pg += 1;
            }
            total += 1;
        }
        assert!(
            ind_worst > 2.0,
            "independence error should persist: worst={ind_worst}"
        );
        // Exact stats should win against lossy stats on a majority of
        // queries (both share the same join formula).
        assert!(
            ind_beats_pg * 2 >= total,
            "exact stats beat PG on only {ind_beats_pg}/{total}"
        );
    }
}
