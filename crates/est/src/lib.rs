//! # ds-est
//!
//! Traditional cardinality estimators — the baselines the paper compares
//! Deep Sketches against (Table 1):
//!
//! * [`postgres::PostgresEstimator`] — PostgreSQL-style statistics: MCV
//!   lists, equi-depth histograms, attribute-independence multiplication,
//!   and the distinct-count join formula.
//! * [`sampling::SamplingEstimator`] — HyPer-style estimation from
//!   materialized base-table samples, with an "educated guess" fallback in
//!   0-tuple situations, combined across joins under independence.
//! * [`oracle::TrueCardinalityOracle`] — exact results via the
//!   [`ds_storage::exec::CountExecutor`], with memoization; used both as
//!   ground truth and as the training-label source.
//!
//! All estimators implement [`CardinalityEstimator`].

pub mod independence;
pub mod joinsample;
pub mod oracle;
pub mod postgres;
pub mod sampling;
pub mod stats;

use ds_query::query::Query;

/// Common interface of everything that can guess a `COUNT(*)` result.
pub trait CardinalityEstimator {
    /// Short display name used in experiment tables (e.g. `"PostgreSQL"`).
    fn name(&self) -> &str;

    /// Estimated result cardinality of `query` (≥ 1; estimators clamp, as
    /// row-count estimates below one row are never useful to an optimizer).
    fn estimate(&self, query: &Query) -> f64;
}
