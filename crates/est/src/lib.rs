//! # ds-est
//!
//! Traditional cardinality estimators — the baselines the paper compares
//! Deep Sketches against (Table 1):
//!
//! * [`postgres::PostgresEstimator`] — PostgreSQL-style statistics: MCV
//!   lists, equi-depth histograms, attribute-independence multiplication,
//!   and the distinct-count join formula.
//! * [`sampling::SamplingEstimator`] — HyPer-style estimation from
//!   materialized base-table samples, with an "educated guess" fallback in
//!   0-tuple situations, combined across joins under independence.
//! * [`oracle::TrueCardinalityOracle`] — exact results via the
//!   [`ds_storage::exec::CountExecutor`], with memoization; used both as
//!   ground truth and as the training-label source.
//!
//! All estimators implement [`CardinalityEstimator`] — the single interface
//! through which benches, examples, and the `ds-serve` front end consume
//! every estimator in the workspace (the five baselines here plus
//! `ds_core`'s `DeepSketch`, `SketchFleet`, and `SketchStore` handles).

pub mod independence;
pub mod joinsample;
pub mod oracle;
pub mod postgres;
pub mod sampling;
pub mod stats;

use ds_query::query::Query;

/// Why an estimator could not produce a number for a query.
///
/// Estimation is best-effort by design ([`CardinalityEstimator::estimate`]
/// always answers), but a serving layer needs to distinguish "this query is
/// outside my vocabulary" from "here is a guess". Every variant corresponds
/// to a malformed or unroutable *request*, never to an internal invariant —
/// nothing on the serving route panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimateError {
    /// The query references a table id outside the estimator's vocabulary
    /// (e.g. a sketch deserialized from another database, or a fleet member
    /// asked about a table it was not trained on).
    UnknownTable {
        /// The offending table id.
        table: usize,
        /// Number of tables the estimator knows about.
        known_tables: usize,
    },
    /// A predicate or join references a column index outside the table's
    /// schema as the estimator knows it.
    UnknownColumn {
        /// Table id of the offending reference.
        table: usize,
        /// Column index of the offending reference.
        col: usize,
    },
    /// No route to an answer: a fleet has no member covering the query's
    /// table set.
    Unroutable {
        /// The query's table ids, for the error message.
        tables: Vec<usize>,
    },
    /// A serialized model or sketch failed to decode.
    Decode(String),
    /// A named estimator exists but cannot answer right now (still
    /// training, failed to train, or unknown to the registry).
    Unavailable(String),
    /// Query execution failed (oracle-style estimators that run the query).
    Execution(String),
}

impl std::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimateError::UnknownTable {
                table,
                known_tables,
            } => write!(
                f,
                "unknown table id {table} (estimator knows {known_tables} tables)"
            ),
            EstimateError::UnknownColumn { table, col } => {
                write!(f, "unknown column {col} on table {table}")
            }
            EstimateError::Unroutable { tables } => {
                write!(f, "no estimator covers table set {tables:?}")
            }
            EstimateError::Decode(msg) => write!(f, "decode failure: {msg}"),
            EstimateError::Unavailable(msg) => write!(f, "estimator unavailable: {msg}"),
            EstimateError::Execution(msg) => write!(f, "execution failure: {msg}"),
        }
    }
}

impl std::error::Error for EstimateError {}

/// Common interface of everything that can guess a `COUNT(*)` result.
///
/// The trait has three entry points, layered so that implementors override
/// only what they can do better:
///
/// * [`estimate`](CardinalityEstimator::estimate) — the required,
///   infallible path: always returns a number (≥ 1), degrading gracefully
///   (e.g. a fleet answers 1.0 for uncovered queries).
/// * [`try_estimate`](CardinalityEstimator::try_estimate) — the fallible
///   path for serving: reports [`EstimateError`] instead of guessing when
///   the query is outside the estimator's vocabulary. Defaults to
///   `Ok(self.estimate(query))`.
/// * [`estimate_batch`](CardinalityEstimator::estimate_batch) /
///   [`try_estimate_batch`](CardinalityEstimator::try_estimate_batch) —
///   batched entry points. Default to a loop; estimators with a real batch
///   fast path (the Deep Sketch's chunked forward pass) override them, and
///   batching must never change results: `estimate_batch(qs)[i]` is
///   bit-identical to `estimate(&qs[i])`.
pub trait CardinalityEstimator {
    /// Short display name used in experiment tables (e.g. `"PostgreSQL"`).
    fn name(&self) -> &str;

    /// Estimated result cardinality of `query` (≥ 1; estimators clamp, as
    /// row-count estimates below one row are never useful to an optimizer).
    fn estimate(&self, query: &Query) -> f64;

    /// Fallible estimation for serving paths: returns a typed error instead
    /// of a degraded guess when the query cannot be answered.
    fn try_estimate(&self, query: &Query) -> Result<f64, EstimateError> {
        Ok(self.estimate(query))
    }

    /// Estimates a batch of queries. Must equal
    /// `queries.iter().map(|q| self.estimate(q)).collect()` bit-for-bit;
    /// overrides exist purely for speed.
    fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        queries.iter().map(|q| self.estimate(q)).collect()
    }

    /// Fallible batch estimation: per-query results, so one bad query in a
    /// coalesced micro-batch cannot fail its neighbours.
    fn try_estimate_batch(&self, queries: &[Query]) -> Vec<Result<f64, EstimateError>> {
        queries.iter().map(|q| self.try_estimate(q)).collect()
    }
}

impl<T: CardinalityEstimator + ?Sized> CardinalityEstimator for &T {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn estimate(&self, query: &Query) -> f64 {
        (**self).estimate(query)
    }

    fn try_estimate(&self, query: &Query) -> Result<f64, EstimateError> {
        (**self).try_estimate(query)
    }

    fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        (**self).estimate_batch(queries)
    }

    fn try_estimate_batch(&self, queries: &[Query]) -> Vec<Result<f64, EstimateError>> {
        (**self).try_estimate_batch(queries)
    }
}

/// Bounds-check helper shared by the baseline estimators: the first table
/// id in `query` not below `known_tables`, as an [`EstimateError`].
pub(crate) fn check_tables(query: &Query, known_tables: usize) -> Result<(), EstimateError> {
    for &t in &query.tables {
        if t.0 >= known_tables {
            return Err(EstimateError::UnknownTable {
                table: t.0,
                known_tables,
            });
        }
    }
    for j in &query.joins {
        for side in [j.left, j.right] {
            if side.table.0 >= known_tables {
                return Err(EstimateError::UnknownTable {
                    table: side.table.0,
                    known_tables,
                });
            }
        }
    }
    for (t, _) in &query.predicates {
        if t.0 >= known_tables {
            return Err(EstimateError::UnknownTable {
                table: t.0,
                known_tables,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod trait_tests {
    use super::*;
    use ds_query::parser::parse_query;
    use ds_storage::gen::{imdb_database, ImdbConfig};

    struct Fixed(f64);

    impl CardinalityEstimator for Fixed {
        fn name(&self) -> &str {
            "Fixed"
        }
        fn estimate(&self, _q: &Query) -> f64 {
            self.0
        }
    }

    #[test]
    fn default_batch_loops_over_estimate() {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let q = parse_query(&db, "SELECT COUNT(*) FROM title").unwrap();
        let est = Fixed(7.0);
        assert_eq!(est.estimate_batch(&[q.clone(), q.clone()]), vec![7.0, 7.0]);
        assert_eq!(est.try_estimate(&q), Ok(7.0));
        assert_eq!(est.try_estimate_batch(&[q]), vec![Ok(7.0)]);
    }

    #[test]
    fn trait_objects_and_references_both_work() {
        let db = imdb_database(&ImdbConfig::tiny(2));
        let q = parse_query(&db, "SELECT COUNT(*) FROM title").unwrap();
        let est = Fixed(3.0);
        let by_ref: &dyn CardinalityEstimator = &est;
        assert_eq!(by_ref.estimate(&q), 3.0);
        // &T forwards through the blanket impl (generic call sites can take
        // either an owned estimator or a reference).
        fn generic<E: CardinalityEstimator>(e: E, q: &Query) -> f64 {
            e.estimate(q)
        }
        assert_eq!(generic(&est, &q), 3.0);
    }

    #[test]
    fn errors_display_their_cause() {
        let e = EstimateError::UnknownTable {
            table: 9,
            known_tables: 6,
        };
        assert!(e.to_string().contains("unknown table id 9"));
        let e = EstimateError::Unroutable { tables: vec![1, 2] };
        assert!(e.to_string().contains("[1, 2]"));
        assert!(EstimateError::Decode("bad magic".into())
            .to_string()
            .contains("bad magic"));
        assert!(EstimateError::Unavailable("still training".into())
            .to_string()
            .contains("still training"));
        assert!(EstimateError::Execution("cycle".into())
            .to_string()
            .contains("cycle"));
    }
}
