//! The true-cardinality oracle: exact `COUNT(*)` via the storage engine's
//! executor, memoized. This plays HyPer's *execution* role — producing
//! training labels (Figure 1a step 3) and ground truth for every
//! experiment's overlay.

use parking_lot::RwLock;
use std::collections::HashMap;

use ds_query::query::Query;
use ds_storage::catalog::Database;
use ds_storage::exec::{count_batch, CountExecutor, ExecError};

use crate::{check_tables, CardinalityEstimator, EstimateError};

/// Exact cardinalities with memoization. `Sync`; share freely.
pub struct TrueCardinalityOracle<'a> {
    db: &'a Database,
    exec: CountExecutor,
    cache: RwLock<HashMap<Query, u64>>,
    name: String,
}

impl<'a> TrueCardinalityOracle<'a> {
    /// Creates an oracle over a database.
    pub fn new(db: &'a Database) -> Self {
        Self {
            db,
            exec: CountExecutor::new(),
            cache: RwLock::new(HashMap::new()),
            name: "True".to_string(),
        }
    }

    /// Exact cardinality of `query`.
    ///
    /// # Errors
    /// Propagates executor errors (malformed or cyclic queries).
    pub fn cardinality(&self, query: &Query) -> Result<u64, ExecError> {
        if let Some(&c) = self.cache.read().get(query) {
            return Ok(c);
        }
        let c = self.exec.count(self.db, &query.to_exec())?;
        self.cache.write().insert(query.clone(), c);
        Ok(c)
    }

    /// Labels a batch of queries, optionally in parallel (the demo executes
    /// training queries on "multiple HyPer instances").
    pub fn label_batch(&self, queries: &[Query], threads: usize) -> Result<Vec<u64>, ExecError> {
        let exec_queries: Vec<_> = queries.iter().map(Query::to_exec).collect();
        let labels = count_batch(self.db, &exec_queries, threads)?;
        let mut cache = self.cache.write();
        for (q, &c) in queries.iter().zip(&labels) {
            cache.insert(q.clone(), c);
        }
        Ok(labels)
    }

    /// Number of memoized results.
    pub fn cache_len(&self) -> usize {
        self.cache.read().len()
    }
}

impl CardinalityEstimator for TrueCardinalityOracle<'_> {
    fn name(&self) -> &str {
        &self.name
    }

    /// The exact cardinality (clamped ≥ 1 like all estimators); panics on
    /// malformed queries, which cannot come out of this crate's generators.
    /// Serving paths use [`CardinalityEstimator::try_estimate`] instead.
    fn estimate(&self, query: &Query) -> f64 {
        self.cardinality(query).expect("well-formed query") as f64
    }

    /// Exact cardinality with executor failures surfaced as typed errors.
    fn try_estimate(&self, query: &Query) -> Result<f64, EstimateError> {
        check_tables(query, self.db.num_tables())?;
        self.cardinality(query)
            .map(|c| c as f64)
            .map_err(|e| EstimateError::Execution(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_query::parser::parse_query;
    use ds_storage::gen::{imdb_database, ImdbConfig};

    #[test]
    fn oracle_matches_executor_and_caches() {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let oracle = TrueCardinalityOracle::new(&db);
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM title, movie_keyword \
             WHERE movie_keyword.movie_id = title.id AND title.production_year > 2000",
        )
        .unwrap();
        let direct = CountExecutor::new().count(&db, &q.to_exec()).unwrap();
        assert_eq!(oracle.cardinality(&q).unwrap(), direct);
        assert_eq!(oracle.cache_len(), 1);
        // Second call hits the cache.
        assert_eq!(oracle.cardinality(&q).unwrap(), direct);
        assert_eq!(oracle.cache_len(), 1);
    }

    #[test]
    fn label_batch_fills_cache() {
        let db = imdb_database(&ImdbConfig::tiny(2));
        let oracle = TrueCardinalityOracle::new(&db);
        let wl = ds_query::workloads::job_light::job_light_workload(&db, 1);
        let labels = oracle.label_batch(&wl[..10], 2).unwrap();
        assert_eq!(labels.len(), 10);
        assert!(oracle.cache_len() >= 9); // duplicates possible
        for (q, &l) in wl[..10].iter().zip(&labels) {
            assert_eq!(oracle.cardinality(q).unwrap(), l);
        }
    }

    #[test]
    fn estimate_is_truth() {
        let db = imdb_database(&ImdbConfig::tiny(3));
        let oracle = TrueCardinalityOracle::new(&db);
        let q = parse_query(&db, "SELECT COUNT(*) FROM title WHERE title.kind_id = 1").unwrap();
        assert_eq!(oracle.estimate(&q), oracle.cardinality(&q).unwrap() as f64);
        assert_eq!(oracle.name(), "True");
    }
}
