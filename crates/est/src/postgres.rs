//! PostgreSQL-style cardinality estimation (the `PostgreSQL` row of
//! Table 1): per-column statistics combined under attribute independence,
//! joins estimated with the distinct-count formula
//! `|R ⋈ S| = |R|·|S| / max(nd(R.a), nd(S.b))`.
//!
//! The implementation mirrors the selectivity logic of PostgreSQL 10's
//! `eqsel`/`scalarltsel`/`eqjoinsel` at the fidelity level relevant to the
//! paper: exact MCV matches, histogram interpolation, and — crucially — the
//! independence assumptions that break down on correlated data.

use std::collections::HashMap;

use ds_query::query::Query;
use ds_storage::catalog::Database;

use crate::stats::{ColumnStats, DEFAULT_STATS_TARGET};
use crate::{check_tables, CardinalityEstimator, EstimateError};

/// PostgreSQL-style estimator. Build once per database; estimation is pure.
#[derive(Debug)]
pub struct PostgresEstimator {
    /// Per (table, column) statistics for every column.
    stats: HashMap<(usize, usize), ColumnStats>,
    /// Table row counts.
    table_rows: Vec<f64>,
    name: String,
}

impl PostgresEstimator {
    /// Analyzes all columns of the database with the default statistics
    /// target (100 MCVs / 100 histogram buckets, like PostgreSQL).
    pub fn build(db: &Database) -> Self {
        Self::build_with_target(db, DEFAULT_STATS_TARGET)
    }

    /// Analyzes with a custom statistics target.
    pub fn build_with_target(db: &Database, stats_target: usize) -> Self {
        let mut stats = HashMap::new();
        for (ti, table) in db.tables().iter().enumerate() {
            for (ci, col) in table.columns().iter().enumerate() {
                stats.insert((ti, ci), ColumnStats::build(col, stats_target));
            }
        }
        Self {
            stats,
            table_rows: db.tables().iter().map(|t| t.num_rows() as f64).collect(),
            name: "PostgreSQL".to_string(),
        }
    }

    fn col_stats(&self, table: usize, col: usize) -> &ColumnStats {
        self.stats
            .get(&(table, col))
            .expect("estimator built over this database")
    }

    /// Combined selectivity of all predicates on one table under attribute
    /// independence, clamped to `[0, 1]`.
    fn table_selectivity(&self, query: &Query, table: usize) -> f64 {
        let mut sel = 1.0;
        for (t, p) in &query.predicates {
            if t.0 == table {
                sel *= self.col_stats(table, p.col).pred_selectivity(&p.test);
            }
        }
        sel.clamp(0.0, 1.0)
    }
}

impl CardinalityEstimator for PostgresEstimator {
    fn name(&self) -> &str {
        &self.name
    }

    /// `∏ |Tᵢ|·selᵢ × ∏_joins 1 / max(nd(left), nd(right))`, clamped ≥ 1.
    fn estimate(&self, query: &Query) -> f64 {
        let mut card = 1.0;
        for &t in &query.tables {
            card *= self.table_rows[t.0] * self.table_selectivity(query, t.0);
        }
        for join in &query.joins {
            let nd_l = self
                .col_stats(join.left.table.0, join.left.col)
                .n_distinct()
                .max(1) as f64;
            let nd_r = self
                .col_stats(join.right.table.0, join.right.col)
                .n_distinct()
                .max(1) as f64;
            card /= nd_l.max(nd_r);
        }
        card.max(1.0)
    }

    /// As [`PostgresEstimator::estimate`], but rejects queries referencing
    /// tables the statistics were not built over.
    fn try_estimate(&self, query: &Query) -> Result<f64, EstimateError> {
        check_tables(query, self.table_rows.len())?;
        // A table id can be in range while the column is not (statistics
        // built over a schema with fewer columns); reject those too rather
        // than panicking in `col_stats`.
        let mut cols = query.predicates.iter().map(|(t, p)| (t.0, p.col));
        let mut join_cols = query
            .joins
            .iter()
            .flat_map(|j| [j.left, j.right])
            .map(|c| (c.table.0, c.col));
        if let Some((t, _)) = cols
            .find(|k| !self.stats.contains_key(k))
            .or_else(|| join_cols.find(|k| !self.stats.contains_key(k)))
        {
            return Err(EstimateError::UnknownTable {
                table: t,
                known_tables: self.table_rows.len(),
            });
        }
        Ok(self.estimate(query))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_query::parser::parse_query;
    use ds_storage::exec::CountExecutor;
    use ds_storage::gen::{imdb_database, tpch_database, ImdbConfig, TpchConfig};

    #[test]
    fn single_table_equality_is_accurate_on_uniform_data() {
        let db = tpch_database(&TpchConfig::tiny(1));
        let est = PostgresEstimator::build(&db);
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM lineitem WHERE lineitem.l_quantity = 25",
        )
        .unwrap();
        let truth = CountExecutor::new().count(&db, &q.to_exec()).unwrap() as f64;
        let e = est.estimate(&q);
        // Uniform independent data: PG should be within ~3× here.
        let q_err = (e / truth.max(1.0)).max(truth.max(1.0) / e);
        assert!(q_err < 4.0, "estimate={e} truth={truth}");
    }

    #[test]
    fn range_predicate_on_uniform_data() {
        let db = tpch_database(&TpchConfig::tiny(2));
        let est = PostgresEstimator::build(&db);
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM lineitem WHERE lineitem.l_quantity > 40",
        )
        .unwrap();
        let truth = CountExecutor::new().count(&db, &q.to_exec()).unwrap() as f64;
        let e = est.estimate(&q);
        let q_err = (e / truth.max(1.0)).max(truth.max(1.0) / e);
        assert!(q_err < 2.0, "estimate={e} truth={truth}");
    }

    #[test]
    fn pk_fk_join_without_predicates_is_exactish() {
        let db = tpch_database(&TpchConfig::tiny(3));
        let est = PostgresEstimator::build(&db);
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM orders, lineitem WHERE lineitem.l_orderkey = orders.o_orderkey",
        )
        .unwrap();
        let truth = CountExecutor::new().count(&db, &q.to_exec()).unwrap() as f64;
        let e = est.estimate(&q);
        // |lineitem ⋈ orders| = |lineitem| for a clean FK; formula is exact.
        let q_err = (e / truth).max(truth / e);
        assert!(q_err < 1.3, "estimate={e} truth={truth}");
    }

    #[test]
    fn correlated_join_predicates_underestimate_on_imdb() {
        // The independence assumption should produce noticeable error on
        // the correlated synthetic IMDb for year+keyword queries.
        let db = imdb_database(&ImdbConfig::tiny(5));
        let est = PostgresEstimator::build(&db);
        let exec = CountExecutor::new();
        let qs = ds_query::workloads::job_light::job_light_workload(&db, 3);
        let mut worst: f64 = 1.0;
        for q in &qs {
            let truth = exec.count(&db, &q.to_exec()).unwrap().max(1) as f64;
            let e = est.estimate(q);
            worst = worst.max((e / truth).max(truth / e));
        }
        assert!(
            worst > 3.0,
            "PG should err on correlated data, worst={worst}"
        );
    }

    #[test]
    fn estimates_are_at_least_one() {
        let db = imdb_database(&ImdbConfig::tiny(6));
        let est = PostgresEstimator::build(&db);
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM title WHERE title.production_year > 99999",
        )
        .unwrap();
        assert_eq!(est.estimate(&q), 1.0);
    }

    #[test]
    fn name_is_postgresql() {
        let db = imdb_database(&ImdbConfig::tiny(7));
        assert_eq!(PostgresEstimator::build(&db).name(), "PostgreSQL");
    }
}
