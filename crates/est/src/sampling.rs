//! HyPer-style sampling-based estimation (the `HyPer` row of Table 1).
//!
//! HyPer evaluates base-table predicates against small materialized samples
//! and combines the observed selectivities across joins under independence.
//! Its weak spot — which the paper dwells on — is the *0-tuple situation*:
//! when no sampled tuple qualifies, the estimator "falls back to an
//! 'educated' guess — causing large estimation errors".

use ds_query::query::Query;
use ds_storage::catalog::{Database, TableId};
use ds_storage::sample::{sample_all, TableSample};

use crate::{check_tables, CardinalityEstimator, EstimateError};

/// What to assume when no sampled tuple qualifies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ZeroTupleFallback {
    /// Assume half a qualifying tuple: `sel = 0.5 / sample_size`. This is
    /// the classic "educated guess".
    HalfTuple,
    /// Assume a fixed selectivity.
    FixedSelectivity(f64),
}

impl ZeroTupleFallback {
    fn selectivity(self, sample_len: usize) -> f64 {
        match self {
            ZeroTupleFallback::HalfTuple => 0.5 / sample_len.max(1) as f64,
            ZeroTupleFallback::FixedSelectivity(s) => s,
        }
    }
}

/// Sampling-based estimator over per-table materialized samples.
#[derive(Debug)]
pub struct SamplingEstimator {
    samples: Vec<TableSample>,
    /// Exact distinct counts of join columns (sampling systems keep such
    /// counts in their catalogs).
    join_nd: Vec<Vec<f64>>,
    table_rows: Vec<f64>,
    fallback: ZeroTupleFallback,
    name: String,
}

impl SamplingEstimator {
    /// Builds the estimator with `sample_size` tuples per table
    /// (deterministic in `seed`) and the half-tuple fallback.
    pub fn build(db: &Database, sample_size: usize, seed: u64) -> Self {
        Self::build_with_fallback(db, sample_size, seed, ZeroTupleFallback::HalfTuple)
    }

    /// Builds with an explicit 0-tuple fallback policy.
    pub fn build_with_fallback(
        db: &Database,
        sample_size: usize,
        seed: u64,
        fallback: ZeroTupleFallback,
    ) -> Self {
        assert!(sample_size > 0, "sample size must be positive");
        let samples = sample_all(db, sample_size, seed);
        let join_nd = db
            .tables()
            .iter()
            .map(|t| {
                t.columns()
                    .iter()
                    .map(|c| c.n_distinct().max(1) as f64)
                    .collect()
            })
            .collect();
        Self {
            samples,
            join_nd,
            table_rows: db.tables().iter().map(|t| t.num_rows() as f64).collect(),
            fallback,
            name: "HyPer".to_string(),
        }
    }

    /// The sample of table `t`.
    pub fn sample(&self, t: TableId) -> &TableSample {
        &self.samples[t.0]
    }

    /// Sampled selectivity of the predicates on `table`, with the 0-tuple
    /// fallback applied. Tables without predicates have selectivity 1.
    pub fn table_selectivity(&self, query: &Query, table: TableId) -> f64 {
        let preds = query.preds_of(table);
        if preds.is_empty() {
            return 1.0;
        }
        let sample = &self.samples[table.0];
        match sample.selectivity(&preds) {
            Some(sel) if sel > 0.0 => sel,
            _ => self.fallback.selectivity(sample.len()),
        }
    }

    /// True if the query hits a 0-tuple situation on any of its tables.
    pub fn is_zero_tuple(&self, query: &Query) -> bool {
        query.tables.iter().any(|&t| {
            let preds = query.preds_of(t);
            !preds.is_empty() && self.samples[t.0].selectivity(&preds) == Some(0.0)
        })
    }
}

impl CardinalityEstimator for SamplingEstimator {
    fn name(&self) -> &str {
        &self.name
    }

    /// `∏ |Tᵢ|·sel_sampleᵢ × ∏_joins 1/max(nd(l), nd(r))`, clamped ≥ 1 —
    /// sampled base selectivities, independence across joins.
    fn estimate(&self, query: &Query) -> f64 {
        let mut card = 1.0;
        for &t in &query.tables {
            card *= self.table_rows[t.0] * self.table_selectivity(query, t);
        }
        for join in &query.joins {
            let nd_l = self.join_nd[join.left.table.0][join.left.col];
            let nd_r = self.join_nd[join.right.table.0][join.right.col];
            card /= nd_l.max(nd_r);
        }
        card.max(1.0)
    }

    /// As [`SamplingEstimator::estimate`], but rejects queries referencing
    /// tables outside the sampled database.
    fn try_estimate(&self, query: &Query) -> Result<f64, EstimateError> {
        check_tables(query, self.table_rows.len())?;
        Ok(self.estimate(query))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_query::parser::parse_query;
    use ds_storage::exec::CountExecutor;
    use ds_storage::gen::{imdb_database, tpch_database, ImdbConfig, TpchConfig};

    #[test]
    fn common_value_selectivity_close_to_truth() {
        let db = tpch_database(&TpchConfig::default());
        let est = SamplingEstimator::build(&db, 1000, 1);
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM lineitem WHERE lineitem.l_quantity < 25",
        )
        .unwrap();
        let truth = CountExecutor::new().count(&db, &q.to_exec()).unwrap() as f64;
        let e = est.estimate(&q);
        let q_err = (e / truth).max(truth / e);
        assert!(q_err < 1.5, "estimate={e} truth={truth}");
    }

    #[test]
    fn zero_tuple_detection_and_fallback() {
        let db = imdb_database(&ImdbConfig::tiny(2));
        let est = SamplingEstimator::build(&db, 50, 3);
        // A predicate matching nothing at all: guaranteed 0-tuple.
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM title WHERE title.production_year > 99999",
        )
        .unwrap();
        assert!(est.is_zero_tuple(&q));
        let e = est.estimate(&q);
        // Fallback: 0.5/50 of the title rows, clamped ≥ 1.
        let expected = (db.table(db.table_id("title").unwrap()).num_rows() as f64 * 0.01).max(1.0);
        assert!(
            (e - expected).abs() / expected < 0.01,
            "e={e} expected={expected}"
        );
    }

    #[test]
    fn fixed_fallback_is_respected() {
        let db = imdb_database(&ImdbConfig::tiny(2));
        let est = SamplingEstimator::build_with_fallback(
            &db,
            50,
            3,
            ZeroTupleFallback::FixedSelectivity(0.5),
        );
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM title WHERE title.production_year > 99999",
        )
        .unwrap();
        let rows = db.table(db.table_id("title").unwrap()).num_rows() as f64;
        assert!((est.estimate(&q) - rows * 0.5).abs() < 1.0);
    }

    #[test]
    fn join_estimate_uses_distinct_counts() {
        let db = imdb_database(&ImdbConfig::tiny(4));
        let est = SamplingEstimator::build(&db, 100, 9);
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM title, movie_keyword \
             WHERE movie_keyword.movie_id = title.id",
        )
        .unwrap();
        let truth = CountExecutor::new().count(&db, &q.to_exec()).unwrap() as f64;
        let e = est.estimate(&q);
        // Predicate-free PK/FK join: both systems' formula is near-exact
        // (up to keys that never appear in the FK column).
        let q_err = (e / truth).max(truth / e);
        assert!(q_err < 1.6, "estimate={e} truth={truth}");
    }

    #[test]
    fn no_predicates_means_full_selectivity() {
        let db = imdb_database(&ImdbConfig::tiny(5));
        let est = SamplingEstimator::build(&db, 10, 1);
        let q = parse_query(&db, "SELECT COUNT(*) FROM title").unwrap();
        let rows = db.table(db.table_id("title").unwrap()).num_rows() as f64;
        assert_eq!(est.estimate(&q), rows);
        assert!(!est.is_zero_tuple(&q));
    }

    #[test]
    fn name_is_hyper() {
        let db = imdb_database(&ImdbConfig::tiny(6));
        assert_eq!(SamplingEstimator::build(&db, 10, 1).name(), "HyPer");
    }
}
