//! Correlated join sampling (CS2-style) — an *extension* baseline beyond
//! the paper's comparisons.
//!
//! Per-table independent samples cannot estimate joins: the probability
//! that sampled tuples from both sides share a join key is tiny.
//! Correlated sampling fixes this by sampling *keys*: pick a hash subset of
//! the hub table's primary keys and materialize the induced sub-database
//! (hub rows plus all referencing rows of the FK children). Joins on the
//! sub-database are then unbiased miniatures of the full join, so
//! `COUNT(sub) / rate` estimates the true count — capturing exactly the
//! cross-join fanout correlations that break the distinct-count formula.
//!
//! Its remaining weakness is the same 0-tuple problem as row sampling:
//! selective predicates that miss the key subset fall back to an educated
//! guess. This makes it a sharp ablation point between the traditional
//! estimators and the learned sketch.

use std::collections::HashSet;

use ds_query::query::Query;
use ds_storage::catalog::{Database, TableId};
use ds_storage::column::Column;
use ds_storage::exec::CountExecutor;

use crate::{check_tables, CardinalityEstimator, EstimateError};

/// Correlated join-sampling estimator over a star (hub + FK children)
/// schema region. Queries outside the star fall back to scaled guessing.
#[derive(Debug)]
pub struct JoinSamplingEstimator {
    /// The induced sub-database (same schema as the original).
    sub: Database,
    /// Effective sampling rate: |sampled hub keys| / |hub keys|.
    rate: f64,
    /// The hub table id.
    hub: TableId,
    /// Tables fully represented in the sub-database (hub + FK children).
    covered: HashSet<TableId>,
    exec: CountExecutor,
    name: String,
}

/// Splits a 64-bit key into a uniform `[0, 1)` fraction (Fibonacci hash).
fn key_fraction(key: i64) -> f64 {
    let h = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl JoinSamplingEstimator {
    /// Builds the estimator by sampling hub keys at approximately `rate`
    /// (0 < rate ≤ 1). The hub is detected as the table referenced by the
    /// most foreign keys.
    ///
    /// # Panics
    /// Panics if the database has no foreign keys or `rate` is out of
    /// range.
    pub fn build(db: &Database, rate: f64) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1]");
        assert!(!db.foreign_keys().is_empty(), "schema has no joins");

        // Hub = most-referenced table.
        let mut refs = vec![0usize; db.num_tables()];
        for fk in db.foreign_keys() {
            refs[fk.to.table.0] += 1;
        }
        let hub = TableId(
            refs.iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .expect("non-empty")
                .0,
        );
        let hub_key_col = db
            .foreign_keys()
            .iter()
            .find(|fk| fk.to.table == hub)
            .expect("hub has a referencing FK")
            .to
            .col;

        // Deterministic key subset via hashing.
        let hub_table = db.table(hub);
        let keys = hub_table.column(hub_key_col);
        let sampled: HashSet<i64> = (0..hub_table.num_rows())
            .filter_map(|r| keys.get(r))
            .filter(|&k| key_fraction(k) < rate)
            .collect();
        let total_keys = keys.n_distinct().max(1);
        let actual_rate = (sampled.len() as f64 / total_keys as f64).max(f64::MIN_POSITIVE);

        // Materialize the induced sub-database.
        let mut covered = HashSet::new();
        covered.insert(hub);
        let mut tables = Vec::with_capacity(db.num_tables());
        for (ti, table) in db.tables().iter().enumerate() {
            let tid = TableId(ti);
            let keep: Vec<u32> = if tid == hub {
                (0..table.num_rows() as u32)
                    .filter(|&r| keys.get(r as usize).is_some_and(|k| sampled.contains(&k)))
                    .collect()
            } else if let Some(fk) = db
                .foreign_keys()
                .iter()
                .find(|fk| fk.from.table == tid && fk.to.table == hub)
            {
                covered.insert(tid);
                let fk_col: &Column = table.column(fk.from.col);
                (0..table.num_rows() as u32)
                    .filter(|&r| fk_col.get(r as usize).is_some_and(|k| sampled.contains(&k)))
                    .collect()
            } else {
                // Outside the star: keep everything (queries touching these
                // tables are not covered anyway).
                (0..table.num_rows() as u32).collect()
            };
            tables.push(table.project_rows(&keep));
        }
        let sub = Database::new(
            format!("{}-cs2", db.name()),
            tables,
            db.foreign_keys().to_vec(),
        );
        Self {
            sub,
            rate: actual_rate,
            hub,
            covered,
            exec: CountExecutor::new(),
            name: "JoinSample".to_string(),
        }
    }

    /// Effective key sampling rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The hub table the key sample is anchored on.
    pub fn hub(&self) -> TableId {
        self.hub
    }

    /// True if the query lies entirely within the sampled star (estimates
    /// are unbiased up to sampling variance).
    pub fn covers(&self, query: &Query) -> bool {
        query.tables.iter().all(|t| self.covered.contains(t))
    }

    /// Rows of the sampled sub-database (footprint indicator).
    pub fn sub_rows(&self) -> usize {
        self.sub.total_rows()
    }
}

impl CardinalityEstimator for JoinSamplingEstimator {
    fn name(&self) -> &str {
        &self.name
    }

    /// `COUNT` on the key-sampled sub-database, scaled by `1 / rate`.
    /// A zero sub-count degrades to the half-tuple guess `0.5 / rate`.
    fn estimate(&self, query: &Query) -> f64 {
        let Ok(count) = self.exec.count(&self.sub, &query.to_exec()) else {
            return 1.0;
        };
        if count > 0 {
            (count as f64 / self.rate).max(1.0)
        } else {
            // 0-tuple situation: educated guess of half a tuple.
            (0.5 / self.rate).max(1.0)
        }
    }

    /// As `estimate`, but unknown tables and executor failures become
    /// typed errors instead of silent `1.0` guesses.
    fn try_estimate(&self, query: &Query) -> Result<f64, EstimateError> {
        check_tables(query, self.sub.num_tables())?;
        self.exec
            .count(&self.sub, &query.to_exec())
            .map(|count| {
                if count > 0 {
                    (count as f64 / self.rate).max(1.0)
                } else {
                    (0.5 / self.rate).max(1.0)
                }
            })
            .map_err(|e| EstimateError::Execution(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_core_shim::*;

    // Minimal local helpers (this crate cannot depend on ds-core).
    mod ds_core_shim {
        pub fn qerror(e: f64, t: f64) -> f64 {
            let e = e.max(1.0);
            let t = t.max(1.0);
            (e / t).max(t / e)
        }
    }

    use ds_query::parser::parse_query;
    use ds_storage::exec::CountExecutor;
    use ds_storage::gen::{imdb_database, ImdbConfig};

    #[test]
    fn detects_title_as_hub_and_covers_star() {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let est = JoinSamplingEstimator::build(&db, 0.5);
        assert_eq!(est.hub(), db.table_id("title").unwrap());
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM title, movie_keyword \
             WHERE movie_keyword.movie_id = title.id",
        )
        .unwrap();
        assert!(est.covers(&q));
        assert!((est.rate() - 0.5).abs() < 0.15, "rate {}", est.rate());
    }

    #[test]
    fn full_rate_reproduces_exact_counts() {
        let db = imdb_database(&ImdbConfig::tiny(2));
        let est = JoinSamplingEstimator::build(&db, 1.0);
        let exec = CountExecutor::new();
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM title, movie_keyword \
             WHERE movie_keyword.movie_id = title.id AND title.production_year > 2000",
        )
        .unwrap();
        let truth = exec.count(&db, &q.to_exec()).unwrap() as f64;
        assert_eq!(est.estimate(&q), truth.max(1.0));
    }

    #[test]
    fn join_estimates_are_reasonable_at_half_rate() {
        let db = imdb_database(&ImdbConfig::tiny(3));
        let est = JoinSamplingEstimator::build(&db, 0.5);
        let exec = CountExecutor::new();
        // Predicate-free joins: correlated sampling is unbiased.
        for sql in [
            "SELECT COUNT(*) FROM title, movie_keyword \
             WHERE movie_keyword.movie_id = title.id",
            "SELECT COUNT(*) FROM title, cast_info, movie_keyword \
             WHERE cast_info.movie_id = title.id AND movie_keyword.movie_id = title.id",
        ] {
            let q = parse_query(&db, sql).unwrap();
            let truth = exec.count(&db, &q.to_exec()).unwrap() as f64;
            let e = est.estimate(&q);
            assert!(
                qerror(e, truth) < 2.5,
                "sql={sql} estimate={e} truth={truth}"
            );
        }
    }

    #[test]
    fn zero_subcount_falls_back_to_guess() {
        let db = imdb_database(&ImdbConfig::tiny(4));
        let est = JoinSamplingEstimator::build(&db, 0.25);
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM title WHERE title.production_year > 99999",
        )
        .unwrap();
        let expected = (0.5 / est.rate()).max(1.0);
        assert!((est.estimate(&q) - expected).abs() < 1e-9);
    }

    #[test]
    fn deterministic_sub_database() {
        let db = imdb_database(&ImdbConfig::tiny(5));
        let a = JoinSamplingEstimator::build(&db, 0.3);
        let b = JoinSamplingEstimator::build(&db, 0.3);
        assert_eq!(a.sub_rows(), b.sub_rows());
        assert_eq!(a.rate(), b.rate());
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn invalid_rate_rejected() {
        let db = imdb_database(&ImdbConfig::tiny(6));
        JoinSamplingEstimator::build(&db, 0.0);
    }
}
