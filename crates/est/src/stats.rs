//! Per-column statistics in the style of PostgreSQL's `pg_stats`:
//! null fraction, distinct count, most-common values, and an equi-depth
//! histogram over the remaining values.

use std::collections::HashMap;

use ds_storage::column::Column;
use ds_storage::predicate::{CmpOp, PredTest};

/// Default selectivity assumed for the non-MCV remainder under a `LIKE`
/// pattern — the analogue of PostgreSQL's `DEFAULT_MATCH_SEL` constant,
/// scaled up because decimal-rendered integer domains are dense.
const DEFAULT_LIKE_REST_SEL: f64 = 0.05;

/// Statistics of one column, computed from a full scan (PostgreSQL samples;
/// scanning fully only makes the baseline *stronger*).
#[derive(Debug, Clone)]
pub struct ColumnStats {
    n_rows: usize,
    null_frac: f64,
    n_distinct: usize,
    min: i64,
    max: i64,
    /// Most common values with their fraction of all rows, descending.
    mcvs: Vec<(i64, f64)>,
    /// Total row fraction covered by MCVs.
    mcv_frac: f64,
    /// Equi-depth histogram bounds over non-MCV non-NULL values
    /// (`buckets + 1` entries, or empty when there are no such values).
    hist_bounds: Vec<i64>,
    /// Row fraction covered by the histogram (non-NULL, non-MCV).
    hist_frac: f64,
}

/// PostgreSQL's `default_statistics_target`: number of MCVs and histogram
/// buckets.
pub const DEFAULT_STATS_TARGET: usize = 100;

impl ColumnStats {
    /// Computes statistics with the given MCV-list size and histogram
    /// bucket count.
    pub fn build(column: &Column, stats_target: usize) -> Self {
        let n_rows = column.len();
        if n_rows == 0 {
            return Self::empty();
        }
        let mut freqs: HashMap<i64, usize> = HashMap::new();
        let mut nulls = 0usize;
        for i in 0..n_rows {
            match column.get(i) {
                Some(v) => *freqs.entry(v).or_insert(0) += 1,
                None => nulls += 1,
            }
        }
        if freqs.is_empty() {
            let mut s = Self::empty();
            s.n_rows = n_rows;
            s.null_frac = 1.0;
            return s;
        }
        let n_distinct = freqs.len();
        let min = *freqs.keys().min().expect("non-empty");
        let max = *freqs.keys().max().expect("non-empty");

        // MCVs: like PostgreSQL, only values occurring more than once are
        // MCV candidates; take the top `stats_target` by frequency
        // (ties broken by value for determinism).
        let mut by_freq: Vec<(i64, usize)> = freqs.iter().map(|(&v, &c)| (v, c)).collect();
        by_freq.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mcvs: Vec<(i64, f64)> = by_freq
            .iter()
            .take(stats_target)
            .filter(|(_, c)| *c > 1)
            .map(|&(v, c)| (v, c as f64 / n_rows as f64))
            .collect();
        let mcv_frac: f64 = mcvs.iter().map(|(_, f)| f).sum();
        let mcv_set: HashMap<i64, ()> = mcvs.iter().map(|&(v, _)| (v, ())).collect();

        // Equi-depth histogram over the remaining rows.
        let mut rest: Vec<i64> = Vec::new();
        for (&v, &c) in &freqs {
            if !mcv_set.contains_key(&v) {
                rest.extend(std::iter::repeat_n(v, c));
            }
        }
        rest.sort_unstable();
        let hist_frac = rest.len() as f64 / n_rows as f64;
        let hist_bounds = if rest.is_empty() {
            Vec::new()
        } else {
            let buckets = stats_target.clamp(1, rest.len().max(1));
            let mut bounds = Vec::with_capacity(buckets + 1);
            for b in 0..=buckets {
                let idx = (b * (rest.len() - 1)) / buckets;
                bounds.push(rest[idx]);
            }
            bounds
        };

        Self {
            n_rows,
            null_frac: nulls as f64 / n_rows as f64,
            n_distinct,
            min,
            max,
            mcvs,
            mcv_frac,
            hist_bounds,
            hist_frac,
        }
    }

    fn empty() -> Self {
        Self {
            n_rows: 0,
            null_frac: 0.0,
            n_distinct: 0,
            min: 0,
            max: 0,
            mcvs: Vec::new(),
            mcv_frac: 0.0,
            hist_bounds: Vec::new(),
            hist_frac: 0.0,
        }
    }

    /// Number of rows the statistics were computed over.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Fraction of NULL rows.
    pub fn null_frac(&self) -> f64 {
        self.null_frac
    }

    /// Number of distinct non-NULL values.
    pub fn n_distinct(&self) -> usize {
        self.n_distinct
    }

    /// Minimum non-NULL value (0 for an empty column).
    pub fn min(&self) -> i64 {
        self.min
    }

    /// Maximum non-NULL value (0 for an empty column).
    pub fn max(&self) -> i64 {
        self.max
    }

    /// The MCV list (value, row fraction), descending by fraction.
    pub fn mcvs(&self) -> &[(i64, f64)] {
        &self.mcvs
    }

    /// Selectivity of `column op literal` under this column's statistics.
    pub fn selectivity(&self, op: CmpOp, literal: i64) -> f64 {
        if self.n_rows == 0 || self.n_distinct == 0 {
            return 0.0;
        }
        match op {
            CmpOp::Eq => self.eq_selectivity(literal),
            CmpOp::Lt => self.range_selectivity(literal, /*less_than=*/ true),
            CmpOp::Gt => self.range_selectivity(literal, /*less_than=*/ false),
        }
    }

    /// Selectivity of an arbitrary predicate test. Comparisons delegate to
    /// [`ColumnStats::selectivity`]; `IN` sums the per-value equality
    /// selectivities (the list is deduplicated by construction); `LIKE`
    /// matches the MCV list exactly and assumes a default fraction of the
    /// non-MCV remainder, like PostgreSQL's pattern-selectivity default.
    pub fn pred_selectivity(&self, test: &PredTest) -> f64 {
        if self.n_rows == 0 || self.n_distinct == 0 {
            return 0.0;
        }
        match test {
            PredTest::Cmp(op, lit) => self.selectivity(*op, *lit),
            PredTest::In(vals) => vals
                .iter()
                .map(|&v| self.eq_selectivity(v))
                .sum::<f64>()
                .clamp(0.0, 1.0),
            PredTest::Like(pat) => {
                let mcv_part: f64 = self
                    .mcvs
                    .iter()
                    .filter(|&&(v, _)| pat.matches(v))
                    .map(|&(_, f)| f)
                    .sum();
                let rest = (1.0 - self.null_frac - self.mcv_frac).max(0.0);
                (mcv_part + rest * DEFAULT_LIKE_REST_SEL).clamp(0.0, 1.0)
            }
        }
    }

    fn eq_selectivity(&self, literal: i64) -> f64 {
        if let Some(&(_, f)) = self.mcvs.iter().find(|&&(v, _)| v == literal) {
            return f;
        }
        if literal < self.min || literal > self.max {
            return 0.0;
        }
        let other_distinct = self.n_distinct.saturating_sub(self.mcvs.len());
        if other_distinct == 0 {
            return 0.0;
        }
        ((1.0 - self.null_frac - self.mcv_frac) / other_distinct as f64).max(0.0)
    }

    /// PostgreSQL-style range selectivity: exact over the MCV list plus
    /// linear interpolation within the equi-depth histogram.
    fn range_selectivity(&self, literal: i64, less_than: bool) -> f64 {
        // MCV part is exact.
        let mcv_part: f64 = self
            .mcvs
            .iter()
            .filter(|&&(v, _)| if less_than { v < literal } else { v > literal })
            .map(|&(_, f)| f)
            .sum();

        // Histogram part.
        let hist_part = if self.hist_bounds.len() < 2 {
            // No histogram: fall back to uniform interpolation over [min, max].
            if self.max == self.min {
                let sat = if less_than {
                    self.min < literal
                } else {
                    self.min > literal
                };
                if sat {
                    self.hist_frac
                } else {
                    0.0
                }
            } else {
                let frac_lt =
                    ((literal - self.min) as f64 / (self.max - self.min) as f64).clamp(0.0, 1.0);
                self.hist_frac * if less_than { frac_lt } else { 1.0 - frac_lt }
            }
        } else {
            let bounds = &self.hist_bounds;
            let buckets = (bounds.len() - 1) as f64;
            let frac_lt = if literal <= bounds[0] {
                0.0
            } else if literal > *bounds.last().expect("non-empty") {
                1.0
            } else {
                // Find the bucket containing the literal.
                let mut acc = 0.0;
                for w in 0..bounds.len() - 1 {
                    let (lo, hi) = (bounds[w], bounds[w + 1]);
                    if literal > hi {
                        acc += 1.0;
                    } else {
                        let width = (hi - lo).max(1) as f64;
                        acc += ((literal - lo) as f64 / width).clamp(0.0, 1.0);
                        break;
                    }
                }
                acc / buckets
            };
            self.hist_frac * if less_than { frac_lt } else { 1.0 - frac_lt }
        };

        (mcv_part + hist_part).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_storage::bitmap::Bitmap;

    fn uniform_col(n: usize, domain: i64) -> Column {
        Column::new("c", (0..n).map(|i| (i as i64) % domain).collect())
    }

    #[test]
    fn basic_stats() {
        let c = uniform_col(1000, 10);
        let s = ColumnStats::build(&c, 100);
        assert_eq!(s.n_rows(), 1000);
        assert_eq!(s.n_distinct(), 10);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 9);
        assert_eq!(s.null_frac(), 0.0);
        // Every value repeats 100× → all are MCVs.
        assert_eq!(s.mcvs().len(), 10);
    }

    #[test]
    fn eq_selectivity_exact_via_mcv() {
        let c = uniform_col(1000, 10);
        let s = ColumnStats::build(&c, 100);
        let sel = s.selectivity(CmpOp::Eq, 3);
        assert!((sel - 0.1).abs() < 1e-9, "sel={sel}");
        assert_eq!(s.selectivity(CmpOp::Eq, 99), 0.0);
    }

    #[test]
    fn eq_selectivity_non_mcv_uses_distinct_share() {
        // 100 distinct singleton values: no MCVs (count == 1), so eq falls
        // back to 1/n_distinct.
        let c = Column::new("c", (0..100).collect());
        let s = ColumnStats::build(&c, 10);
        assert!(s.mcvs().is_empty());
        let sel = s.selectivity(CmpOp::Eq, 50);
        assert!((sel - 0.01).abs() < 1e-9, "sel={sel}");
    }

    #[test]
    fn range_selectivity_uniform() {
        let c = Column::new("c", (0..1000).collect());
        let s = ColumnStats::build(&c, 100);
        let sel = s.selectivity(CmpOp::Lt, 250);
        assert!((sel - 0.25).abs() < 0.03, "sel={sel}");
        let sel_gt = s.selectivity(CmpOp::Gt, 250);
        assert!((sel_gt - 0.75).abs() < 0.03, "sel_gt={sel_gt}");
        assert_eq!(s.selectivity(CmpOp::Lt, -5), 0.0);
        assert!((s.selectivity(CmpOp::Gt, -5) - 1.0).abs() < 0.01);
    }

    #[test]
    fn range_selectivity_skewed_with_mcvs() {
        // 900 zeros + values 1..=100.
        let mut data = vec![0i64; 900];
        data.extend(1..=100);
        let c = Column::new("c", data);
        let s = ColumnStats::build(&c, 50);
        // P(> 0) = 0.1 exactly; MCV handles the zero mass.
        let sel = s.selectivity(CmpOp::Gt, 0);
        assert!((sel - 0.1).abs() < 0.02, "sel={sel}");
    }

    #[test]
    fn nulls_reduce_selectivity_mass() {
        let mut nulls = Bitmap::new(100);
        for i in 0..50 {
            nulls.set(i);
        }
        let c = Column::with_nulls("c", (0..100).collect(), nulls);
        let s = ColumnStats::build(&c, 100);
        assert!((s.null_frac() - 0.5).abs() < 1e-9);
        // All mass above any literal ≤ total non-null fraction.
        assert!(s.selectivity(CmpOp::Gt, i64::MIN) <= 0.5 + 1e-9);
    }

    #[test]
    fn empty_and_all_null_columns() {
        let empty = Column::new("c", vec![]);
        let s = ColumnStats::build(&empty, 100);
        assert_eq!(s.selectivity(CmpOp::Eq, 1), 0.0);

        let all_null = Column::with_nulls("c", vec![5; 10], Bitmap::all_set(10));
        let s2 = ColumnStats::build(&all_null, 100);
        assert_eq!(s2.selectivity(CmpOp::Eq, 5), 0.0);
        assert_eq!(s2.null_frac(), 1.0);
    }

    #[test]
    fn in_selectivity_sums_eq_parts() {
        let c = uniform_col(1000, 10);
        let s = ColumnStats::build(&c, 100);
        let sel = s.pred_selectivity(&PredTest::In(vec![2, 5, 7]));
        assert!((sel - 0.3).abs() < 1e-9, "sel={sel}");
        // Out-of-domain members contribute nothing.
        let sel = s.pred_selectivity(&PredTest::In(vec![2, 500]));
        assert!((sel - 0.1).abs() < 1e-9, "sel={sel}");
    }

    #[test]
    fn like_selectivity_matches_mcvs_exactly() {
        use ds_storage::predicate::LikePattern;
        // Values 0..10, all MCVs (repeat 100×) — pattern mass is exact.
        let c = uniform_col(1000, 10);
        let s = ColumnStats::build(&c, 100);
        // '%' matches every value: full non-null mass.
        let sel = s.pred_selectivity(&PredTest::Like(LikePattern::new("%")));
        assert!((sel - 1.0).abs() < 1e-9, "sel={sel}");
        // Single digit '3' matches one of ten values.
        let sel = s.pred_selectivity(&PredTest::Like(LikePattern::new("3")));
        assert!((sel - 0.1).abs() < 1e-9, "sel={sel}");
        // No match in MCVs and no remainder → 0.
        let sel = s.pred_selectivity(&PredTest::Like(LikePattern::new("77")));
        assert!(sel.abs() < 1e-9, "sel={sel}");
    }

    #[test]
    fn selectivities_are_probabilities() {
        let c = uniform_col(500, 37);
        let s = ColumnStats::build(&c, 20);
        for lit in [-10, 0, 5, 17, 36, 100] {
            for op in CmpOp::ALL {
                let sel = s.selectivity(op, lit);
                assert!((0.0..=1.0).contains(&sel), "{op:?} {lit} → {sel}");
            }
        }
    }
}
