//! Property tests for the PostgreSQL-style statistics: estimated
//! selectivities must track brute-force counts on arbitrary data.

use proptest::prelude::*;

use ds_est::stats::ColumnStats;
use ds_storage::column::Column;
use ds_storage::predicate::CmpOp;

fn brute_selectivity(col: &Column, op: CmpOp, lit: i64) -> f64 {
    if col.is_empty() {
        return 0.0;
    }
    let hits = (0..col.len())
        .filter(|&i| col.get(i).is_some_and(|v| op.eval(v, lit)))
        .count();
    hits as f64 / col.len() as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Equality selectivity on a *full-statistics* column (everything is an
    /// MCV candidate) matches the exact frequency.
    #[test]
    fn eq_selectivity_is_exact_when_mcvs_cover(
        values in prop::collection::vec(0i64..20, 50..300),
        probe in 0i64..25,
    ) {
        let col = Column::new("c", values);
        let stats = ColumnStats::build(&col, 100); // 20 distinct ≤ 100 MCVs
        let est = stats.selectivity(CmpOp::Eq, probe);
        let exact = brute_selectivity(&col, CmpOp::Eq, probe);
        // Only repeated values become MCVs; singletons fall back to the
        // uniform share, so allow a one-row absolute slack.
        let slack = 1.0 / col.len() as f64 + 1e-9;
        prop_assert!((est - exact).abs() <= slack, "est={est} exact={exact}");
    }

    /// Range selectivities are within a few histogram buckets of the truth.
    #[test]
    fn range_selectivity_tracks_brute_force(
        values in prop::collection::vec(-1000i64..1000, 100..500),
        probe in -1200i64..1200,
    ) {
        let col = Column::new("c", values);
        let stats = ColumnStats::build(&col, 50);
        for op in [CmpOp::Lt, CmpOp::Gt] {
            let est = stats.selectivity(op, probe);
            let exact = brute_selectivity(&col, op, probe);
            prop_assert!(
                (est - exact).abs() < 0.15,
                "{op:?} {probe}: est={est} exact={exact}"
            );
        }
    }

    /// Complementarity: sel(<x) + sel(=x) + sel(>x) ≈ non-null fraction.
    #[test]
    fn three_way_split_sums_to_one(
        values in prop::collection::vec(0i64..100, 50..400),
        probe in 0i64..100,
    ) {
        let col = Column::new("c", values);
        let stats = ColumnStats::build(&col, 100);
        let total = stats.selectivity(CmpOp::Lt, probe)
            + stats.selectivity(CmpOp::Eq, probe)
            + stats.selectivity(CmpOp::Gt, probe);
        prop_assert!((total - 1.0).abs() < 0.15, "total={total}");
    }

    /// Monotonicity of the CDF: sel(< a) ≤ sel(< b) for a ≤ b.
    #[test]
    fn lt_selectivity_is_monotone(
        values in prop::collection::vec(-500i64..500, 50..300),
        a in -600i64..600,
        b in -600i64..600,
    ) {
        let (a, b) = (a.min(b), a.max(b));
        let col = Column::new("c", values);
        let stats = ColumnStats::build(&col, 30);
        prop_assert!(
            stats.selectivity(CmpOp::Lt, a) <= stats.selectivity(CmpOp::Lt, b) + 1e-9
        );
    }
}
