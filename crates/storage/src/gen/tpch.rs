//! Synthetic TPC-H subset generator.
//!
//! Generates `region`, `nation`, `customer`, `orders`, `lineitem`, `part`,
//! and `supplier` with spec-like *uniform, independent* value distributions
//! (TPC-H §4.2). This is the "easy" dataset of the demo: because columns are
//! independent, traditional estimators already do well, which contrasts with
//! the correlated IMDb data.

use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::catalog::{ColRef, Database, ForeignKey, TableId};
use crate::column::Column;
use crate::gen::dist::poisson;
use crate::table::Table;

/// Configuration of the synthetic TPC-H subset. Row counts follow the spec
/// ratios at a miniature scale factor.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Number of customers; orders ≈ 10× and lineitems ≈ 40× this.
    pub customers: usize,
    /// Number of parts.
    pub parts: usize,
    /// Number of suppliers.
    pub suppliers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        Self {
            customers: 1_500,
            parts: 2_000,
            suppliers: 100,
            seed: 0x7BC8_5EED,
        }
    }
}

impl TpchConfig {
    /// A small configuration for fast unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            customers: 60,
            parts: 50,
            suppliers: 10,
            seed,
        }
    }
}

/// Number of TPC-H regions.
pub const NUM_REGIONS: usize = 5;
/// Number of TPC-H nations.
pub const NUM_NATIONS: usize = 25;
/// Order/ship dates are day offsets in `0..NUM_DAYS` (1992-01-01 + d).
pub const NUM_DAYS: i64 = 2_405;

/// Generates the synthetic TPC-H database.
pub fn tpch_database(cfg: &TpchConfig) -> Database {
    assert!(cfg.customers > 0 && cfg.parts > 0 && cfg.suppliers > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // --- region / nation (fixed small dimensions) ------------------------
    let region = Table::new(
        "region",
        vec![Column::new(
            "r_regionkey",
            (0..NUM_REGIONS as i64).collect(),
        )],
    );
    let nation = Table::new(
        "nation",
        vec![
            Column::new("n_nationkey", (0..NUM_NATIONS as i64).collect()),
            Column::new(
                "n_regionkey",
                (0..NUM_NATIONS as i64)
                    .map(|k| k % NUM_REGIONS as i64)
                    .collect(),
            ),
        ],
    );

    // --- customer ---------------------------------------------------------
    let nc = cfg.customers;
    let customer = Table::new(
        "customer",
        vec![
            Column::new("c_custkey", (1..=nc as i64).collect()),
            Column::new(
                "c_nationkey",
                (0..nc)
                    .map(|_| rng.random_range(0..NUM_NATIONS as i64))
                    .collect(),
            ),
            Column::new(
                "c_acctbal",
                (0..nc).map(|_| rng.random_range(-999..=9999)).collect(),
            ),
            Column::new(
                "c_mktsegment",
                (0..nc).map(|_| rng.random_range(1..=5)).collect(),
            ),
        ],
    );

    // --- supplier ---------------------------------------------------------
    let ns = cfg.suppliers;
    let supplier = Table::new(
        "supplier",
        vec![
            Column::new("s_suppkey", (1..=ns as i64).collect()),
            Column::new(
                "s_nationkey",
                (0..ns)
                    .map(|_| rng.random_range(0..NUM_NATIONS as i64))
                    .collect(),
            ),
            Column::new(
                "s_acctbal",
                (0..ns).map(|_| rng.random_range(-999..=9999)).collect(),
            ),
        ],
    );

    // --- part ---------------------------------------------------------------
    let np = cfg.parts;
    let part = Table::new(
        "part",
        vec![
            Column::new("p_partkey", (1..=np as i64).collect()),
            Column::new(
                "p_size",
                (0..np).map(|_| rng.random_range(1..=50)).collect(),
            ),
            Column::new(
                "p_brand",
                (0..np).map(|_| rng.random_range(1..=25)).collect(),
            ),
            Column::new(
                "p_retailprice",
                (0..np).map(|_| rng.random_range(900..=2000)).collect(),
            ),
        ],
    );

    // --- orders: ~10 per customer (spec ratio) -----------------------------
    let mut o_key = Vec::new();
    let mut o_cust = Vec::new();
    let mut o_date = Vec::new();
    let mut o_status = Vec::new();
    let mut o_prio = Vec::new();
    for c in 1..=nc as i64 {
        let cnt = poisson(&mut rng, 10.0);
        for _ in 0..cnt {
            o_key.push(o_key.len() as i64 + 1);
            o_cust.push(c);
            o_date.push(rng.random_range(0..NUM_DAYS));
            o_status.push(rng.random_range(1..=3));
            o_prio.push(rng.random_range(1..=5));
        }
    }
    let orders = Table::new(
        "orders",
        vec![
            Column::new("o_orderkey", o_key.clone()),
            Column::new("o_custkey", o_cust),
            Column::new("o_orderdate", o_date.clone()),
            Column::new("o_orderstatus", o_status),
            Column::new("o_orderpriority", o_prio),
        ],
    );

    // --- lineitem: 1..7 per order (spec) ------------------------------------
    let mut l_order = Vec::new();
    let mut l_part = Vec::new();
    let mut l_supp = Vec::new();
    let mut l_qty = Vec::new();
    let mut l_disc = Vec::new();
    let mut l_ship = Vec::new();
    for (i, &ok) in o_key.iter().enumerate() {
        let cnt = rng.random_range(1..=7);
        for _ in 0..cnt {
            l_order.push(ok);
            l_part.push(rng.random_range(1..=np as i64));
            l_supp.push(rng.random_range(1..=ns as i64));
            l_qty.push(rng.random_range(1..=50));
            l_disc.push(rng.random_range(0..=10));
            l_ship.push((o_date[i] + rng.random_range(1..=121)).min(NUM_DAYS + 121));
        }
    }
    let lineitem = Table::new(
        "lineitem",
        vec![
            Column::new("l_orderkey", l_order),
            Column::new("l_partkey", l_part),
            Column::new("l_suppkey", l_supp),
            Column::new("l_quantity", l_qty),
            Column::new("l_discount", l_disc),
            Column::new("l_shipdate", l_ship),
        ],
    );

    // --- assemble -------------------------------------------------------------
    let tables = vec![
        region,   // 0
        nation,   // 1
        customer, // 2
        orders,   // 3
        lineitem, // 4
        part,     // 5
        supplier, // 6
    ];
    let fks = vec![
        ForeignKey {
            from: ColRef::new(TableId(1), 1), // nation.n_regionkey
            to: ColRef::new(TableId(0), 0),   // region.r_regionkey
        },
        ForeignKey {
            from: ColRef::new(TableId(2), 1), // customer.c_nationkey
            to: ColRef::new(TableId(1), 0),   // nation.n_nationkey
        },
        ForeignKey {
            from: ColRef::new(TableId(3), 1), // orders.o_custkey
            to: ColRef::new(TableId(2), 0),   // customer.c_custkey
        },
        ForeignKey {
            from: ColRef::new(TableId(4), 0), // lineitem.l_orderkey
            to: ColRef::new(TableId(3), 0),   // orders.o_orderkey
        },
        ForeignKey {
            from: ColRef::new(TableId(4), 1), // lineitem.l_partkey
            to: ColRef::new(TableId(5), 0),   // part.p_partkey
        },
        ForeignKey {
            from: ColRef::new(TableId(4), 2), // lineitem.l_suppkey
            to: ColRef::new(TableId(6), 0),   // supplier.s_suppkey
        },
    ];
    Database::new("tpch", tables, fks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_and_fks() {
        let db = tpch_database(&TpchConfig::tiny(1));
        assert_eq!(db.num_tables(), 7);
        assert_eq!(db.foreign_keys().len(), 6);
        for name in [
            "region", "nation", "customer", "orders", "lineitem", "part", "supplier",
        ] {
            assert!(db.table_id(name).is_some(), "{name} missing");
        }
        // fk_between finds the lineitem→orders edge.
        let li = db.table_id("lineitem").unwrap();
        let or = db.table_id("orders").unwrap();
        assert!(db.fk_between(li, or).is_some());
    }

    #[test]
    fn ratios_follow_spec() {
        let db = tpch_database(&TpchConfig::tiny(2));
        let nc = db.table(db.table_id("customer").unwrap()).num_rows() as f64;
        let no = db.table(db.table_id("orders").unwrap()).num_rows() as f64;
        let nl = db.table(db.table_id("lineitem").unwrap()).num_rows() as f64;
        assert!(
            (no / nc) > 6.0 && (no / nc) < 14.0,
            "orders/customer={}",
            no / nc
        );
        assert!(
            (nl / no) > 2.5 && (nl / no) < 5.5,
            "lineitem/orders={}",
            nl / no
        );
    }

    #[test]
    fn keys_are_valid() {
        let db = tpch_database(&TpchConfig::tiny(3));
        for fk in db.foreign_keys() {
            let from = db.table(fk.from.table).column(fk.from.col);
            let to = db.table(fk.to.table).column(fk.to.col);
            let valid: std::collections::HashSet<i64> = to.data().iter().copied().collect();
            for &v in from.data() {
                assert!(valid.contains(&v), "dangling key {v}");
            }
        }
    }

    #[test]
    fn quantity_is_roughly_uniform() {
        let db = tpch_database(&TpchConfig::default());
        let li = db.table(db.table_id("lineitem").unwrap());
        let q = li.column_by_name("l_quantity").unwrap();
        assert_eq!(q.min_max(), Some((1, 50)));
        // Uniform 1..=50: mean ≈ 25.5.
        let mean: f64 = q.data().iter().map(|&v| v as f64).sum::<f64>() / q.len() as f64;
        assert!((mean - 25.5).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn deterministic() {
        let a = tpch_database(&TpchConfig::tiny(9));
        let b = tpch_database(&TpchConfig::tiny(9));
        assert_eq!(a.total_rows(), b.total_rows());
    }
}
