//! Seeded synthetic data generators.
//!
//! The paper demonstrates on the real IMDb snapshot (highly correlated,
//! skewed) and on TPC-H (uniform, independent). Neither dataset can be
//! shipped here, so [`imdb`] generates a *synthetic* IMDb with the six
//! JOB-light tables and explicitly injected cross-table correlations, and
//! [`tpch`] generates a spec-like uniform TPC-H subset. See DESIGN.md §1 for
//! why these substitutions preserve the estimator ranking the paper reports.

pub mod dist;
pub mod imdb;
pub mod tpch;

pub use imdb::{imdb_database, ImdbConfig};
pub use tpch::{tpch_database, TpchConfig};
