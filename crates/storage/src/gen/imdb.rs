//! Synthetic IMDb generator.
//!
//! Produces the six JOB-light tables — `title`, `movie_companies`,
//! `cast_info`, `movie_info`, `movie_info_idx`, `movie_keyword` — with the
//! properties that make the real IMDb hard for traditional estimators:
//!
//! * **Skew**: keyword/company/person popularity is Zipfian; production
//!   years cluster in recent decades.
//! * **Cross-column correlation**: `kind_id` depends on `production_year`
//!   (TV output explodes after 2000); `company_type_id` flips between
//!   production and distribution companies across eras.
//! * **Cross-*join* correlation** (the killer for independence assumptions):
//!   a latent per-movie *popularity* drives the fanout of every satellite
//!   table, and keyword choice depends on the movie's era, so
//!   `title.production_year` predicates correlate with `movie_keyword`
//!   membership across the join.

use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::bitmap::Bitmap;
use crate::catalog::{ColRef, Database, ForeignKey, TableId};
use crate::column::Column;
use crate::gen::dist::{poisson, skewed_range, Categorical, Zipf};
use crate::table::Table;

/// Configuration of the synthetic IMDb.
#[derive(Debug, Clone)]
pub struct ImdbConfig {
    /// Number of movies (rows of `title`). Satellite tables scale with this.
    pub movies: usize,
    /// Number of distinct keywords.
    pub keywords: usize,
    /// Number of distinct companies.
    pub companies: usize,
    /// Number of distinct persons.
    pub persons: usize,
    /// RNG seed; the same config generates bit-identical data.
    pub seed: u64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        Self {
            movies: 20_000,
            keywords: 2_000,
            companies: 800,
            persons: 10_000,
            seed: 0xDEE9_5EED,
        }
    }
}

impl ImdbConfig {
    /// A small configuration for fast unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            movies: 500,
            keywords: 100,
            companies: 40,
            persons: 300,
            seed,
        }
    }
}

/// Number of `kind_id` values (movie, tv series, tv episode, …), as in IMDb.
pub const NUM_KINDS: usize = 7;
/// Number of `role_id` values, as in IMDb's `role_type`.
pub const NUM_ROLES: usize = 11;
/// `movie_info.info_type_id` domain size.
pub const NUM_INFO_TYPES: usize = 110;
/// First `movie_info_idx.info_type_id` (99..=113 in IMDb).
pub const INFO_IDX_BASE: i64 = 99;
/// Number of `movie_info_idx.info_type_id` values.
pub const NUM_INFO_IDX_TYPES: usize = 15;
/// Production year range.
pub const YEAR_RANGE: (i64, i64) = (1880, 2019);

/// Generates the synthetic IMDb database.
pub fn imdb_database(cfg: &ImdbConfig) -> Database {
    assert!(cfg.movies > 0, "need at least one movie");
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let n = cfg.movies;
    // --- Latent per-movie variables -------------------------------------
    // Era-dependent kind mix: before 2000 mostly movies, after 2000 TV heavy.
    let kind_old = Categorical::new(&[0.62, 0.10, 0.06, 0.08, 0.06, 0.05, 0.03]);
    let kind_new = Categorical::new(&[0.25, 0.15, 0.35, 0.08, 0.07, 0.06, 0.04]);

    let mut years = Vec::with_capacity(n);
    let mut year_nulls = Bitmap::new(n);
    let mut kinds = Vec::with_capacity(n);
    let mut popularity = Vec::with_capacity(n);
    for i in 0..n {
        let year = skewed_range(&mut rng, YEAR_RANGE.0, YEAR_RANGE.1, 0.35);
        if rng.random::<f64>() < 0.04 {
            year_nulls.set(i);
        }
        let kind = if year < 2000 {
            kind_old.sample(&mut rng)
        } else {
            kind_new.sample(&mut rng)
        } as i64
            + 1;
        // Popularity: u⁴-shaped — most titles obscure, a thin head of
        // blockbusters — boosted for recent titles. Popularity drives the
        // fanout of EVERY satellite table, so joins see *correlated*
        // per-key frequencies: E[∏fanouts] ≫ ∏E[fanouts], which the
        // distinct-count join formula structurally cannot model.
        let u: f64 = rng.random();
        let recency = ((year - 1950).max(0) as f64 / 70.0).min(1.0);
        let base = u.powi(8);
        let pop = base * (0.25 + 0.75 * recency);
        years.push(year);
        kinds.push(kind);
        popularity.push(pop);
    }

    let title = Table::new(
        "title",
        vec![
            Column::new("id", (1..=n as i64).collect()),
            Column::new("kind_id", kinds.clone()),
            Column::with_nulls("production_year", years.clone(), year_nulls),
        ],
    );

    // --- movie_keyword ---------------------------------------------------
    // Keyword ids: a global Zipf head plus era-specific bands, so that
    // P(keyword | year) is far from P(keyword): the correlation the paper
    // exploits.
    let kw_zipf = Zipf::new(cfg.keywords, 1.05);
    let era_band = (cfg.keywords / 14).max(1);
    let mut mk_movie = Vec::new();
    let mut mk_kw = Vec::new();
    for i in 0..n {
        let cnt = poisson(&mut rng, 0.15 + popularity[i] * 25.0);
        for _ in 0..cnt {
            let kw = if rng.random::<f64>() < 0.65 {
                // Era-specific keyword: a narrow band selected by the
                // movie's 20-year era, so P(keyword | year) is far from
                // P(keyword).
                let era = ((years[i] - YEAR_RANGE.0) / 20).clamp(0, 6) as usize;
                let offset = (era * era_band) % cfg.keywords;
                (offset + rng.random_range(0..era_band)) as i64 % cfg.keywords as i64 + 1
            } else {
                kw_zipf.sample(&mut rng) as i64
            };
            mk_movie.push(i as i64 + 1);
            mk_kw.push(kw);
        }
    }
    let mk_len = mk_movie.len();
    let movie_keyword = Table::new(
        "movie_keyword",
        vec![
            Column::new("id", (1..=mk_len as i64).collect()),
            Column::new("movie_id", mk_movie),
            Column::new("keyword_id", mk_kw),
        ],
    );

    // --- cast_info ---------------------------------------------------------
    let person_zipf = Zipf::new(cfg.persons, 1.02);
    let role_movie = Categorical::new(&[
        0.42, 0.34, 0.05, 0.05, 0.02, 0.02, 0.02, 0.04, 0.02, 0.01, 0.01,
    ]);
    let role_tv = Categorical::new(&[
        0.10, 0.08, 0.04, 0.04, 0.32, 0.22, 0.04, 0.10, 0.02, 0.02, 0.02,
    ]);
    let mut ci_movie = Vec::new();
    let mut ci_person = Vec::new();
    let mut ci_role = Vec::new();
    for i in 0..n {
        let base = if kinds[i] == 1 { 0.6 } else { 0.2 };
        let cnt = 1 + poisson(&mut rng, base + popularity[i] * 40.0);
        let roles = if kinds[i] <= 2 { &role_movie } else { &role_tv };
        for _ in 0..cnt {
            ci_movie.push(i as i64 + 1);
            ci_person.push(person_zipf.sample(&mut rng) as i64);
            ci_role.push(roles.sample(&mut rng) as i64 + 1);
        }
    }
    let ci_len = ci_movie.len();
    let cast_info = Table::new(
        "cast_info",
        vec![
            Column::new("id", (1..=ci_len as i64).collect()),
            Column::new("movie_id", ci_movie),
            Column::new("person_id", ci_person),
            Column::new("role_id", ci_role),
        ],
    );

    // --- movie_companies ----------------------------------------------------
    let company_zipf = Zipf::new(cfg.companies, 1.1);
    let mut mc_movie = Vec::new();
    let mut mc_company = Vec::new();
    let mut mc_type = Vec::new();
    for i in 0..n {
        let cnt = 1 + poisson(&mut rng, 0.1 + popularity[i] * 8.0);
        for _ in 0..cnt {
            mc_movie.push(i as i64 + 1);
            mc_company.push(company_zipf.sample(&mut rng) as i64);
            // company_type: 1 = production, 2 = distribution. Distribution
            // entries dominate for older, re-released titles.
            let p_dist = if years[i] < 1990 { 0.85 } else { 0.15 };
            mc_type.push(if rng.random::<f64>() < p_dist { 2 } else { 1 });
        }
    }
    let mc_len = mc_movie.len();
    let movie_companies = Table::new(
        "movie_companies",
        vec![
            Column::new("id", (1..=mc_len as i64).collect()),
            Column::new("movie_id", mc_movie),
            Column::new("company_id", mc_company),
            Column::new("company_type_id", mc_type),
        ],
    );

    // --- movie_info -----------------------------------------------------------
    // Info types cluster by kind: each kind contributes a band of types.
    let mut mi_movie = Vec::new();
    let mut mi_type = Vec::new();
    for i in 0..n {
        let cnt = poisson(&mut rng, 0.3 + popularity[i] * 25.0);
        let band = ((kinds[i] - 1) as usize * 16) % NUM_INFO_TYPES;
        for _ in 0..cnt {
            let ty = if rng.random::<f64>() < 0.8 {
                (band + rng.random_range(0..16)) % NUM_INFO_TYPES
            } else {
                rng.random_range(0..NUM_INFO_TYPES)
            } as i64
                + 1;
            mi_movie.push(i as i64 + 1);
            mi_type.push(ty);
        }
    }
    let mi_len = mi_movie.len();
    let movie_info = Table::new(
        "movie_info",
        vec![
            Column::new("id", (1..=mi_len as i64).collect()),
            Column::new("movie_id", mi_movie),
            Column::new("info_type_id", mi_type),
        ],
    );

    // --- movie_info_idx ----------------------------------------------------------
    // Ratings/votes exist mostly for popular titles.
    let mut mx_movie = Vec::new();
    let mut mx_type = Vec::new();
    for i in 0..n {
        // Ratings/votes exist mostly for popular, recent titles, and the
        // info type itself is era-correlated.
        let p = (0.03 + popularity[i] * 3.0).min(1.0);
        if rng.random::<f64>() < p {
            let cnt = 1 + poisson(&mut rng, 0.8);
            let era = ((years[i] - YEAR_RANGE.0) / 20).clamp(0, 6);
            for _ in 0..cnt {
                let ty = if rng.random::<f64>() < 0.6 {
                    INFO_IDX_BASE
                        + (era * 2 + rng.random_range(0..2)).min(NUM_INFO_IDX_TYPES as i64 - 1)
                } else {
                    INFO_IDX_BASE + rng.random_range(0..NUM_INFO_IDX_TYPES as i64)
                };
                mx_movie.push(i as i64 + 1);
                mx_type.push(ty);
            }
        }
    }
    let mx_len = mx_movie.len();
    let movie_info_idx = Table::new(
        "movie_info_idx",
        vec![
            Column::new("id", (1..=mx_len as i64).collect()),
            Column::new("movie_id", mx_movie),
            Column::new("info_type_id", mx_type),
        ],
    );

    // --- assemble ----------------------------------------------------------------
    let tables = vec![
        title,           // 0
        movie_companies, // 1
        cast_info,       // 2
        movie_info,      // 3
        movie_info_idx,  // 4
        movie_keyword,   // 5
    ];
    let fk = |from_table: usize| ForeignKey {
        from: ColRef::new(TableId(from_table), 1), // movie_id is column 1 everywhere
        to: ColRef::new(TableId(0), 0),            // title.id
    };
    let fks = vec![fk(1), fk(2), fk(3), fk(4), fk(5)];
    Database::new("imdb", tables, fks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Database {
        imdb_database(&ImdbConfig::tiny(7))
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = imdb_database(&ImdbConfig::tiny(1));
        let b = imdb_database(&ImdbConfig::tiny(1));
        assert_eq!(a.total_rows(), b.total_rows());
        let ta = a.table(TableId(5));
        let tb = b.table(TableId(5));
        assert_eq!(ta.column(2).data(), tb.column(2).data());
        let c = imdb_database(&ImdbConfig::tiny(2));
        assert_ne!(
            a.table(TableId(5)).column(2).data(),
            c.table(TableId(5)).column(2).data()
        );
    }

    #[test]
    fn schema_shape() {
        let db = tiny();
        assert_eq!(db.num_tables(), 6);
        for name in [
            "title",
            "movie_companies",
            "cast_info",
            "movie_info",
            "movie_info_idx",
            "movie_keyword",
        ] {
            assert!(db.table_id(name).is_some(), "{name} missing");
        }
        assert_eq!(db.foreign_keys().len(), 5);
        // All satellites join title on movie_id.
        for fk in db.foreign_keys() {
            assert_eq!(fk.to, ColRef::new(db.table_id("title").unwrap(), 0));
            assert_eq!(
                db.table(fk.from.table).column(fk.from.col).name(),
                "movie_id"
            );
        }
    }

    #[test]
    fn movie_ids_reference_titles() {
        let db = tiny();
        let n = db.table(db.table_id("title").unwrap()).num_rows() as i64;
        for fk in db.foreign_keys() {
            let col = db.table(fk.from.table).column(fk.from.col);
            for &v in col.data() {
                assert!((1..=n).contains(&v));
            }
        }
    }

    #[test]
    fn year_kind_correlation_exists() {
        let db = tiny();
        let t = db.table(db.table_id("title").unwrap());
        let years = t.column_by_name("production_year").unwrap();
        let kinds = t.column_by_name("kind_id").unwrap();
        let mut tv_new = 0usize;
        let mut tot_new = 0usize;
        let mut tv_old = 0usize;
        let mut tot_old = 0usize;
        for i in 0..t.num_rows() {
            let Some(y) = years.get(i) else { continue };
            let k = kinds.get(i).unwrap();
            if y >= 2000 {
                tot_new += 1;
                if k == 3 {
                    tv_new += 1;
                }
            } else {
                tot_old += 1;
                if k == 3 {
                    tv_old += 1;
                }
            }
        }
        assert!(tot_new > 0 && tot_old > 0);
        let f_new = tv_new as f64 / tot_new as f64;
        let f_old = tv_old as f64 / tot_old as f64;
        assert!(
            f_new > f_old + 0.1,
            "expected TV-episode share to jump after 2000: old={f_old:.3} new={f_new:.3}"
        );
    }

    #[test]
    fn keyword_distribution_is_skewed() {
        let db = imdb_database(&ImdbConfig::tiny(11));
        let mk = db.table(db.table_id("movie_keyword").unwrap());
        let col = mk.column_by_name("keyword_id").unwrap();
        let distinct = col.n_distinct();
        assert!(distinct > 10, "distinct={distinct}");
        // Top keyword should carry far more than the uniform share.
        let mut counts = std::collections::HashMap::new();
        for &v in col.data() {
            *counts.entry(v).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let uniform = mk.num_rows() / distinct;
        assert!(max > uniform * 3, "max={max} uniform={uniform}");
    }

    #[test]
    fn default_scale_is_reasonable() {
        let cfg = ImdbConfig::default();
        assert!(cfg.movies >= 10_000);
    }
}
