//! Distribution machinery for the synthetic data generators: Zipf and
//! categorical samplers (inverse-CDF based) and a small-λ Poisson sampler.
//!
//! `rand` does not ship Zipf/Poisson (those live in `rand_distr`, which is
//! not available offline), so the few distributions needed are implemented
//! here and unit-tested against their analytic moments.

use rand::{Rng, RngExt};

/// Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ k^(-s)`. Sampled by binary search over a precomputed CDF.
///
/// ```
/// use ds_storage::gen::dist::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
/// let z = Zipf::new(100, 1.1);
/// let mut rng = StdRng::seed_from_u64(1);
/// let rank = z.sample(&mut rng);
/// assert!((1..=100).contains(&rank));
/// assert!(z.pmf(1) > z.pmf(100)); // head-heavy
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs n > 0");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Samples a rank in `1..=n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // partition_point returns the count of entries < u, i.e. the first
        // index with cdf >= u; ranks are 1-based.
        self.cdf.partition_point(|&c| c < u) + 1
    }

    /// Probability mass of rank `k` (1-based).
    pub fn pmf(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.cdf.len(), "rank out of range");
        if k == 1 {
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }
}

/// Categorical distribution over `0..weights.len()` with the given
/// (unnormalized, non-negative) weights.
#[derive(Debug, Clone)]
pub struct Categorical {
    cdf: Vec<f64>,
}

impl Categorical {
    /// Creates a categorical distribution.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative/non-finite weight,
    /// or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "Categorical needs at least one weight");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be finite and >= 0");
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        for c in &mut cdf {
            *c /= acc;
        }
        Self { cdf }
    }

    /// Samples a category index in `0..len`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u)
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if there are zero categories (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// Samples a Poisson(λ) variate with Knuth's product method. Suitable for
/// the small λ (≲ 30) used by the fanout generators.
pub fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "lambda must be finite and >= 0"
    );
    if lambda == 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        // Guard against pathological λ: cap at a generous multiple.
        if k > (lambda * 20.0 + 100.0) as u64 {
            return k;
        }
    }
}

/// Skewed value in `lo..=hi` biased toward `hi` with strength `gamma > 0`
/// (`gamma < 1` skews toward `hi`, `gamma = 1` is uniform, `> 1` skews
/// toward `lo`). Used e.g. for production years clustering in recent decades.
pub fn skewed_range<R: Rng>(rng: &mut R, lo: i64, hi: i64, gamma: f64) -> i64 {
    assert!(lo <= hi, "empty range");
    assert!(gamma > 0.0 && gamma.is_finite(), "gamma must be positive");
    let u: f64 = rng.random();
    let span = (hi - lo) as f64 + 1.0;
    // u^(1/gamma) concentrates near 0 for gamma < 1, so the subtracted
    // offset is small and values cluster near `hi`.
    let v = hi - (u.powf(1.0 / gamma) * span) as i64;
    v.clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(100, 1.1);
        let total: f64 = (1..=100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.pmf(1) > z.pmf(2));
        assert!(z.pmf(2) > z.pmf(50));
    }

    #[test]
    fn zipf_samples_match_head_probability() {
        let z = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let head = (0..n).filter(|_| z.sample(&mut rng) == 1).count();
        let expected = z.pmf(1);
        let observed = head as f64 / n as f64;
        assert!(
            (observed - expected).abs() < 0.02,
            "observed {observed} vs expected {expected}"
        );
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = Zipf::new(7, 0.9);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let k = z.sample(&mut rng);
            assert!((1..=7).contains(&k));
        }
    }

    #[test]
    fn categorical_respects_weights() {
        let c = Categorical::new(&[1.0, 0.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[c.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac2 = counts[2] as f64 / 10_000.0;
        assert!((frac2 - 0.75).abs() < 0.03, "frac2={frac2}");
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn categorical_rejects_empty() {
        Categorical::new(&[]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn categorical_rejects_all_zero() {
        Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    fn poisson_mean_is_close_to_lambda() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| poisson(&mut rng, 3.5)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn skewed_range_bounds_and_bias() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut sum = 0i64;
        let n = 10_000;
        for _ in 0..n {
            let v = skewed_range(&mut rng, 1900, 2019, 0.4);
            assert!((1900..=2019).contains(&v));
            sum += v;
        }
        let mean = sum as f64 / n as f64;
        // gamma < 1 skews toward the upper end: mean far above the midpoint.
        assert!(mean > 1980.0, "mean={mean}");
    }

    #[test]
    fn skewed_range_uniform_when_gamma_one() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| skewed_range(&mut rng, 0, 99, 1.0) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 49.5).abs() < 1.5, "mean={mean}");
    }
}
