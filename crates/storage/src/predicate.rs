//! Base-table predicates.
//!
//! The paper's query model (and JOB-light) uses conjunctions of simple
//! comparison predicates `column op literal` with `op ∈ {=, <, >}`. The
//! MSCN+ line of work extends the operator vocabulary with `IN`-lists and
//! `LIKE` patterns (`OPS = ['lt','eq','in','like']`), which this module
//! models as a [`PredTest`] per predicate. NULL values never satisfy a
//! predicate, following SQL three-valued logic for `WHERE` clauses.
//!
//! Every column in this engine is integer-typed (string domains are
//! dictionary-encoded upstream), so `LIKE` patterns match against the
//! decimal rendering of the value — `id LIKE '19%'` qualifies 19, 190,
//! 1999, …. This keeps the storage layer string-free while still
//! exercising the pattern-predicate featurization path end to end.

use crate::column::Column;

/// Comparison operator of a base-table predicate. The paper enumerates
/// exactly these three and one-hot encodes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
}

impl CmpOp {
    /// All operators, in the one-hot encoding order used by the featurizer.
    pub const ALL: [CmpOp; 3] = [CmpOp::Eq, CmpOp::Lt, CmpOp::Gt];

    /// Stable index of this operator in [`CmpOp::ALL`].
    pub fn index(self) -> usize {
        match self {
            CmpOp::Eq => 0,
            CmpOp::Lt => 1,
            CmpOp::Gt => 2,
        }
    }

    /// SQL token for this operator.
    pub fn sql(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
        }
    }

    /// Applies the comparison to a non-NULL value.
    #[inline]
    pub fn eval(self, value: i64, literal: i64) -> bool {
        match self {
            CmpOp::Eq => value == literal,
            CmpOp::Lt => value < literal,
            CmpOp::Gt => value > literal,
        }
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.sql())
    }
}

/// Operator kind across the full predicate vocabulary — the axis of the
/// featurizer's extended one-hot encoding. The first three indices agree
/// with [`CmpOp::index`] so comparison encodings are stable across schema
/// versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PredOpKind {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `IN (v1, …, vk)`
    In,
    /// `LIKE 'pattern'`
    Like,
}

impl PredOpKind {
    /// All operator kinds in one-hot encoding order.
    pub const ALL: [PredOpKind; 5] = [
        PredOpKind::Eq,
        PredOpKind::Lt,
        PredOpKind::Gt,
        PredOpKind::In,
        PredOpKind::Like,
    ];

    /// Stable index of this kind in [`PredOpKind::ALL`]. Comparison kinds
    /// keep their [`CmpOp::index`] values.
    pub fn index(self) -> usize {
        match self {
            PredOpKind::Eq => 0,
            PredOpKind::Lt => 1,
            PredOpKind::Gt => 2,
            PredOpKind::In => 3,
            PredOpKind::Like => 4,
        }
    }

    /// SQL token for this kind.
    pub fn sql(self) -> &'static str {
        match self {
            PredOpKind::Eq => "=",
            PredOpKind::Lt => "<",
            PredOpKind::Gt => ">",
            PredOpKind::In => "IN",
            PredOpKind::Like => "LIKE",
        }
    }
}

/// A SQL `LIKE` pattern (`%` = any run of characters, `_` = any single
/// character), matched against the decimal rendering of an integer value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LikePattern {
    raw: String,
}

impl LikePattern {
    /// Wraps a raw pattern string.
    pub fn new(pattern: impl Into<String>) -> Self {
        Self {
            raw: pattern.into(),
        }
    }

    /// The raw pattern text (without quotes).
    pub fn as_str(&self) -> &str {
        &self.raw
    }

    /// True if the pattern starts with a literal prefix followed by `%`
    /// and nothing else — the cheap prefix-scan class of patterns.
    pub fn is_prefix(&self) -> bool {
        let b = self.raw.as_bytes();
        !b.is_empty()
            && b[b.len() - 1] == b'%'
            && b[..b.len() - 1].iter().all(|&c| c != b'%' && c != b'_')
    }

    /// Matches the pattern against the decimal rendering of `value`
    /// (negatives include the `-` sign). Stack-allocated: no heap work on
    /// the sample-bitmap hot path.
    #[inline]
    pub fn matches(&self, value: i64) -> bool {
        let mut buf = [0u8; 20]; // i64::MIN is 20 bytes incl. sign
        let s = format_i64(value, &mut buf);
        like_match(self.raw.as_bytes(), s)
    }
}

impl std::fmt::Display for LikePattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.raw)
    }
}

/// Renders `value` in decimal into `buf`, returning the used slice.
#[inline]
fn format_i64(value: i64, buf: &mut [u8; 20]) -> &[u8] {
    let mut i = buf.len();
    // Work in the negative domain so i64::MIN needs no special case.
    let neg = value < 0;
    let mut v = if neg { value } else { -value };
    loop {
        i -= 1;
        buf[i] = b'0' + (-(v % 10)) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    if neg {
        i -= 1;
        buf[i] = b'-';
    }
    &buf[i..]
}

/// Iterative greedy `LIKE` matcher with `%`-backtracking (linear in
/// `|s| · |pat|` worst case, linear typical).
fn like_match(pat: &[u8], s: &[u8]) -> bool {
    let (mut p, mut si) = (0usize, 0usize);
    let mut star: Option<usize> = None;
    let mut mark = 0usize;
    while si < s.len() {
        if p < pat.len() {
            match pat[p] {
                b'%' => {
                    star = Some(p);
                    mark = si;
                    p += 1;
                    continue;
                }
                b'_' => {
                    p += 1;
                    si += 1;
                    continue;
                }
                c if c == s[si] => {
                    p += 1;
                    si += 1;
                    continue;
                }
                _ => {}
            }
        }
        match star {
            Some(sp) => {
                p = sp + 1;
                mark += 1;
                si = mark;
            }
            None => return false,
        }
    }
    while p < pat.len() && pat[p] == b'%' {
        p += 1;
    }
    p == pat.len()
}

/// The test applied by a predicate to a non-NULL column value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PredTest {
    /// `op literal` with `op ∈ {=, <, >}`.
    Cmp(CmpOp, i64),
    /// `IN (v1, …, vk)` — canonical form: sorted ascending, deduplicated,
    /// non-empty. Use [`ColPredicate::is_in`] to construct.
    In(Vec<i64>),
    /// `LIKE 'pattern'` over the decimal rendering of the value.
    Like(LikePattern),
}

impl PredTest {
    /// Operator kind of this test.
    pub fn op_kind(&self) -> PredOpKind {
        match self {
            PredTest::Cmp(CmpOp::Eq, _) => PredOpKind::Eq,
            PredTest::Cmp(CmpOp::Lt, _) => PredOpKind::Lt,
            PredTest::Cmp(CmpOp::Gt, _) => PredOpKind::Gt,
            PredTest::In(_) => PredOpKind::In,
            PredTest::Like(_) => PredOpKind::Like,
        }
    }

    /// Applies the test to a non-NULL value.
    #[inline]
    pub fn eval(&self, value: i64) -> bool {
        match self {
            PredTest::Cmp(op, lit) => op.eval(value, *lit),
            PredTest::In(vals) => vals.binary_search(&value).is_ok(),
            PredTest::Like(pat) => pat.matches(value),
        }
    }
}

/// A predicate `column <test>` on one column of one table. The column is
/// identified positionally within the owning table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColPredicate {
    /// Index of the column within the table.
    pub col: usize,
    /// The test applied to the column's value.
    pub test: PredTest,
}

impl ColPredicate {
    /// Creates a comparison predicate `column op literal` — the original
    /// three-operator vocabulary.
    pub fn new(col: usize, op: CmpOp, literal: i64) -> Self {
        Self {
            col,
            test: PredTest::Cmp(op, literal),
        }
    }

    /// Creates an `IN`-list predicate. The list is canonicalized (sorted,
    /// deduplicated) so equal predicates compare and hash equal regardless
    /// of surface order.
    ///
    /// # Panics
    /// Panics if `values` is empty — `IN ()` is not valid SQL; parsers
    /// must reject it before constructing a predicate.
    pub fn is_in(col: usize, mut values: Vec<i64>) -> Self {
        assert!(!values.is_empty(), "IN list must be non-empty");
        values.sort_unstable();
        values.dedup();
        Self {
            col,
            test: PredTest::In(values),
        }
    }

    /// Creates a `LIKE` predicate over the decimal rendering of the value.
    pub fn like(col: usize, pattern: impl Into<String>) -> Self {
        Self {
            col,
            test: PredTest::Like(LikePattern::new(pattern)),
        }
    }

    /// Operator kind of this predicate.
    pub fn op_kind(&self) -> PredOpKind {
        self.test.op_kind()
    }

    /// The `(op, literal)` pair if this is a plain comparison.
    pub fn as_cmp(&self) -> Option<(CmpOp, i64)> {
        match &self.test {
            PredTest::Cmp(op, lit) => Some((*op, *lit)),
            _ => None,
        }
    }

    /// Evaluates the predicate against row `row` of `column`.
    /// NULL rows never qualify.
    #[inline]
    pub fn eval_row(&self, column: &Column, row: usize) -> bool {
        match column.get(row) {
            Some(v) => self.test.eval(v),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmap::Bitmap;

    #[test]
    fn op_eval_truth_table() {
        assert!(CmpOp::Eq.eval(5, 5));
        assert!(!CmpOp::Eq.eval(5, 6));
        assert!(CmpOp::Lt.eval(4, 5));
        assert!(!CmpOp::Lt.eval(5, 5));
        assert!(CmpOp::Gt.eval(6, 5));
        assert!(!CmpOp::Gt.eval(5, 5));
    }

    #[test]
    fn op_indices_match_all_order() {
        for (i, op) in CmpOp::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
        for (i, k) in PredOpKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        // Cmp kinds keep the CmpOp indices — schema v1/v2 agreement.
        for op in CmpOp::ALL {
            assert_eq!(
                op.index(),
                PredTest::Cmp(op, 0).op_kind().index(),
                "{op:?} index drifted between CmpOp and PredOpKind"
            );
        }
    }

    #[test]
    fn sql_tokens() {
        assert_eq!(CmpOp::Eq.to_string(), "=");
        assert_eq!(CmpOp::Lt.to_string(), "<");
        assert_eq!(CmpOp::Gt.to_string(), ">");
        assert_eq!(PredOpKind::In.sql(), "IN");
        assert_eq!(PredOpKind::Like.sql(), "LIKE");
    }

    #[test]
    fn null_never_qualifies() {
        let mut nulls = Bitmap::new(2);
        nulls.set(0);
        let col = Column::with_nulls("c", vec![7, 7], nulls);
        let p = ColPredicate::new(0, CmpOp::Eq, 7);
        assert!(!p.eval_row(&col, 0));
        assert!(p.eval_row(&col, 1));
        let p = ColPredicate::is_in(0, vec![7, 9]);
        assert!(!p.eval_row(&col, 0));
        assert!(p.eval_row(&col, 1));
        let p = ColPredicate::like(0, "7%");
        assert!(!p.eval_row(&col, 0));
        assert!(p.eval_row(&col, 1));
    }

    #[test]
    fn in_list_canonicalized_and_evaluated() {
        let p = ColPredicate::is_in(0, vec![9, 3, 3, 7]);
        assert_eq!(p, ColPredicate::is_in(0, vec![3, 7, 9]));
        assert!(p.test.eval(3));
        assert!(p.test.eval(7));
        assert!(p.test.eval(9));
        assert!(!p.test.eval(5));
        assert_eq!(p.op_kind(), PredOpKind::In);
        assert_eq!(p.as_cmp(), None);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_in_list_panics() {
        let _ = ColPredicate::is_in(0, vec![]);
    }

    #[test]
    fn like_matches_decimal_rendering() {
        let p = LikePattern::new("19%");
        assert!(p.matches(19));
        assert!(p.matches(190));
        assert!(p.matches(1999));
        assert!(!p.matches(9));
        assert!(!p.matches(219));
        // `_` matches exactly one character.
        let p = LikePattern::new("1_3");
        assert!(p.matches(123));
        assert!(p.matches(103));
        assert!(!p.matches(13));
        assert!(!p.matches(1234));
        // `%` in the middle and multiple wildcards.
        let p = LikePattern::new("1%3");
        assert!(p.matches(13));
        assert!(p.matches(123));
        assert!(p.matches(100_003));
        assert!(!p.matches(132));
        let p = LikePattern::new("%");
        assert!(p.matches(0));
        assert!(p.matches(-5));
        // Empty pattern matches nothing (every rendering is non-empty).
        let p = LikePattern::new("");
        assert!(!p.matches(0));
    }

    #[test]
    fn like_handles_negatives_and_extremes() {
        assert!(LikePattern::new("-4%").matches(-42));
        assert!(!LikePattern::new("-4%").matches(42));
        assert!(LikePattern::new("%8").matches(i64::MIN)); // …775808
        assert!(LikePattern::new("92%").matches(i64::MAX)); // 92233…
        assert!(LikePattern::new("0").matches(0));
        assert!(!LikePattern::new("0").matches(10));
    }

    #[test]
    fn like_prefix_classification() {
        assert!(LikePattern::new("19%").is_prefix());
        assert!(LikePattern::new("%").is_prefix());
        assert!(!LikePattern::new("1%3").is_prefix());
        assert!(!LikePattern::new("1_%").is_prefix());
        assert!(!LikePattern::new("19").is_prefix());
        assert!(!LikePattern::new("").is_prefix());
    }

    #[test]
    fn like_backtracking_terminates() {
        // Pathological backtracking pattern still answers correctly.
        let p = LikePattern::new("%1%1%1%2");
        assert!(p.matches(1_110_102)); // contains 1,1,1 then ends in 2
        assert!(!p.matches(1_110_101));
    }
}
