//! Base-table predicates.
//!
//! The paper's query model (and JOB-light) uses conjunctions of simple
//! comparison predicates `column op literal` with `op ∈ {=, <, >}`. NULL
//! values never satisfy a predicate, following SQL three-valued logic for
//! `WHERE` clauses.

use crate::column::Column;

/// Comparison operator of a base-table predicate. The paper enumerates
/// exactly these three and one-hot encodes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
}

impl CmpOp {
    /// All operators, in the one-hot encoding order used by the featurizer.
    pub const ALL: [CmpOp; 3] = [CmpOp::Eq, CmpOp::Lt, CmpOp::Gt];

    /// Stable index of this operator in [`CmpOp::ALL`].
    pub fn index(self) -> usize {
        match self {
            CmpOp::Eq => 0,
            CmpOp::Lt => 1,
            CmpOp::Gt => 2,
        }
    }

    /// SQL token for this operator.
    pub fn sql(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
        }
    }

    /// Applies the comparison to a non-NULL value.
    #[inline]
    pub fn eval(self, value: i64, literal: i64) -> bool {
        match self {
            CmpOp::Eq => value == literal,
            CmpOp::Lt => value < literal,
            CmpOp::Gt => value > literal,
        }
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.sql())
    }
}

/// A predicate `column op literal` on one column of one table. The column is
/// identified positionally within the owning table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColPredicate {
    /// Index of the column within the table.
    pub col: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub literal: i64,
}

impl ColPredicate {
    /// Creates a predicate.
    pub fn new(col: usize, op: CmpOp, literal: i64) -> Self {
        Self { col, op, literal }
    }

    /// Evaluates the predicate against row `row` of `column`.
    /// NULL rows never qualify.
    #[inline]
    pub fn eval_row(&self, column: &Column, row: usize) -> bool {
        match column.get(row) {
            Some(v) => self.op.eval(v, self.literal),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmap::Bitmap;

    #[test]
    fn op_eval_truth_table() {
        assert!(CmpOp::Eq.eval(5, 5));
        assert!(!CmpOp::Eq.eval(5, 6));
        assert!(CmpOp::Lt.eval(4, 5));
        assert!(!CmpOp::Lt.eval(5, 5));
        assert!(CmpOp::Gt.eval(6, 5));
        assert!(!CmpOp::Gt.eval(5, 5));
    }

    #[test]
    fn op_indices_match_all_order() {
        for (i, op) in CmpOp::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
    }

    #[test]
    fn sql_tokens() {
        assert_eq!(CmpOp::Eq.to_string(), "=");
        assert_eq!(CmpOp::Lt.to_string(), "<");
        assert_eq!(CmpOp::Gt.to_string(), ">");
    }

    #[test]
    fn null_never_qualifies() {
        let mut nulls = Bitmap::new(2);
        nulls.set(0);
        let col = Column::with_nulls("c", vec![7, 7], nulls);
        let p = ColPredicate::new(0, CmpOp::Eq, 7);
        assert!(!p.eval_row(&col, 0));
        assert!(p.eval_row(&col, 1));
    }
}
