//! A dense bitmap used for null masks, row selections, and the
//! qualifying-sample bitmaps that are part of every Deep Sketch.

/// A fixed-length dense bitmap backed by `u64` words.
///
/// Bit `i` set means "row `i` is selected / qualifies".
///
/// ```
/// use ds_storage::bitmap::Bitmap;
/// let mut bm = Bitmap::new(100);
/// bm.set(3);
/// bm.set(64);
/// assert_eq!(bm.count_ones(), 2);
/// assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![3, 64]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates a bitmap of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bitmap of `len` bits, all set.
    pub fn all_set(len: usize) -> Self {
        let mut bm = Self {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        bm.clear_tail();
        bm
    }

    /// Number of bits in the bitmap.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn unset(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set (the paper's "0-tuple situation" when this is
    /// a qualifying-sample bitmap).
    pub fn is_all_clear(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn and_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn or_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Iterator over the indices of set bits, in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Converts the bitmap to one `f32` per bit (0.0 or 1.0), the encoding
    /// used by the MSCN featurizer.
    pub fn to_f32_vec(&self) -> Vec<f32> {
        (0..self.len)
            .map(|i| if self.get(i) { 1.0 } else { 0.0 })
            .collect()
    }

    /// Raw little-endian words (tail bits beyond `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bitmap from raw words and a bit length.
    ///
    /// # Panics
    /// Panics if `words` is not exactly `len.div_ceil(64)` long.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(words.len(), len.div_ceil(64), "word count mismatch");
        let mut bm = Self { words, len };
        bm.clear_tail();
        bm
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1 << tail) - 1;
            }
        }
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        let mut bm = Bitmap::new(bits.len());
        for (i, b) in bits.iter().enumerate() {
            if *b {
                bm.set(i);
            }
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_clear() {
        let bm = Bitmap::new(130);
        assert_eq!(bm.len(), 130);
        assert_eq!(bm.count_ones(), 0);
        assert!(bm.is_all_clear());
    }

    #[test]
    fn all_set_counts_every_bit() {
        for len in [0, 1, 63, 64, 65, 128, 130] {
            let bm = Bitmap::all_set(len);
            assert_eq!(bm.count_ones(), len, "len={len}");
        }
    }

    #[test]
    fn set_get_unset_roundtrip() {
        let mut bm = Bitmap::new(100);
        bm.set(0);
        bm.set(63);
        bm.set(64);
        bm.set(99);
        assert!(bm.get(0) && bm.get(63) && bm.get(64) && bm.get(99));
        assert!(!bm.get(1) && !bm.get(62) && !bm.get(65));
        bm.unset(63);
        assert!(!bm.get(63));
        assert_eq!(bm.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitmap::new(10).get(10);
    }

    #[test]
    fn and_or_semantics() {
        let a: Bitmap = [true, true, false, false].into_iter().collect();
        let b: Bitmap = [true, false, true, false].into_iter().collect();
        let mut and = a.clone();
        and.and_with(&b);
        assert_eq!(and.iter_ones().collect::<Vec<_>>(), vec![0]);
        let mut or = a.clone();
        or.or_with(&b);
        assert_eq!(or.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn iter_ones_crosses_word_boundaries() {
        let mut bm = Bitmap::new(200);
        let idx = [0usize, 5, 63, 64, 127, 128, 199];
        for &i in &idx {
            bm.set(i);
        }
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), idx);
    }

    #[test]
    fn to_f32_vec_matches_bits() {
        let bm: Bitmap = [true, false, true].into_iter().collect();
        assert_eq!(bm.to_f32_vec(), vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn words_roundtrip() {
        let mut bm = Bitmap::new(70);
        bm.set(3);
        bm.set(69);
        let rebuilt = Bitmap::from_words(bm.words().to_vec(), 70);
        assert_eq!(rebuilt, bm);
    }

    #[test]
    fn from_iter_collects() {
        let bm: Bitmap = (0..10).map(|i| i % 2 == 0).collect();
        assert_eq!(bm.count_ones(), 5);
        assert!(bm.get(0) && !bm.get(1));
    }
}
