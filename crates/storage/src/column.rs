//! Typed columnar storage.
//!
//! All attributes in the reproduced schemas (IMDb, TPC-H) are integer-valued
//! (ids, years, type codes, quantities), matching the featurization of the
//! paper which normalizes each literal into `[0, 1]` using the column's
//! min/max. A column stores `i64` values plus an optional null mask.

use crate::bitmap::Bitmap;

/// A single column of a [`crate::Table`]: a name, a dense `i64` vector, and
/// an optional null mask (bit set = value is NULL).
#[derive(Debug, Clone)]
pub struct Column {
    name: String,
    data: Vec<i64>,
    nulls: Option<Bitmap>,
}

impl Column {
    /// Creates a column without nulls.
    pub fn new(name: impl Into<String>, data: Vec<i64>) -> Self {
        Self {
            name: name.into(),
            data,
            nulls: None,
        }
    }

    /// Creates a column with a null mask. Positions flagged in `nulls` are
    /// treated as SQL NULL: they never satisfy any comparison predicate.
    ///
    /// # Panics
    /// Panics if the mask length differs from the data length.
    pub fn with_nulls(name: impl Into<String>, data: Vec<i64>, nulls: Bitmap) -> Self {
        assert_eq!(data.len(), nulls.len(), "null mask length mismatch");
        let nulls = if nulls.is_all_clear() {
            None
        } else {
            Some(nulls)
        };
        Self {
            name: name.into(),
            data,
            nulls,
        }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw values; positions that are NULL contain an unspecified value and
    /// must be checked with [`Column::is_null`].
    pub fn data(&self) -> &[i64] {
        &self.data
    }

    /// The null mask, if any row is NULL (serialization support).
    pub fn null_mask(&self) -> Option<&Bitmap> {
        self.nulls.as_ref()
    }

    /// True if row `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls.as_ref().is_some_and(|n| n.get(i))
    }

    /// The value at row `i`, or `None` for NULL.
    pub fn get(&self, i: usize) -> Option<i64> {
        if self.is_null(i) {
            None
        } else {
            Some(self.data[i])
        }
    }

    /// Fraction of NULL rows (PostgreSQL's `null_frac`).
    pub fn null_frac(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let nulls = self.nulls.as_ref().map_or(0, Bitmap::count_ones);
        nulls as f64 / self.data.len() as f64
    }

    /// Minimum and maximum non-NULL values, or `None` if all rows are NULL
    /// (or the column is empty). Used for literal normalization.
    pub fn min_max(&self) -> Option<(i64, i64)> {
        let mut mm: Option<(i64, i64)> = None;
        for i in 0..self.data.len() {
            if let Some(v) = self.get(i) {
                mm = Some(match mm {
                    None => (v, v),
                    Some((lo, hi)) => (lo.min(v), hi.max(v)),
                });
            }
        }
        mm
    }

    /// Exact number of distinct non-NULL values.
    pub fn n_distinct(&self) -> usize {
        let mut vals: Vec<i64> = (0..self.data.len()).filter_map(|i| self.get(i)).collect();
        vals.sort_unstable();
        vals.dedup();
        vals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col_with_null_at(pos: usize, data: Vec<i64>) -> Column {
        let mut nulls = Bitmap::new(data.len());
        nulls.set(pos);
        Column::with_nulls("c", data, nulls)
    }

    #[test]
    fn basic_accessors() {
        let c = Column::new("year", vec![1999, 2005, 2010]);
        assert_eq!(c.name(), "year");
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.get(1), Some(2005));
        assert_eq!(c.null_frac(), 0.0);
    }

    #[test]
    fn nulls_are_masked() {
        let c = col_with_null_at(1, vec![10, 20, 30]);
        assert_eq!(c.get(0), Some(10));
        assert_eq!(c.get(1), None);
        assert!(c.is_null(1));
        assert!((c.null_frac() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_skips_nulls() {
        let c = col_with_null_at(0, vec![-100, 5, 7]);
        assert_eq!(c.min_max(), Some((5, 7)));
    }

    #[test]
    fn min_max_empty_and_all_null() {
        assert_eq!(Column::new("c", vec![]).min_max(), None);
        let all_null = Column::with_nulls("c", vec![1], Bitmap::all_set(1));
        assert_eq!(all_null.min_max(), None);
    }

    #[test]
    fn n_distinct_ignores_nulls_and_dups() {
        let c = col_with_null_at(2, vec![1, 1, 99, 2, 2, 3]);
        assert_eq!(c.n_distinct(), 3);
    }

    #[test]
    fn all_clear_mask_is_dropped() {
        let c = Column::with_nulls("c", vec![1, 2], Bitmap::new(2));
        assert_eq!(c.null_frac(), 0.0);
        assert_eq!(c.get(0), Some(1));
    }
}
