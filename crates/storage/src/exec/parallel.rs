//! Parallel batch labeling of training queries.
//!
//! The demo executes training queries "(in parallel) on multiple HyPer
//! instances"; here one shared [`CountExecutor`] is driven by crossbeam
//! scoped threads over chunks of the query batch.

use crate::catalog::Database;

use super::query::{ExecError, ExecQuery};
use super::yannakakis::CountExecutor;

/// Executes all `queries` against `db`, returning one exact cardinality per
/// query (in order). Work is split across `threads` scoped worker threads
/// (values `<= 1` run inline).
pub fn count_batch(
    db: &Database,
    queries: &[ExecQuery],
    threads: usize,
) -> Result<Vec<u64>, ExecError> {
    let exec = CountExecutor::new();
    if threads <= 1 || queries.len() < 2 {
        return exec.count_all(db, queries);
    }

    let chunk = queries.len().div_ceil(threads);
    let results: Vec<Result<Vec<u64>, ExecError>> = crossbeam::scope(|s| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|qs| {
                let exec = &exec;
                s.spawn(move |_| exec.count_all(db, qs))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope panicked");

    let mut out = Vec::with_capacity(queries.len());
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColRef, ForeignKey, TableId};
    use crate::column::Column;
    use crate::exec::JoinEdge;
    use crate::predicate::{CmpOp, ColPredicate};
    use crate::table::Table;

    fn db() -> Database {
        let a = Table::new(
            "a",
            vec![
                Column::new("id", (0..100).collect()),
                Column::new("v", (0..100).map(|i| i % 10).collect()),
            ],
        );
        let b = Table::new(
            "b",
            vec![
                Column::new("a_id", (0..300).map(|i| i % 100).collect()),
                Column::new("w", (0..300).map(|i| i % 7).collect()),
            ],
        );
        Database::new(
            "p",
            vec![a, b],
            vec![ForeignKey {
                from: ColRef::new(TableId(1), 0),
                to: ColRef::new(TableId(0), 0),
            }],
        )
    }

    fn queries() -> Vec<ExecQuery> {
        (0..10)
            .map(|i| ExecQuery {
                tables: vec![TableId(0), TableId(1)],
                joins: vec![JoinEdge::new(
                    ColRef::new(TableId(1), 0),
                    ColRef::new(TableId(0), 0),
                )],
                predicates: vec![(TableId(0), ColPredicate::new(1, CmpOp::Eq, i % 10))],
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let db = db();
        let qs = queries();
        let seq = count_batch(&db, &qs, 1).unwrap();
        let par = count_batch(&db, &qs, 4).unwrap();
        assert_eq!(seq, par);
        // Each a.v value selects 10 a-rows, each with 3 b-rows.
        assert!(seq.iter().all(|&c| c == 30));
    }

    #[test]
    fn empty_batch() {
        let db = db();
        assert!(count_batch(&db, &[], 4).unwrap().is_empty());
    }

    #[test]
    fn error_propagates() {
        let db = db();
        let bad = ExecQuery {
            tables: vec![TableId(0), TableId(1)],
            joins: vec![],
            predicates: vec![],
        };
        assert_eq!(count_batch(&db, &[bad], 2), Err(ExecError::Disconnected));
    }
}
