//! A deliberately simple hash-join executor used as a differential-testing
//! oracle for [`super::CountExecutor`] and for the (rare) cyclic queries.
//!
//! It materializes intermediate results as tuples of row ids, so it is only
//! suitable for small inputs — exactly what tests need.

use std::collections::HashMap;

use crate::catalog::{Database, TableId};

use super::query::{ExecError, ExecQuery, JoinEdge};

/// Exact `COUNT(*)` by materializing hash joins. Quadratic-ish memory; test
/// use only.
#[derive(Debug, Default, Clone, Copy)]
pub struct NaiveExecutor;

impl NaiveExecutor {
    /// Creates a naive executor.
    pub fn new() -> Self {
        Self
    }

    /// Computes the exact result cardinality of `query` against `db` by
    /// materializing every intermediate join result.
    pub fn count(&self, db: &Database, query: &ExecQuery) -> Result<u64, ExecError> {
        query.validate(db)?;

        // Filter each table up front.
        let mut filtered: HashMap<TableId, Vec<u32>> = HashMap::new();
        for &t in &query.tables {
            filtered.insert(t, db.table(t).filter_rows(&query.preds_of(t)));
        }

        // Current intermediate result: which tables are bound (in order) and
        // the tuples of row ids.
        let first = query.tables[0];
        let mut bound: Vec<TableId> = vec![first];
        let mut tuples: Vec<Vec<u32>> = filtered[&first].iter().map(|&r| vec![r]).collect();
        let mut remaining_edges: Vec<JoinEdge> = query.joins.clone();

        while bound.len() < query.tables.len() || !remaining_edges.is_empty() {
            // Find an edge touching the bound set.
            let pos = remaining_edges
                .iter()
                .position(|e| {
                    let (a, b) = e.tables();
                    bound.contains(&a) || bound.contains(&b)
                })
                .ok_or(ExecError::Disconnected)?;
            let edge = remaining_edges.swap_remove(pos);
            let (a, b) = edge.tables();
            let (bound_side, new_side) = if bound.contains(&a) && bound.contains(&b) {
                // Cycle-closing edge: filter existing tuples instead of joining.
                let ia = bound.iter().position(|&t| t == a).expect("bound");
                let ib = bound.iter().position(|&t| t == b).expect("bound");
                let ca = edge.side_of(a).expect("edge side").col;
                let cb = edge.side_of(b).expect("edge side").col;
                let ta = db.table(a);
                let tb = db.table(b);
                tuples.retain(|tu| {
                    let va = ta.column(ca).get(tu[ia] as usize);
                    let vb = tb.column(cb).get(tu[ib] as usize);
                    matches!((va, vb), (Some(x), Some(y)) if x == y)
                });
                continue;
            } else if bound.contains(&a) {
                (
                    edge.side_of(a).expect("edge side"),
                    edge.side_of(b).expect("edge side"),
                )
            } else {
                (
                    edge.side_of(b).expect("edge side"),
                    edge.side_of(a).expect("edge side"),
                )
            };

            // Hash the new table's filtered rows by join key.
            let new_table = db.table(new_side.table);
            let mut hash: HashMap<i64, Vec<u32>> = HashMap::new();
            for &r in &filtered[&new_side.table] {
                if let Some(v) = new_table.column(new_side.col).get(r as usize) {
                    hash.entry(v).or_default().push(r);
                }
            }

            // Probe.
            let bi = bound
                .iter()
                .position(|&t| t == bound_side.table)
                .expect("bound side present");
            let bt = db.table(bound_side.table);
            let mut next = Vec::new();
            for tu in &tuples {
                let Some(v) = bt.column(bound_side.col).get(tu[bi] as usize) else {
                    continue;
                };
                if let Some(matches) = hash.get(&v) {
                    for &r in matches {
                        let mut t2 = tu.clone();
                        t2.push(r);
                        next.push(t2);
                    }
                }
            }
            tuples = next;
            bound.push(new_side.table);
        }

        Ok(tuples.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColRef, ForeignKey};
    use crate::column::Column;
    use crate::predicate::{CmpOp, ColPredicate};
    use crate::table::Table;

    fn e(a: usize, ac: usize, b: usize, bc: usize) -> JoinEdge {
        JoinEdge::new(ColRef::new(TableId(a), ac), ColRef::new(TableId(b), bc))
    }

    fn star_db() -> Database {
        let title = Table::new(
            "title",
            vec![
                Column::new("id", vec![1, 2, 3]),
                Column::new("year", vec![1990, 2000, 2010]),
            ],
        );
        let mk = Table::new(
            "mk",
            vec![
                Column::new("movie_id", vec![1, 1, 2, 3, 3, 3]),
                Column::new("kw", vec![10, 11, 10, 12, 10, 11]),
            ],
        );
        let fks = vec![ForeignKey {
            from: ColRef::new(TableId(1), 0),
            to: ColRef::new(TableId(0), 0),
        }];
        Database::new("star", vec![title, mk], fks)
    }

    #[test]
    fn matches_hand_counts() {
        let db = star_db();
        let q = ExecQuery {
            tables: vec![TableId(0), TableId(1)],
            joins: vec![e(1, 0, 0, 0)],
            predicates: vec![(TableId(1), ColPredicate::new(1, CmpOp::Eq, 10))],
        };
        assert_eq!(NaiveExecutor::new().count(&db, &q).unwrap(), 3);
    }

    #[test]
    fn single_table() {
        let db = star_db();
        let q = ExecQuery::single(TableId(0), vec![ColPredicate::new(1, CmpOp::Lt, 2005)]);
        assert_eq!(NaiveExecutor::new().count(&db, &q).unwrap(), 2);
    }

    #[test]
    fn cyclic_query_supported() {
        // Two parallel edges between the same tables form a cycle; the naive
        // executor treats the second as a filter.
        let a = Table::new(
            "a",
            vec![Column::new("x", vec![1, 2]), Column::new("y", vec![7, 8])],
        );
        let b = Table::new(
            "b",
            vec![
                Column::new("x", vec![1, 1, 2]),
                Column::new("y", vec![7, 9, 8]),
            ],
        );
        let db = Database::new("cyc", vec![a, b], vec![]);
        let q = ExecQuery {
            tables: vec![TableId(0), TableId(1)],
            joins: vec![e(0, 0, 1, 0), e(0, 1, 1, 1)],
            predicates: vec![],
        };
        // Matching on both x and y: (1,7) matches one b row, (2,8) one.
        assert_eq!(NaiveExecutor::new().count(&db, &q).unwrap(), 2);
    }

    #[test]
    fn agrees_with_yannakakis_on_star() {
        use super::super::CountExecutor;
        let db = star_db();
        let q = ExecQuery {
            tables: vec![TableId(0), TableId(1)],
            joins: vec![e(1, 0, 0, 0)],
            predicates: vec![(TableId(0), ColPredicate::new(1, CmpOp::Gt, 1995))],
        };
        let naive = NaiveExecutor::new().count(&db, &q).unwrap();
        let fast = CountExecutor::new().count(&db, &q).unwrap();
        assert_eq!(naive, fast);
    }
}
