//! Yannakakis-style exact counting for tree-shaped equi-join queries.
//!
//! For acyclic joins, `COUNT(*)` can be computed without materializing any
//! intermediate result: root the join tree anywhere, then in post-order each
//! table aggregates, per join-key value toward its parent, the number of
//! result combinations contributed by its subtree. The root sums the product
//! of incoming messages over its surviving rows. Every table is scanned
//! exactly once, so labeling tens of thousands of training queries stays
//! cheap even on large fact tables.
//!
//! Messages from *predicate-free leaf* tables depend only on (table, column),
//! so they are memoized in a shared cache — the dominant case in generated
//! workloads where satellite tables carry no predicate.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::catalog::{Database, TableId};
use crate::table::Table;

use super::query::{ExecError, ExecQuery, JoinEdge};

/// Per-join-key subtree counts, the "message" a table sends to its parent.
type Message = HashMap<i64, u64>;

/// Exact `COUNT(*)` executor for acyclic join queries.
///
/// The executor is cheap to clone conceptually but holds a memo cache; share
/// one instance (it is `Sync`) across threads.
#[derive(Debug, Default)]
pub struct CountExecutor {
    /// Cache of messages for predicate-free leaves keyed by (table, col).
    leaf_cache: Mutex<HashMap<(TableId, usize), Arc<Message>>>,
}

impl CountExecutor {
    /// Creates an executor with an empty memo cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the exact result cardinality of `query` against `db`.
    ///
    /// Returns an error if the query is malformed or its join graph is not a
    /// tree (see [`ExecError`]).
    pub fn count(&self, db: &Database, query: &ExecQuery) -> Result<u64, ExecError> {
        query.validate(db)?;
        if !query.is_tree() {
            return Err(ExecError::Cyclic);
        }
        if query.tables.len() == 1 {
            let t = query.tables[0];
            return Ok(db.table(t).filter_count(&query.preds_of(t)));
        }

        let tree = JoinTree::build(query);
        let mut total: u64 = 0;
        let mut memo: HashMap<TableId, Arc<Message>> = HashMap::new();

        // Post-order traversal (children before parents).
        for &t in tree.order.iter() {
            let preds = query.preds_of(t);
            let table = db.table(t);
            let children = &tree.children[&t];

            if t == tree.root {
                total = self.root_total(table, &preds, children, &mut memo);
            } else {
                let parent_edge = tree.parent_edge[&t];
                let key_col = parent_edge
                    .side_of(t)
                    .expect("parent edge must touch child")
                    .col;
                let msg = if preds.is_empty() && children.is_empty() {
                    // Hot path: predicate-free leaf — memoized per (table, col).
                    self.cached_leaf_message(db, t, key_col)
                } else {
                    Arc::new(Self::inner_message(
                        table, &preds, key_col, children, &mut memo,
                    ))
                };
                memo.insert(t, msg);
            }
        }
        Ok(total)
    }

    /// Convenience: labels a whole slice of queries sequentially.
    pub fn count_all(&self, db: &Database, queries: &[ExecQuery]) -> Result<Vec<u64>, ExecError> {
        queries.iter().map(|q| self.count(db, q)).collect()
    }

    fn cached_leaf_message(&self, db: &Database, t: TableId, key_col: usize) -> Arc<Message> {
        let key = (t, key_col);
        if let Some(m) = self.leaf_cache.lock().get(&key) {
            return Arc::clone(m);
        }
        let table = db.table(t);
        let col = table.column(key_col);
        let mut msg = Message::with_capacity(table.num_rows() / 2 + 1);
        for row in 0..table.num_rows() {
            if let Some(v) = col.get(row) {
                *msg.entry(v).or_insert(0) += 1;
            }
        }
        let msg = Arc::new(msg);
        self.leaf_cache
            .lock()
            .entry(key)
            .or_insert_with(|| Arc::clone(&msg));
        msg
    }

    /// Message of an inner (or predicated leaf) node: per `key_col` value,
    /// the sum over qualifying rows of the product of child-message weights.
    fn inner_message(
        table: &Table,
        preds: &[crate::predicate::ColPredicate],
        key_col: usize,
        children: &[(TableId, JoinEdge)],
        memo: &mut HashMap<TableId, Arc<Message>>,
    ) -> Message {
        let key_column = table.column(key_col);
        let child_cols: Vec<(usize, Arc<Message>)> = children
            .iter()
            .map(|(child, edge)| {
                // The edge touches this table on the side that is NOT the child.
                let my_side = edge
                    .other_side(*child)
                    .expect("child edge must touch child")
                    .col;
                (
                    my_side,
                    memo.remove(child).expect("child processed before parent"),
                )
            })
            .collect();

        let mut out = Message::new();
        'rows: for row in 0..table.num_rows() {
            for p in preds {
                if !p.eval_row(table.column(p.col), row) {
                    continue 'rows;
                }
            }
            let Some(key) = key_column.get(row) else {
                continue;
            };
            let mut weight: u64 = 1;
            for (my_col, msg) in &child_cols {
                let Some(v) = table.column(*my_col).get(row) else {
                    continue 'rows;
                };
                match msg.get(&v) {
                    Some(&w) if w > 0 => weight = weight.saturating_mul(w),
                    _ => continue 'rows,
                }
            }
            let slot = out.entry(key).or_insert(0);
            *slot = slot.saturating_add(weight);
        }
        out
    }

    /// Total at the root: sum over qualifying rows of the product of child
    /// message weights.
    fn root_total(
        &self,
        table: &Table,
        preds: &[crate::predicate::ColPredicate],
        children: &[(TableId, JoinEdge)],
        memo: &mut HashMap<TableId, Arc<Message>>,
    ) -> u64 {
        let child_cols: Vec<(usize, Arc<Message>)> = children
            .iter()
            .map(|(child, edge)| {
                let my_side = edge
                    .other_side(*child)
                    .expect("child edge must touch child")
                    .col;
                (
                    my_side,
                    memo.remove(child).expect("child processed before parent"),
                )
            })
            .collect();

        let mut total: u64 = 0;
        'rows: for row in 0..table.num_rows() {
            for p in preds {
                if !p.eval_row(table.column(p.col), row) {
                    continue 'rows;
                }
            }
            let mut weight: u64 = 1;
            for (my_col, msg) in &child_cols {
                let Some(v) = table.column(*my_col).get(row) else {
                    continue 'rows;
                };
                match msg.get(&v) {
                    Some(&w) if w > 0 => weight = weight.saturating_mul(w),
                    _ => continue 'rows,
                }
            }
            total = total.saturating_add(weight);
        }
        total
    }
}

/// A rooted join tree: processing order (post-order), children lists, and
/// the edge to each node's parent.
struct JoinTree {
    root: TableId,
    /// Post-order: all children appear before their parent; root is last.
    order: Vec<TableId>,
    children: HashMap<TableId, Vec<(TableId, JoinEdge)>>,
    parent_edge: HashMap<TableId, JoinEdge>,
}

impl JoinTree {
    fn build(query: &ExecQuery) -> Self {
        let root = query.tables[0];
        let mut adj: HashMap<TableId, Vec<(TableId, JoinEdge)>> = HashMap::new();
        for &t in &query.tables {
            adj.entry(t).or_default();
        }
        for &e in &query.joins {
            let (a, b) = e.tables();
            adj.get_mut(&a).expect("validated").push((b, e));
            adj.get_mut(&b).expect("validated").push((a, e));
        }

        let mut children: HashMap<TableId, Vec<(TableId, JoinEdge)>> = HashMap::new();
        let mut parent_edge: HashMap<TableId, JoinEdge> = HashMap::new();
        let mut order = Vec::with_capacity(query.tables.len());
        // Iterative DFS computing post-order.
        let mut stack = vec![(root, None::<TableId>, false)];
        while let Some((t, parent, expanded)) = stack.pop() {
            if expanded {
                order.push(t);
                continue;
            }
            stack.push((t, parent, true));
            children.entry(t).or_default();
            for &(n, e) in adj[&t].iter() {
                if Some(n) != parent {
                    children.entry(t).or_default().push((n, e));
                    parent_edge.insert(n, e);
                    stack.push((n, Some(t), false));
                }
            }
        }
        JoinTree {
            root,
            order,
            children,
            parent_edge,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColRef, Database, ForeignKey};
    use crate::column::Column;
    use crate::predicate::{CmpOp, ColPredicate};
    use crate::table::Table;

    /// title(id, year) with movie_keyword(movie_id, kw) and
    /// cast_info(movie_id, role) — a small star schema with known counts.
    fn star_db() -> Database {
        let title = Table::new(
            "title",
            vec![
                Column::new("id", vec![1, 2, 3]),
                Column::new("year", vec![1990, 2000, 2010]),
            ],
        );
        let mk = Table::new(
            "mk",
            vec![
                Column::new("movie_id", vec![1, 1, 2, 3, 3, 3]),
                Column::new("kw", vec![10, 11, 10, 12, 10, 11]),
            ],
        );
        let ci = Table::new(
            "ci",
            vec![
                Column::new("movie_id", vec![1, 2, 2, 3]),
                Column::new("role", vec![1, 1, 2, 1]),
            ],
        );
        let fks = vec![
            ForeignKey {
                from: ColRef::new(TableId(1), 0),
                to: ColRef::new(TableId(0), 0),
            },
            ForeignKey {
                from: ColRef::new(TableId(2), 0),
                to: ColRef::new(TableId(0), 0),
            },
        ];
        Database::new("star", vec![title, mk, ci], fks)
    }

    fn e(a: usize, ac: usize, b: usize, bc: usize) -> JoinEdge {
        JoinEdge::new(ColRef::new(TableId(a), ac), ColRef::new(TableId(b), bc))
    }

    #[test]
    fn single_table_count() {
        let db = star_db();
        let exec = CountExecutor::new();
        let q = ExecQuery::single(TableId(0), vec![ColPredicate::new(1, CmpOp::Gt, 1995)]);
        assert_eq!(exec.count(&db, &q).unwrap(), 2);
    }

    #[test]
    fn two_way_join_no_predicates() {
        let db = star_db();
        let exec = CountExecutor::new();
        let q = ExecQuery {
            tables: vec![TableId(0), TableId(1)],
            joins: vec![e(1, 0, 0, 0)],
            predicates: vec![],
        };
        // |title ⋈ mk| = 6 (every mk row matches exactly one title).
        assert_eq!(exec.count(&db, &q).unwrap(), 6);
    }

    #[test]
    fn star_join_multiplies_fanouts() {
        let db = star_db();
        let exec = CountExecutor::new();
        let q = ExecQuery {
            tables: vec![TableId(0), TableId(1), TableId(2)],
            joins: vec![e(1, 0, 0, 0), e(2, 0, 0, 0)],
            predicates: vec![],
        };
        // movie 1: 2 mk × 1 ci = 2; movie 2: 1 × 2 = 2; movie 3: 3 × 1 = 3.
        assert_eq!(exec.count(&db, &q).unwrap(), 7);
    }

    #[test]
    fn predicates_on_satellite_and_root() {
        let db = star_db();
        let exec = CountExecutor::new();
        let q = ExecQuery {
            tables: vec![TableId(0), TableId(1)],
            joins: vec![e(1, 0, 0, 0)],
            predicates: vec![
                (TableId(1), ColPredicate::new(1, CmpOp::Eq, 10)),
                (TableId(0), ColPredicate::new(1, CmpOp::Lt, 2005)),
            ],
        };
        // kw=10 rows: movies 1, 2, 3; year<2005 keeps movies 1, 2 → 2 rows.
        assert_eq!(exec.count(&db, &q).unwrap(), 2);
    }

    #[test]
    fn empty_result_is_zero() {
        let db = star_db();
        let exec = CountExecutor::new();
        let q = ExecQuery {
            tables: vec![TableId(0), TableId(1)],
            joins: vec![e(1, 0, 0, 0)],
            predicates: vec![(TableId(1), ColPredicate::new(1, CmpOp::Eq, 999))],
        };
        assert_eq!(exec.count(&db, &q).unwrap(), 0);
    }

    #[test]
    fn cyclic_join_is_rejected() {
        let db = star_db();
        let exec = CountExecutor::new();
        let q = ExecQuery {
            tables: vec![TableId(0), TableId(1)],
            joins: vec![e(1, 0, 0, 0), e(1, 1, 0, 1)],
            predicates: vec![],
        };
        assert_eq!(exec.count(&db, &q), Err(ExecError::Cyclic));
    }

    #[test]
    fn chain_join_three_tables() {
        // a(id) ← b(a_id, id) ← c(b_id): chain, not star.
        let a = Table::new("a", vec![Column::new("id", vec![1, 2])]);
        let b = Table::new(
            "b",
            vec![
                Column::new("a_id", vec![1, 1, 2]),
                Column::new("id", vec![10, 11, 12]),
            ],
        );
        let c = Table::new("c", vec![Column::new("b_id", vec![10, 10, 11, 12, 12, 12])]);
        let fks = vec![
            ForeignKey {
                from: ColRef::new(TableId(1), 0),
                to: ColRef::new(TableId(0), 0),
            },
            ForeignKey {
                from: ColRef::new(TableId(2), 0),
                to: ColRef::new(TableId(1), 1),
            },
        ];
        let db = Database::new("chain", vec![a, b, c], fks);
        let exec = CountExecutor::new();
        let q = ExecQuery {
            tables: vec![TableId(0), TableId(1), TableId(2)],
            joins: vec![e(1, 0, 0, 0), e(2, 0, 1, 1)],
            predicates: vec![],
        };
        // b=10 → 2 c rows; b=11 → 1; b=12 → 3. All a-links exist → 6.
        assert_eq!(exec.count(&db, &q).unwrap(), 6);
    }

    #[test]
    fn leaf_cache_is_reused_and_correct() {
        let db = star_db();
        let exec = CountExecutor::new();
        let q = ExecQuery {
            tables: vec![TableId(0), TableId(1)],
            joins: vec![e(1, 0, 0, 0)],
            predicates: vec![],
        };
        let first = exec.count(&db, &q).unwrap();
        let second = exec.count(&db, &q).unwrap();
        assert_eq!(first, second);
        assert_eq!(exec.leaf_cache.lock().len(), 1);
    }

    #[test]
    fn nulls_in_join_keys_do_not_match() {
        use crate::bitmap::Bitmap;
        let a = Table::new("a", vec![Column::new("id", vec![1, 2])]);
        let mut nulls = Bitmap::new(3);
        nulls.set(2);
        let b = Table::new("b", vec![Column::with_nulls("a_id", vec![1, 2, 1], nulls)]);
        let db = Database::new(
            "n",
            vec![a, b],
            vec![ForeignKey {
                from: ColRef::new(TableId(1), 0),
                to: ColRef::new(TableId(0), 0),
            }],
        );
        let exec = CountExecutor::new();
        let q = ExecQuery {
            tables: vec![TableId(0), TableId(1)],
            joins: vec![e(1, 0, 0, 0)],
            predicates: vec![],
        };
        assert_eq!(exec.count(&db, &q).unwrap(), 2);
    }
}
