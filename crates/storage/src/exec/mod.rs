//! Exact `COUNT(*)` execution of select-project-join queries.
//!
//! This is the reproduction's stand-in for HyPer: it computes the true
//! cardinalities used as training labels (step 3 of Figure 1a) and as the
//! ground truth in every experiment.
//!
//! Two engines are provided:
//!
//! * [`CountExecutor`] — production path. Counts acyclic (tree-shaped)
//!   equi-join queries in one pass per table using Yannakakis-style
//!   message passing: each table sends its parent a `join-key → count`
//!   map, so no intermediate join result is ever materialized.
//! * [`NaiveExecutor`] — an intentionally simple hash-join engine that
//!   materializes intermediate results. It exists to differentially test
//!   the production path and for (small) cyclic queries.
//!
//! [`count_batch`] executes many queries in parallel with crossbeam scoped
//! threads, mirroring the demo's use of "multiple HyPer instances" for
//! training-label generation.

mod naive;
mod parallel;
mod query;
mod yannakakis;

pub use naive::NaiveExecutor;
pub use parallel::count_batch;
pub use query::{ExecError, ExecQuery, JoinEdge};
pub use yannakakis::CountExecutor;
