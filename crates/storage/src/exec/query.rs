//! The executable form of a query: a set of tables, equi-join edges, and
//! per-table conjunctive predicates.

use std::collections::{HashMap, HashSet};

use crate::catalog::{ColRef, Database, TableId};
use crate::predicate::ColPredicate;

/// An equi-join `left = right` between columns of two different tables.
/// The edge is undirected; executors orient it as needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JoinEdge {
    /// One side of the equality.
    pub left: ColRef,
    /// The other side of the equality.
    pub right: ColRef,
}

impl JoinEdge {
    /// Creates a join edge.
    pub fn new(left: ColRef, right: ColRef) -> Self {
        Self { left, right }
    }

    /// The two tables this edge connects.
    pub fn tables(&self) -> (TableId, TableId) {
        (self.left.table, self.right.table)
    }

    /// Returns the column of this edge that belongs to `t`, if any.
    pub fn side_of(&self, t: TableId) -> Option<ColRef> {
        if self.left.table == t {
            Some(self.left)
        } else if self.right.table == t {
            Some(self.right)
        } else {
            None
        }
    }

    /// Returns the column of the *other* side relative to table `t`, if `t`
    /// participates in this edge.
    pub fn other_side(&self, t: TableId) -> Option<ColRef> {
        if self.left.table == t {
            Some(self.right)
        } else if self.right.table == t {
            Some(self.left)
        } else {
            None
        }
    }

    /// A canonical form with sides ordered by (table, col), so that the same
    /// logical join always featurizes to the same one-hot id.
    pub fn canonical(&self) -> JoinEdge {
        if (self.left.table, self.left.col) <= (self.right.table, self.right.col) {
            *self
        } else {
            JoinEdge::new(self.right, self.left)
        }
    }
}

/// Errors raised by executors when a query is malformed for the chosen
/// algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The query references no tables.
    NoTables,
    /// The same table appears twice (self-joins are out of scope, as in
    /// JOB-light).
    DuplicateTable(TableId),
    /// A join edge or predicate references a table not in the table set.
    UnknownTable(TableId),
    /// A join edge joins a table with itself.
    SelfJoin(TableId),
    /// The join graph does not connect all tables.
    Disconnected,
    /// The join graph contains a cycle (the Yannakakis counter requires a
    /// tree; use [`super::NaiveExecutor`] instead).
    Cyclic,
    /// A predicate references a column index out of range for its table.
    BadColumn(TableId, usize),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::NoTables => write!(f, "query has no tables"),
            ExecError::DuplicateTable(t) => write!(f, "table {t:?} appears twice"),
            ExecError::UnknownTable(t) => write!(f, "reference to table {t:?} outside table set"),
            ExecError::SelfJoin(t) => write!(f, "join edge joins table {t:?} with itself"),
            ExecError::Disconnected => write!(f, "join graph is disconnected"),
            ExecError::Cyclic => write!(f, "join graph is cyclic"),
            ExecError::BadColumn(t, c) => write!(f, "column {c} out of range for table {t:?}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The executable form of a `SELECT COUNT(*)` query.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct ExecQuery {
    /// Distinct tables referenced by the query.
    pub tables: Vec<TableId>,
    /// Equi-join edges; must form a spanning tree over `tables` for the
    /// Yannakakis executor.
    pub joins: Vec<JoinEdge>,
    /// Base-table predicates, each attached to its table.
    pub predicates: Vec<(TableId, ColPredicate)>,
}

impl ExecQuery {
    /// Single-table query with predicates.
    pub fn single(table: TableId, preds: Vec<ColPredicate>) -> Self {
        Self {
            tables: vec![table],
            joins: vec![],
            predicates: preds.into_iter().map(|p| (table, p)).collect(),
        }
    }

    /// Predicates attached to `t`.
    pub fn preds_of(&self, t: TableId) -> Vec<ColPredicate> {
        self.predicates
            .iter()
            .filter(|(tid, _)| *tid == t)
            .map(|(_, p)| p.clone())
            .collect()
    }

    /// Validates structural invariants shared by all executors: non-empty
    /// distinct table set, known tables in joins/predicates, in-range
    /// predicate columns, and a connected join graph.
    pub fn validate(&self, db: &Database) -> Result<(), ExecError> {
        if self.tables.is_empty() {
            return Err(ExecError::NoTables);
        }
        let mut seen = HashSet::new();
        for &t in &self.tables {
            if !seen.insert(t) {
                return Err(ExecError::DuplicateTable(t));
            }
        }
        for j in &self.joins {
            let (a, b) = j.tables();
            if a == b {
                return Err(ExecError::SelfJoin(a));
            }
            for cr in [j.left, j.right] {
                if !seen.contains(&cr.table) {
                    return Err(ExecError::UnknownTable(cr.table));
                }
                if cr.col >= db.table(cr.table).columns().len() {
                    return Err(ExecError::BadColumn(cr.table, cr.col));
                }
            }
        }
        for (t, p) in &self.predicates {
            if !seen.contains(t) {
                return Err(ExecError::UnknownTable(*t));
            }
            if p.col >= db.table(*t).columns().len() {
                return Err(ExecError::BadColumn(*t, p.col));
            }
        }
        if !self.is_connected() {
            return Err(ExecError::Disconnected);
        }
        Ok(())
    }

    /// True when the join edges connect all tables into one component.
    pub fn is_connected(&self) -> bool {
        if self.tables.len() <= 1 {
            return true;
        }
        let mut adj: HashMap<TableId, Vec<TableId>> = HashMap::new();
        for j in &self.joins {
            let (a, b) = j.tables();
            adj.entry(a).or_default().push(b);
            adj.entry(b).or_default().push(a);
        }
        let mut visited = HashSet::new();
        let mut stack = vec![self.tables[0]];
        while let Some(t) = stack.pop() {
            if visited.insert(t) {
                if let Some(ns) = adj.get(&t) {
                    stack.extend(ns.iter().copied());
                }
            }
        }
        self.tables.iter().all(|t| visited.contains(t))
    }

    /// True when the join graph is a tree over the tables (connected and
    /// |edges| == |tables| - 1).
    pub fn is_tree(&self) -> bool {
        self.is_connected() && self.joins.len() + 1 == self.tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Database, ForeignKey};
    use crate::column::Column;
    use crate::predicate::CmpOp;
    use crate::table::Table;

    fn db3() -> Database {
        let a = Table::new("a", vec![Column::new("id", vec![1, 2])]);
        let b = Table::new(
            "b",
            vec![
                Column::new("a_id", vec![1, 1, 2]),
                Column::new("x", vec![5, 6, 7]),
            ],
        );
        let c = Table::new("c", vec![Column::new("a_id", vec![2, 2])]);
        let fks = vec![
            ForeignKey {
                from: ColRef::new(TableId(1), 0),
                to: ColRef::new(TableId(0), 0),
            },
            ForeignKey {
                from: ColRef::new(TableId(2), 0),
                to: ColRef::new(TableId(0), 0),
            },
        ];
        Database::new("t3", vec![a, b, c], fks)
    }

    fn edge(a: usize, ac: usize, b: usize, bc: usize) -> JoinEdge {
        JoinEdge::new(ColRef::new(TableId(a), ac), ColRef::new(TableId(b), bc))
    }

    #[test]
    fn canonical_ordering() {
        let e = edge(1, 0, 0, 0);
        let c = e.canonical();
        assert_eq!(c.left.table, TableId(0));
        assert_eq!(c, c.canonical());
        assert_eq!(edge(0, 0, 1, 0).canonical(), c);
    }

    #[test]
    fn side_lookups() {
        let e = edge(0, 0, 1, 0);
        assert_eq!(e.side_of(TableId(0)), Some(ColRef::new(TableId(0), 0)));
        assert_eq!(e.other_side(TableId(0)), Some(ColRef::new(TableId(1), 0)));
        assert_eq!(e.side_of(TableId(9)), None);
        assert_eq!(e.other_side(TableId(9)), None);
    }

    #[test]
    fn validate_accepts_star() {
        let db = db3();
        let q = ExecQuery {
            tables: vec![TableId(0), TableId(1), TableId(2)],
            joins: vec![edge(1, 0, 0, 0), edge(2, 0, 0, 0)],
            predicates: vec![(TableId(1), ColPredicate::new(1, CmpOp::Gt, 5))],
        };
        assert_eq!(q.validate(&db), Ok(()));
        assert!(q.is_tree());
    }

    #[test]
    fn validate_rejects_malformed() {
        let db = db3();
        let empty = ExecQuery::default();
        assert_eq!(empty.validate(&db), Err(ExecError::NoTables));

        let dup = ExecQuery {
            tables: vec![TableId(0), TableId(0)],
            ..Default::default()
        };
        assert_eq!(
            dup.validate(&db),
            Err(ExecError::DuplicateTable(TableId(0)))
        );

        let disc = ExecQuery {
            tables: vec![TableId(0), TableId(1)],
            ..Default::default()
        };
        assert_eq!(disc.validate(&db), Err(ExecError::Disconnected));

        let selfjoin = ExecQuery {
            tables: vec![TableId(0)],
            joins: vec![edge(0, 0, 0, 0)],
            ..Default::default()
        };
        assert_eq!(selfjoin.validate(&db), Err(ExecError::SelfJoin(TableId(0))));

        let badcol = ExecQuery {
            tables: vec![TableId(0)],
            predicates: vec![(TableId(0), ColPredicate::new(7, CmpOp::Eq, 1))],
            ..Default::default()
        };
        assert_eq!(
            badcol.validate(&db),
            Err(ExecError::BadColumn(TableId(0), 7))
        );

        let unknown_pred = ExecQuery {
            tables: vec![TableId(0)],
            predicates: vec![(TableId(2), ColPredicate::new(0, CmpOp::Eq, 1))],
            ..Default::default()
        };
        assert_eq!(
            unknown_pred.validate(&db),
            Err(ExecError::UnknownTable(TableId(2)))
        );
    }

    #[test]
    fn preds_of_filters_by_table() {
        let q = ExecQuery {
            tables: vec![TableId(0), TableId(1)],
            joins: vec![edge(1, 0, 0, 0)],
            predicates: vec![
                (TableId(0), ColPredicate::new(0, CmpOp::Eq, 1)),
                (TableId(1), ColPredicate::new(1, CmpOp::Lt, 7)),
                (TableId(0), ColPredicate::new(0, CmpOp::Gt, 0)),
            ],
        };
        assert_eq!(q.preds_of(TableId(0)).len(), 2);
        assert_eq!(q.preds_of(TableId(1)).len(), 1);
    }

    #[test]
    fn single_table_is_trivially_connected() {
        let q = ExecQuery::single(TableId(0), vec![]);
        assert!(q.is_connected());
        assert!(q.is_tree());
    }
}
