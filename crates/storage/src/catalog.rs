//! The database catalog: tables plus PK/FK join metadata.
//!
//! The demo UI adds join predicates automatically "based on the single PK/FK
//! relationships that exist between tables"; [`Database::fk_between`] provides
//! exactly that lookup.

use std::collections::HashMap;

use crate::table::Table;

/// Dense identifier of a table within a [`Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub usize);

/// A column reference: (table, column index within that table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColRef {
    /// Owning table.
    pub table: TableId,
    /// Column index within the table.
    pub col: usize,
}

impl ColRef {
    /// Creates a column reference.
    pub fn new(table: TableId, col: usize) -> Self {
        Self { table, col }
    }
}

/// A foreign-key relationship `from.from_col → to.to_col` (the `to` side is
/// the primary key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ForeignKey {
    /// Referencing column (e.g. `movie_keyword.movie_id`).
    pub from: ColRef,
    /// Referenced primary-key column (e.g. `title.id`).
    pub to: ColRef,
}

/// A named collection of tables plus PK/FK metadata. This is the unit a Deep
/// Sketch is built over.
#[derive(Debug, Clone)]
pub struct Database {
    name: String,
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
    fks: Vec<ForeignKey>,
}

impl Database {
    /// Creates a database.
    ///
    /// # Panics
    /// Panics on duplicate table names or foreign keys referencing
    /// nonexistent tables/columns.
    pub fn new(name: impl Into<String>, tables: Vec<Table>, fks: Vec<ForeignKey>) -> Self {
        let name = name.into();
        let mut by_name = HashMap::with_capacity(tables.len());
        for (i, t) in tables.iter().enumerate() {
            let prev = by_name.insert(t.name().to_string(), TableId(i));
            assert!(prev.is_none(), "duplicate table {} in {name}", t.name());
        }
        for fk in &fks {
            for cr in [fk.from, fk.to] {
                let t = tables
                    .get(cr.table.0)
                    .unwrap_or_else(|| panic!("FK references unknown table {:?}", cr.table));
                assert!(
                    cr.col < t.columns().len(),
                    "FK references unknown column {} of {}",
                    cr.col,
                    t.name()
                );
            }
        }
        Self {
            name,
            tables,
            by_name,
            fks,
        }
    }

    /// Database name (e.g. `"imdb"`, `"tpch"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All tables.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Table by id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0]
    }

    /// Table id by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).copied()
    }

    /// All foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.fks
    }

    /// The single FK joining tables `a` and `b` in either direction, if one
    /// exists. This mirrors the demo's automatic join-predicate insertion.
    pub fn fk_between(&self, a: TableId, b: TableId) -> Option<ForeignKey> {
        self.fks.iter().copied().find(|fk| {
            (fk.from.table == a && fk.to.table == b) || (fk.from.table == b && fk.to.table == a)
        })
    }

    /// Resolves `"table.column"` (e.g. `"title.production_year"`).
    pub fn resolve(&self, qualified: &str) -> Option<ColRef> {
        let (t, c) = qualified.split_once('.')?;
        let tid = self.table_id(t)?;
        let col = self.table(tid).column_index(c)?;
        Some(ColRef::new(tid, col))
    }

    /// Human-readable `table.column` for a [`ColRef`].
    pub fn col_name(&self, cr: ColRef) -> String {
        let t = self.table(cr.table);
        format!("{}.{}", t.name(), t.column(cr.col).name())
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::num_rows).sum()
    }

    /// Checks referential integrity of every declared foreign key and
    /// returns human-readable issues (dangling keys, duplicate PK values).
    /// Useful after importing external CSV data.
    pub fn validate_foreign_keys(&self) -> Vec<String> {
        let mut issues = Vec::new();
        for fk in &self.fks {
            let to_table = self.table(fk.to.table);
            let to_col = to_table.column(fk.to.col);
            let mut keys = std::collections::HashSet::with_capacity(to_table.num_rows());
            let mut dup = 0usize;
            for r in 0..to_table.num_rows() {
                if let Some(v) = to_col.get(r) {
                    if !keys.insert(v) {
                        dup += 1;
                    }
                }
            }
            if dup > 0 {
                issues.push(format!(
                    "{} has {dup} duplicate key value(s) referenced by {}",
                    self.col_name(fk.to),
                    self.col_name(fk.from)
                ));
            }
            let from_table = self.table(fk.from.table);
            let from_col = from_table.column(fk.from.col);
            let dangling = (0..from_table.num_rows())
                .filter_map(|r| from_col.get(r))
                .filter(|v| !keys.contains(v))
                .count();
            if dangling > 0 {
                issues.push(format!(
                    "{} has {dangling} dangling reference(s) into {}",
                    self.col_name(fk.from),
                    self.col_name(fk.to)
                ));
            }
        }
        issues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn db() -> Database {
        let title = Table::new(
            "title",
            vec![
                Column::new("id", vec![1, 2, 3]),
                Column::new("year", vec![1990, 2000, 2010]),
            ],
        );
        let mk = Table::new(
            "movie_keyword",
            vec![
                Column::new("movie_id", vec![1, 1, 2, 3]),
                Column::new("keyword_id", vec![10, 11, 10, 12]),
            ],
        );
        let fk = ForeignKey {
            from: ColRef::new(TableId(1), 0),
            to: ColRef::new(TableId(0), 0),
        };
        Database::new("mini", vec![title, mk], vec![fk])
    }

    #[test]
    fn lookups() {
        let d = db();
        assert_eq!(d.name(), "mini");
        assert_eq!(d.num_tables(), 2);
        assert_eq!(d.table_id("title"), Some(TableId(0)));
        assert_eq!(d.table_id("zzz"), None);
        assert_eq!(d.table(TableId(1)).name(), "movie_keyword");
        assert_eq!(d.total_rows(), 7);
    }

    #[test]
    fn fk_between_is_direction_agnostic() {
        let d = db();
        let fk = d.fk_between(TableId(0), TableId(1)).unwrap();
        assert_eq!(fk.from.table, TableId(1));
        assert_eq!(d.fk_between(TableId(1), TableId(0)), Some(fk));
        assert_eq!(d.fk_between(TableId(0), TableId(0)), None);
    }

    #[test]
    fn resolve_qualified_names() {
        let d = db();
        let cr = d.resolve("title.year").unwrap();
        assert_eq!(cr, ColRef::new(TableId(0), 1));
        assert_eq!(d.col_name(cr), "title.year");
        assert!(d.resolve("title.nope").is_none());
        assert!(d.resolve("nope.year").is_none());
        assert!(d.resolve("noseparator").is_none());
    }

    #[test]
    fn validate_foreign_keys_flags_issues() {
        let d = db();
        assert!(d.validate_foreign_keys().is_empty(), "clean schema");

        // Dangling reference: movie_id 99 has no title.
        let title = Table::new("title", vec![Column::new("id", vec![1, 1])]);
        let mk = Table::new("movie_keyword", vec![Column::new("movie_id", vec![1, 99])]);
        let fk = ForeignKey {
            from: ColRef::new(TableId(1), 0),
            to: ColRef::new(TableId(0), 0),
        };
        let bad = Database::new("bad", vec![title, mk], vec![fk]);
        let issues = bad.validate_foreign_keys();
        assert_eq!(issues.len(), 2, "{issues:?}");
        assert!(issues.iter().any(|i| i.contains("duplicate")));
        assert!(issues.iter().any(|i| i.contains("dangling")));
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn bad_fk_panics() {
        let t = Table::new("t", vec![Column::new("a", vec![1])]);
        let fk = ForeignKey {
            from: ColRef::new(TableId(0), 5),
            to: ColRef::new(TableId(0), 0),
        };
        Database::new("x", vec![t], vec![fk]);
    }
}
