//! Materialized base-table samples.
//!
//! A Deep Sketch ships, for every base table, a uniform sample of (e.g.)
//! 1000 tuples. At featurization time each base-table selection is executed
//! against its sample, yielding a bitmap of qualifying sample tuples that is
//! fed to the MSCN model; at template-instantiation time literals are drawn
//! from the sample's columns.

use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

use crate::bitmap::Bitmap;
use crate::catalog::{Database, TableId};
use crate::predicate::ColPredicate;
use crate::table::Table;

/// A materialized uniform sample of one base table.
#[derive(Debug, Clone)]
pub struct TableSample {
    table_id: TableId,
    /// Row ids of the sampled rows in the base table.
    row_ids: Vec<u32>,
    /// The sampled rows, materialized as a mini-table for fast scans.
    rows: Table,
    /// Nominal sample size the sketch was configured with; the bitmap is
    /// always this long even if the base table is smaller.
    nominal_size: usize,
}

impl TableSample {
    /// Draws a uniform sample (without replacement) of up to `size` rows.
    /// Deterministic for a given `seed`.
    pub fn draw(db: &Database, table_id: TableId, size: usize, seed: u64) -> Self {
        let table = db.table(table_id);
        let n = table.num_rows();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let mut rng =
            StdRng::seed_from_u64(seed ^ (table_id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        ids.shuffle(&mut rng);
        ids.truncate(size.min(n));
        ids.sort_unstable(); // stable row order for reproducible bitmaps
        let rows = table.project_rows(&ids);
        Self {
            table_id,
            row_ids: ids,
            rows,
            nominal_size: size,
        }
    }

    /// Reassembles a sample from its parts (sketch deserialization). The
    /// materialized `rows` table must have one row per entry of `row_ids`.
    ///
    /// # Panics
    /// Panics if `rows.num_rows() != row_ids.len()` or the nominal size is
    /// smaller than the materialized row count.
    pub fn from_parts(
        table_id: TableId,
        row_ids: Vec<u32>,
        rows: Table,
        nominal_size: usize,
    ) -> Self {
        assert_eq!(rows.num_rows(), row_ids.len(), "sample row count mismatch");
        assert!(nominal_size >= row_ids.len(), "nominal size too small");
        Self {
            table_id,
            row_ids,
            rows,
            nominal_size,
        }
    }

    /// The sampled table's id.
    pub fn table_id(&self) -> TableId {
        self.table_id
    }

    /// Number of materialized sample rows (≤ nominal size).
    pub fn len(&self) -> usize {
        self.rows.num_rows()
    }

    /// True if the sample holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.num_rows() == 0
    }

    /// Nominal (configured) sample size; this is the bitmap length used by
    /// the featurizer.
    pub fn nominal_size(&self) -> usize {
        self.nominal_size
    }

    /// Base-table row ids of the sample.
    pub fn row_ids(&self) -> &[u32] {
        &self.row_ids
    }

    /// The materialized sample rows.
    pub fn rows(&self) -> &Table {
        &self.rows
    }

    /// Evaluates a conjunction of predicates against the sample, returning a
    /// bitmap of `nominal_size` bits (bits past the materialized rows stay
    /// clear). This is the bitmap input of the MSCN model.
    pub fn qualifying_bitmap(&self, preds: &[ColPredicate]) -> Bitmap {
        let mut bm = Bitmap::new(self.nominal_size);
        'rows: for row in 0..self.rows.num_rows() {
            for p in preds {
                if !p.eval_row(self.rows.column(p.col), row) {
                    continue 'rows;
                }
            }
            bm.set(row);
        }
        bm
    }

    /// Estimated selectivity of the predicates: qualifying fraction of the
    /// materialized sample. Returns `None` for an empty sample.
    pub fn selectivity(&self, preds: &[ColPredicate]) -> Option<f64> {
        let n = self.rows.num_rows();
        if n == 0 {
            return None;
        }
        Some(self.qualifying_bitmap(preds).count_ones() as f64 / n as f64)
    }

    /// Distinct non-NULL values of column `col` present in the sample,
    /// sorted ascending — the literal pool for query templates.
    pub fn distinct_values(&self, col: usize) -> Vec<i64> {
        let c = self.rows.column(col);
        let mut vals: Vec<i64> = (0..c.len()).filter_map(|i| c.get(i)).collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }
}

/// Draws one sample per table of the database with a shared seed.
pub fn sample_all(db: &Database, size: usize, seed: u64) -> Vec<TableSample> {
    (0..db.num_tables())
        .map(|i| TableSample::draw(db, TableId(i), size, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::predicate::CmpOp;

    fn db() -> Database {
        let t = Table::new(
            "t",
            vec![
                Column::new("id", (0..1000).collect()),
                Column::new("v", (0..1000).map(|i| i % 10).collect()),
            ],
        );
        Database::new("d", vec![t], vec![])
    }

    #[test]
    fn draw_is_deterministic_and_sorted() {
        let db = db();
        let s1 = TableSample::draw(&db, TableId(0), 100, 42);
        let s2 = TableSample::draw(&db, TableId(0), 100, 42);
        assert_eq!(s1.row_ids(), s2.row_ids());
        assert_eq!(s1.len(), 100);
        assert!(s1.row_ids().windows(2).all(|w| w[0] < w[1]));
        let s3 = TableSample::draw(&db, TableId(0), 100, 43);
        assert_ne!(s1.row_ids(), s3.row_ids());
    }

    #[test]
    fn sample_larger_than_table_is_clamped() {
        let db = db();
        let s = TableSample::draw(&db, TableId(0), 5000, 1);
        assert_eq!(s.len(), 1000);
        assert_eq!(s.nominal_size(), 5000);
        let bm = s.qualifying_bitmap(&[]);
        assert_eq!(bm.len(), 5000);
        assert_eq!(bm.count_ones(), 1000);
    }

    #[test]
    fn bitmap_and_selectivity_match_predicate() {
        let db = db();
        let s = TableSample::draw(&db, TableId(0), 200, 7);
        let preds = vec![ColPredicate::new(1, CmpOp::Eq, 3)];
        let bm = s.qualifying_bitmap(&preds);
        let sel = s.selectivity(&preds).unwrap();
        assert_eq!(bm.count_ones() as f64 / 200.0, sel);
        // v==3 is 10% of rows; a 200-row uniform sample should see roughly that.
        assert!(sel > 0.02 && sel < 0.25, "sel={sel}");
    }

    #[test]
    fn zero_tuple_situation() {
        let db = db();
        let s = TableSample::draw(&db, TableId(0), 50, 7);
        let preds = vec![ColPredicate::new(1, CmpOp::Gt, 999_999)];
        assert!(s.qualifying_bitmap(&preds).is_all_clear());
        assert_eq!(s.selectivity(&preds), Some(0.0));
    }

    #[test]
    fn distinct_values_sorted_dedup() {
        let db = db();
        let s = TableSample::draw(&db, TableId(0), 500, 3);
        let vals = s.distinct_values(1);
        assert_eq!(vals, (0..10).collect::<Vec<i64>>());
    }

    #[test]
    fn sample_all_covers_every_table() {
        let db = db();
        let samples = sample_all(&db, 10, 9);
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].table_id(), TableId(0));
    }
}
