//! # ds-storage
//!
//! In-memory columnar storage engine for the Deep Sketches reproduction.
//!
//! This crate plays the role that HyPer plays in the paper: it stores the
//! datasets (synthetic IMDb and TPC-H), executes `SELECT COUNT(*)` queries
//! exactly to produce training labels, and materializes per-table samples
//! whose qualifying-row bitmaps feed the MSCN model.
//!
//! The main entry points are:
//!
//! * [`Database`] — a named collection of [`Table`]s plus the PK/FK join
//!   graph metadata.
//! * [`exec::CountExecutor`] — exact `COUNT(*)` evaluation of
//!   select-project-join queries via Yannakakis-style message passing.
//! * [`sample::TableSample`] — materialized row samples with predicate
//!   bitmap evaluation.
//! * [`gen`] — seeded synthetic data generators (`gen::imdb`, `gen::tpch`).

pub mod bitmap;
pub mod catalog;
pub mod column;
pub mod csv;
pub mod exec;
pub mod gen;
pub mod predicate;
pub mod sample;
pub mod table;

pub use bitmap::Bitmap;
pub use catalog::{ColRef, Database, ForeignKey, TableId};
pub use column::Column;
pub use predicate::{CmpOp, ColPredicate};
pub use table::Table;
