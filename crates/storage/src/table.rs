//! Tables: named collections of equal-length columns.

use std::collections::HashMap;

use crate::bitmap::Bitmap;
use crate::column::Column;
use crate::predicate::ColPredicate;

/// An in-memory table. Columns all have the same row count; rows are
/// addressed by dense `u32` row ids.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
    by_name: HashMap<String, usize>,
    rows: usize,
}

impl Table {
    /// Creates a table from columns.
    ///
    /// # Panics
    /// Panics if columns have differing lengths, duplicate names, or if the
    /// table would exceed `u32::MAX` rows.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        let name = name.into();
        let rows = columns.first().map_or(0, Column::len);
        assert!(rows <= u32::MAX as usize, "table too large for u32 row ids");
        let mut by_name = HashMap::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            assert_eq!(
                c.len(),
                rows,
                "column {} length mismatch in {name}",
                c.name()
            );
            let prev = by_name.insert(c.name().to_string(), i);
            assert!(prev.is_none(), "duplicate column {} in {name}", c.name());
        }
        Self {
            name,
            columns,
            by_name,
            rows,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// All columns, in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by positional index.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Positional index of the column named `name`, if any.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Column by name, if any.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// Evaluates a conjunction of predicates, returning the qualifying rows
    /// as a bitmap over `0..num_rows`.
    pub fn filter_bitmap(&self, preds: &[ColPredicate]) -> Bitmap {
        let mut bm = Bitmap::all_set(self.rows);
        for p in preds {
            let col = self.column(p.col);
            // Tighten the current bitmap in place: only rows still set need
            // re-evaluation.
            let survivors: Vec<usize> = bm.iter_ones().collect();
            for row in survivors {
                if !p.eval_row(col, row) {
                    bm.unset(row);
                }
            }
        }
        bm
    }

    /// Evaluates a conjunction of predicates, returning qualifying row ids.
    pub fn filter_rows(&self, preds: &[ColPredicate]) -> Vec<u32> {
        if preds.is_empty() {
            return (0..self.rows as u32).collect();
        }
        let mut out = Vec::new();
        'rows: for row in 0..self.rows {
            for p in preds {
                if !p.eval_row(self.column(p.col), row) {
                    continue 'rows;
                }
            }
            out.push(row as u32);
        }
        out
    }

    /// Counts rows qualifying a conjunction of predicates.
    pub fn filter_count(&self, preds: &[ColPredicate]) -> u64 {
        if preds.is_empty() {
            return self.rows as u64;
        }
        let mut n = 0u64;
        'rows: for row in 0..self.rows {
            for p in preds {
                if !p.eval_row(self.column(p.col), row) {
                    continue 'rows;
                }
            }
            n += 1;
        }
        n
    }

    /// Builds a new table containing only the given rows (in the given
    /// order). Used to materialize samples.
    pub fn project_rows(&self, rows: &[u32]) -> Table {
        let columns = self
            .columns
            .iter()
            .map(|c| {
                let data: Vec<i64> = rows.iter().map(|&r| c.data()[r as usize]).collect();
                let nulls: Bitmap = rows.iter().map(|&r| c.is_null(r as usize)).collect();
                Column::with_nulls(c.name().to_string(), data, nulls)
            })
            .collect();
        Table::new(self.name.clone(), columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;

    fn movies() -> Table {
        Table::new(
            "title",
            vec![
                Column::new("id", vec![1, 2, 3, 4, 5]),
                Column::new("year", vec![1990, 2000, 2000, 2010, 2020]),
                Column::new("kind", vec![1, 1, 2, 2, 3]),
            ],
        )
    }

    #[test]
    fn lookup_by_name_and_index() {
        let t = movies();
        assert_eq!(t.name(), "title");
        assert_eq!(t.num_rows(), 5);
        assert_eq!(t.column_index("year"), Some(1));
        assert_eq!(t.column_index("nope"), None);
        assert_eq!(t.column(2).name(), "kind");
        assert!(t.column_by_name("id").is_some());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_columns_panic() {
        Table::new(
            "t",
            vec![Column::new("a", vec![1]), Column::new("b", vec![1, 2])],
        );
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_column_panics() {
        Table::new(
            "t",
            vec![Column::new("a", vec![1]), Column::new("a", vec![2])],
        );
    }

    #[test]
    fn filter_rows_conjunction() {
        let t = movies();
        let preds = vec![
            ColPredicate::new(1, CmpOp::Eq, 2000),
            ColPredicate::new(2, CmpOp::Eq, 2),
        ];
        assert_eq!(t.filter_rows(&preds), vec![2]);
        assert_eq!(t.filter_count(&preds), 1);
    }

    #[test]
    fn filter_empty_predicates_selects_all() {
        let t = movies();
        assert_eq!(t.filter_rows(&[]).len(), 5);
        assert_eq!(t.filter_count(&[]), 5);
        assert_eq!(t.filter_bitmap(&[]).count_ones(), 5);
    }

    #[test]
    fn filter_bitmap_agrees_with_filter_rows() {
        let t = movies();
        let preds = vec![ColPredicate::new(1, CmpOp::Gt, 1995)];
        let rows = t.filter_rows(&preds);
        let bm = t.filter_bitmap(&preds);
        assert_eq!(bm.iter_ones().map(|r| r as u32).collect::<Vec<_>>(), rows);
    }

    #[test]
    fn project_rows_materializes_subset() {
        let t = movies();
        let sub = t.project_rows(&[4, 0]);
        assert_eq!(sub.num_rows(), 2);
        assert_eq!(sub.column_by_name("year").unwrap().data(), &[2020, 1990]);
    }
}
