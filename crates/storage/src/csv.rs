//! CSV import/export for tables and databases.
//!
//! The reproduction generates synthetic data, but the paper's system runs
//! on the real IMDb; this module is the bridge: export a synthetic database
//! to inspect it, or import real CSV dumps (numeric columns only — the
//! featurization is numeric, matching JOB-light's predicate columns) and
//! build sketches over them.
//!
//! Format: first line is the header (column names); values are decimal
//! integers; an empty field is NULL. A `schema.fks` manifest stores the
//! foreign keys as `from_table.from_col -> to_table.to_col` lines, and a
//! `schema.tables` manifest pins the table order so that `TableId`s are
//! stable across export/import.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::bitmap::Bitmap;
use crate::catalog::{Database, ForeignKey};
use crate::column::Column;
use crate::table::Table;

/// CSV parsing/IO errors.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with row/field contents.
    Malformed(String),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv io error: {e}"),
            CsvError::Malformed(m) => write!(f, "malformed csv: {m}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes a table as CSV (header + one line per row, NULL as empty field).
pub fn write_table_csv<W: Write>(table: &Table, out: &mut W) -> Result<(), CsvError> {
    let header: Vec<&str> = table.columns().iter().map(Column::name).collect();
    writeln!(out, "{}", header.join(","))?;
    for row in 0..table.num_rows() {
        let mut line = String::new();
        for (i, col) in table.columns().iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            if let Some(v) = col.get(row) {
                line.push_str(&v.to_string());
            }
        }
        writeln!(out, "{line}")?;
    }
    Ok(())
}

/// Reads a table from CSV written by [`write_table_csv`] (or any
/// integer-valued CSV with a header).
pub fn read_table_csv<R: Read>(name: &str, input: R) -> Result<Table, CsvError> {
    let mut lines = BufReader::new(input).lines();
    let header = lines
        .next()
        .ok_or_else(|| CsvError::Malformed("missing header".into()))??;
    let names: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    if names.iter().any(String::is_empty) {
        return Err(CsvError::Malformed("empty column name in header".into()));
    }
    let width = names.len();
    let mut data: Vec<Vec<i64>> = vec![Vec::new(); width];
    let mut nulls: Vec<Vec<bool>> = vec![Vec::new(); width];
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != width {
            return Err(CsvError::Malformed(format!(
                "row {} has {} fields, expected {width}",
                lineno + 2,
                fields.len()
            )));
        }
        for (i, field) in fields.iter().enumerate() {
            let field = field.trim();
            if field.is_empty() {
                data[i].push(0);
                nulls[i].push(true);
            } else {
                let v: i64 = field.parse().map_err(|_| {
                    CsvError::Malformed(format!(
                        "row {}, column {}: '{}' is not an integer",
                        lineno + 2,
                        names[i],
                        field
                    ))
                })?;
                data[i].push(v);
                nulls[i].push(false);
            }
        }
    }
    let columns = names
        .into_iter()
        .zip(data)
        .zip(nulls)
        .map(|((n, d), nl)| {
            let mask: Bitmap = nl.into_iter().collect();
            Column::with_nulls(n, d, mask)
        })
        .collect();
    Ok(Table::new(name, columns))
}

/// Exports a database to `dir`: one `<table>.csv` per table plus a
/// `schema.fks` manifest. Returns the number of files written.
pub fn write_database_dir(db: &Database, dir: &Path) -> Result<usize, CsvError> {
    std::fs::create_dir_all(dir)?;
    let mut written = 0;
    for table in db.tables() {
        let mut file = std::fs::File::create(dir.join(format!("{}.csv", table.name())))?;
        write_table_csv(table, &mut file)?;
        written += 1;
    }
    let mut manifest = String::new();
    for fk in db.foreign_keys() {
        manifest.push_str(&format!(
            "{} -> {}\n",
            db.col_name(fk.from),
            db.col_name(fk.to)
        ));
    }
    std::fs::write(dir.join("schema.fks"), manifest)?;
    let order: Vec<&str> = db.tables().iter().map(|t| t.name()).collect();
    std::fs::write(dir.join("schema.tables"), order.join("\n") + "\n")?;
    Ok(written + 2)
}

/// Imports a database from a directory written by [`write_database_dir`]:
/// loads every `*.csv` (table name = file stem) and resolves the
/// `schema.fks` manifest. Table order — and hence `TableId` assignment —
/// follows the `schema.tables` manifest when present (so ids are stable
/// across export/import), alphabetical file order otherwise.
pub fn read_database_dir(name: &str, dir: &Path) -> Result<Database, CsvError> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("csv"))
        .collect();
    paths.sort();
    let order_path = dir.join("schema.tables");
    if order_path.exists() {
        let order: Vec<String> = std::fs::read_to_string(&order_path)?
            .lines()
            .map(|l| l.trim().to_string())
            .filter(|l| !l.is_empty())
            .collect();
        let rank = |p: &std::path::PathBuf| {
            p.file_stem()
                .and_then(|s| s.to_str())
                .and_then(|stem| order.iter().position(|o| o == stem))
                .unwrap_or(usize::MAX)
        };
        paths.sort_by_key(rank);
    }
    if paths.is_empty() {
        return Err(CsvError::Malformed(format!(
            "no .csv files in {}",
            dir.display()
        )));
    }
    let mut tables = Vec::with_capacity(paths.len());
    for p in &paths {
        let stem = p
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| CsvError::Malformed(format!("bad file name {}", p.display())))?;
        tables.push(read_table_csv(stem, std::fs::File::open(p)?)?);
    }
    // Resolve FKs against a temporary catalog.
    let tmp = Database::new(name, tables, Vec::new());
    let mut fks = Vec::new();
    let manifest_path = dir.join("schema.fks");
    if manifest_path.exists() {
        for line in std::fs::read_to_string(&manifest_path)?.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (from, to) = line
                .split_once("->")
                .ok_or_else(|| CsvError::Malformed(format!("bad fk line '{line}'")))?;
            let from = tmp
                .resolve(from.trim())
                .ok_or_else(|| CsvError::Malformed(format!("unknown fk column '{from}'")))?;
            let to = tmp
                .resolve(to.trim())
                .ok_or_else(|| CsvError::Malformed(format!("unknown fk column '{to}'")))?;
            fks.push(ForeignKey { from, to });
        }
    }
    let tables = tmp.tables().to_vec();
    Ok(Database::new(name, tables, fks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{imdb_database, ImdbConfig};

    #[test]
    fn table_roundtrip_with_nulls() {
        let mut nulls = Bitmap::new(3);
        nulls.set(1);
        let t = Table::new(
            "t",
            vec![
                Column::new("a", vec![1, 2, 3]),
                Column::with_nulls("b", vec![10, 0, -30], nulls),
            ],
        );
        let mut buf = Vec::new();
        write_table_csv(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("a,b\n1,10\n2,\n3,-30\n"));

        let back = read_table_csv("t", &buf[..]).unwrap();
        assert_eq!(back.num_rows(), 3);
        assert_eq!(back.column_by_name("b").unwrap().get(1), None);
        assert_eq!(back.column_by_name("b").unwrap().get(2), Some(-30));
    }

    #[test]
    fn rejects_ragged_and_non_integer_rows() {
        assert!(matches!(
            read_table_csv("t", "a,b\n1\n".as_bytes()),
            Err(CsvError::Malformed(_))
        ));
        assert!(matches!(
            read_table_csv("t", "a\nxyz\n".as_bytes()),
            Err(CsvError::Malformed(_))
        ));
        assert!(matches!(
            read_table_csv("t", "".as_bytes()),
            Err(CsvError::Malformed(_))
        ));
    }

    #[test]
    fn database_directory_roundtrip() {
        let db = imdb_database(&ImdbConfig::tiny(9));
        let dir = std::env::temp_dir().join(format!("ds_csv_test_{}", std::process::id()));
        let files = write_database_dir(&db, &dir).unwrap();
        assert_eq!(files, 8); // 6 tables + fk manifest + order manifest

        let back = read_database_dir("imdb", &dir).unwrap();
        assert_eq!(back.num_tables(), db.num_tables());
        assert_eq!(back.foreign_keys().len(), db.foreign_keys().len());
        assert_eq!(back.total_rows(), db.total_rows());
        // Spot-check data equality on a column.
        let orig = db.table(db.table_id("movie_keyword").unwrap());
        let read = back.table(back.table_id("movie_keyword").unwrap());
        assert_eq!(
            orig.column_by_name("keyword_id").unwrap().data(),
            read.column_by_name("keyword_id").unwrap().data()
        );
        // FKs survived (and queries still execute).
        let title = back.table_id("title").unwrap();
        let mk = back.table_id("movie_keyword").unwrap();
        assert!(back.fk_between(title, mk).is_some());
        // TableIds are stable: the order manifest preserved positions.
        for (i, t) in db.tables().iter().enumerate() {
            assert_eq!(back.tables()[i].name(), t.name(), "table order changed");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_lines_are_skipped() {
        let t = read_table_csv("t", "a\n1\n\n2\n".as_bytes()).unwrap();
        assert_eq!(t.num_rows(), 2);
    }
}
