//! Executor edge cases: empty tables, all-NULL join keys, dangling keys,
//! single rows, deep chains, and agreement between both engines under all
//! of them.

use ds_storage::bitmap::Bitmap;
use ds_storage::catalog::{ColRef, Database, ForeignKey, TableId};
use ds_storage::column::Column;
use ds_storage::exec::{CountExecutor, ExecQuery, JoinEdge, NaiveExecutor};
use ds_storage::predicate::{CmpOp, ColPredicate};
use ds_storage::table::Table;

fn edge(a: usize, ac: usize, b: usize, bc: usize) -> JoinEdge {
    JoinEdge::new(ColRef::new(TableId(a), ac), ColRef::new(TableId(b), bc))
}

fn both(db: &Database, q: &ExecQuery) -> u64 {
    let fast = CountExecutor::new().count(db, q).expect("fast");
    let naive = NaiveExecutor::new().count(db, q).expect("naive");
    assert_eq!(fast, naive, "executors disagree");
    fast
}

#[test]
fn empty_table_joins_to_zero() {
    let a = Table::new("a", vec![Column::new("id", vec![1, 2, 3])]);
    let b = Table::new("b", vec![Column::new("a_id", vec![])]);
    let db = Database::new(
        "e",
        vec![a, b],
        vec![ForeignKey {
            from: ColRef::new(TableId(1), 0),
            to: ColRef::new(TableId(0), 0),
        }],
    );
    let q = ExecQuery {
        tables: vec![TableId(0), TableId(1)],
        joins: vec![edge(1, 0, 0, 0)],
        predicates: vec![],
    };
    assert_eq!(both(&db, &q), 0);
    // Empty table alone.
    assert_eq!(both(&db, &ExecQuery::single(TableId(1), vec![])), 0);
}

#[test]
fn all_null_join_keys_match_nothing() {
    let a = Table::new("a", vec![Column::new("id", vec![1, 2])]);
    let b = Table::new(
        "b",
        vec![Column::with_nulls(
            "a_id",
            vec![1, 2, 1],
            Bitmap::all_set(3),
        )],
    );
    let db = Database::new("n", vec![a, b], vec![]);
    let q = ExecQuery {
        tables: vec![TableId(0), TableId(1)],
        joins: vec![edge(1, 0, 0, 0)],
        predicates: vec![],
    };
    assert_eq!(both(&db, &q), 0);
}

#[test]
fn dangling_foreign_keys_do_not_count() {
    let a = Table::new("a", vec![Column::new("id", vec![1, 2])]);
    // Key 99 references nothing.
    let b = Table::new("b", vec![Column::new("a_id", vec![1, 99, 2, 99])]);
    let db = Database::new("d", vec![a, b], vec![]);
    let q = ExecQuery {
        tables: vec![TableId(0), TableId(1)],
        joins: vec![edge(1, 0, 0, 0)],
        predicates: vec![],
    };
    assert_eq!(both(&db, &q), 2);
}

#[test]
fn single_row_tables_chain() {
    let a = Table::new("a", vec![Column::new("id", vec![7])]);
    let b = Table::new(
        "b",
        vec![Column::new("a_id", vec![7]), Column::new("id", vec![9])],
    );
    let c = Table::new("c", vec![Column::new("b_id", vec![9, 9])]);
    let db = Database::new("s", vec![a, b, c], vec![]);
    let q = ExecQuery {
        tables: vec![TableId(0), TableId(1), TableId(2)],
        joins: vec![edge(1, 0, 0, 0), edge(2, 0, 1, 1)],
        predicates: vec![],
    };
    assert_eq!(both(&db, &q), 2);
}

#[test]
fn deep_chain_with_predicates_on_every_level() {
    // 4-level chain with fanout 2 per level and a predicate at each level.
    let l0 = Table::new(
        "l0",
        vec![
            Column::new("id", (0..4).collect()),
            Column::new("v", vec![0, 1, 0, 1]),
        ],
    );
    let mk_level = |name: &str, parents: i64| {
        let mut p = Vec::new();
        let mut id = Vec::new();
        let mut v = Vec::new();
        for parent in 0..parents {
            for c in 0..2 {
                id.push(p.len() as i64);
                p.push(parent);
                v.push(c);
            }
        }
        Table::new(
            name,
            vec![
                Column::new("parent", p),
                Column::new("id", id),
                Column::new("v", v),
            ],
        )
    };
    let l1 = mk_level("l1", 4);
    let l2 = mk_level("l2", 8);
    let l3 = mk_level("l3", 16);
    let db = Database::new("chain", vec![l0, l1, l2, l3], vec![]);
    let q = ExecQuery {
        tables: vec![TableId(0), TableId(1), TableId(2), TableId(3)],
        joins: vec![edge(1, 0, 0, 0), edge(2, 0, 1, 1), edge(3, 0, 2, 1)],
        predicates: vec![
            (TableId(0), ColPredicate::new(1, CmpOp::Eq, 0)),
            (TableId(1), ColPredicate::new(2, CmpOp::Eq, 1)),
            (TableId(2), ColPredicate::new(2, CmpOp::Eq, 0)),
            (TableId(3), ColPredicate::new(2, CmpOp::Gt, -1)),
        ],
    };
    // l0: ids {0,2}; one l1 child each (v=1); one l2 child each (v=0);
    // both l3 children qualify → 2 × 1 × 1 × 2 = 4.
    assert_eq!(both(&db, &q), 4);
}

#[test]
fn root_choice_does_not_change_counts() {
    // The Yannakakis executor roots at tables[0]; permuting the table list
    // must not change results.
    let a = Table::new("a", vec![Column::new("id", vec![1, 2, 3])]);
    let b = Table::new(
        "b",
        vec![
            Column::new("a_id", vec![1, 1, 2, 3, 3]),
            Column::new("v", vec![1, 2, 1, 1, 2]),
        ],
    );
    let c = Table::new("c", vec![Column::new("a_id", vec![1, 2, 2, 3])]);
    let db = Database::new("p", vec![a, b, c], vec![]);
    let joins = vec![edge(1, 0, 0, 0), edge(2, 0, 0, 0)];
    let preds = vec![(TableId(1), ColPredicate::new(1, CmpOp::Eq, 1))];
    let mut counts = Vec::new();
    for tables in [
        vec![TableId(0), TableId(1), TableId(2)],
        vec![TableId(1), TableId(0), TableId(2)],
        vec![TableId(2), TableId(1), TableId(0)],
    ] {
        let q = ExecQuery {
            tables,
            joins: joins.clone(),
            predicates: preds.clone(),
        };
        counts.push(both(&db, &q));
    }
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
}

#[test]
fn contradictory_predicates_yield_zero() {
    let a = Table::new("a", vec![Column::new("v", (0..100).collect())]);
    let db = Database::new("c", vec![a], vec![]);
    let q = ExecQuery::single(
        TableId(0),
        vec![
            ColPredicate::new(0, CmpOp::Gt, 50),
            ColPredicate::new(0, CmpOp::Lt, 10),
        ],
    );
    assert_eq!(both(&db, &q), 0);
}

#[test]
fn executor_count_is_stable_across_repeated_calls() {
    // The leaf-message cache must not corrupt repeated evaluations.
    let a = Table::new("a", vec![Column::new("id", (0..50).collect())]);
    let b = Table::new(
        "b",
        vec![Column::new("a_id", (0..200).map(|i| i % 50).collect())],
    );
    let db = Database::new("r", vec![a, b], vec![]);
    let exec = CountExecutor::new();
    let q = ExecQuery {
        tables: vec![TableId(0), TableId(1)],
        joins: vec![edge(1, 0, 0, 0)],
        predicates: vec![],
    };
    let first = exec.count(&db, &q).unwrap();
    for _ in 0..5 {
        assert_eq!(exec.count(&db, &q).unwrap(), first);
    }
    assert_eq!(first, 200);
}
