//! Typed scalar metrics: monotonic counters and last-value gauges.
//!
//! Both are lock-free and safe to update from any thread. A [`Counter`]
//! only ever goes up (requests served, batches dispatched); a [`Gauge`]
//! tracks the latest value of a continuous signal (epoch loss, rows/s)
//! while also aggregating min/max/mean across all observations so a
//! report can show the whole trajectory, not just the final point.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// The latest value of a continuous `f64` signal, plus running
/// min/max/sum/count aggregates over every observation.
#[derive(Debug)]
pub struct Gauge {
    // f64 values stored as IEEE-754 bit patterns in atomics; min/max use
    // compare-and-swap loops since there is no atomic f64 min/max.
    last: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            last: AtomicU64::new(0f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            sum: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }
}

fn update_f64(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => cur = observed,
        }
    }
}

impl Gauge {
    /// Creates an unset gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a new observation.
    pub fn set(&self, v: f64) {
        self.last.store(v.to_bits(), Ordering::Relaxed);
        update_f64(&self.min, |cur| cur.min(v));
        update_f64(&self.max, |cur| cur.max(v));
        update_f64(&self.sum, |cur| cur + v);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Latest observation (0 before any `set`).
    pub fn last(&self) -> f64 {
        f64::from_bits(self.last.load(Ordering::Relaxed))
    }

    /// Smallest observation (`NAN` before any `set`).
    pub fn min(&self) -> f64 {
        if self.count() == 0 {
            f64::NAN
        } else {
            f64::from_bits(self.min.load(Ordering::Relaxed))
        }
    }

    /// Largest observation (`NAN` before any `set`).
    pub fn max(&self) -> f64 {
        if self.count() == 0 {
            f64::NAN
        } else {
            f64::from_bits(self.max.load(Ordering::Relaxed))
        }
    }

    /// Mean of all observations (`NAN` before any `set`).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            f64::NAN
        } else {
            f64::from_bits(self.sum.load(Ordering::Relaxed)) / n as f64
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_adds_up() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_tracks_last_and_aggregates() {
        let g = Gauge::new();
        assert!(g.min().is_nan() && g.max().is_nan() && g.mean().is_nan());
        for v in [3.0, -1.0, 7.5] {
            g.set(v);
        }
        assert_eq!(g.last(), 7.5);
        assert_eq!(g.min(), -1.0);
        assert_eq!(g.max(), 7.5);
        assert!((g.mean() - 19.0 / 6.0).abs() < 1e-12);
        assert_eq!(g.count(), 3);
    }

    #[test]
    fn concurrent_updates_lose_nothing() {
        let c = Arc::new(Counter::new());
        let g = Arc::new(Gauge::new());
        std::thread::scope(|s| {
            for t in 0..8 {
                let (c, g) = (Arc::clone(&c), Arc::clone(&g));
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        g.set((t * 1000 + i) as f64);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(g.count(), 8000);
        assert_eq!(g.min(), 0.0);
        assert_eq!(g.max(), 7999.0);
    }
}
