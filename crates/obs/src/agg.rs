//! Fleet-wide exposition aggregation: merges per-shard `STATS`
//! documents into one pane of glass.
//!
//! [`merge_expositions`] parses each shard's Prometheus text into typed
//! families ([`crate::prom::parse_families`]) and folds them by declared
//! type:
//!
//! * **counters** sum — the fleet served the sum of what its shards
//!   served;
//! * **histograms** merge bucket-wise, exactly reproducing
//!   [`HistogramSnapshot::merge`] over the per-shard distributions
//!   (their `_min`/`_max` sibling gauges are folded into the same
//!   reconstruction, so an empty shard cannot drag the fleet min to 0);
//! * **gauges** take the max — "worst shard wins" is the right default
//!   for breaker-open flags, queue depths, and SLO burn rates;
//! * **summaries** cannot be merged exactly: quantile samples take the
//!   max (an upper bound on every shard's tail), `_sum`/`_count` sum.
//!
//! Families are emitted in first-seen document order, so merging a
//! single document is the identity up to float formatting. A family
//! whose declared kind disagrees across shards keeps the first kind and
//! skips mismatched occurrences rather than mixing semantics.

use std::collections::HashMap;

use crate::hist::HistogramSnapshot;
use crate::prom::{parse_families, FamilyKind, PromFamily, PromText};

/// Reconstructs the dense [`HistogramSnapshot`] behind one exposition
/// histogram family. `min_gauge`/`max_gauge` are the sibling `_min` /
/// `_max` gauges from the same document (ignored when the family is
/// empty — an empty histogram's sentinel min must survive the trip).
fn snapshot_of(
    fam: &PromFamily,
    min_gauge: Option<f64>,
    max_gauge: Option<f64>,
) -> Option<HistogramSnapshot> {
    let words_len = HistogramSnapshot::new().to_words().len();
    let buckets_len = words_len - 4;
    let mut buckets = vec![0u64; buckets_len];
    let mut prev_cumulative = 0u64;
    let bucket_name = format!("{}_bucket", fam.name);
    for s in &fam.samples {
        if s.name != bucket_name {
            continue;
        }
        let le = match s.labels.iter().find(|(k, _)| k == "le") {
            Some((_, v)) => v.as_str(),
            None => return None,
        };
        if le == "+Inf" {
            continue; // always equals _count; validated below
        }
        let le: u64 = le.parse().ok()?;
        // le is 0 (the zeros bucket) or 2^i - 1 for bucket i.
        let idx = if le == 0 {
            0
        } else {
            let up = le.checked_add(1)?;
            if !up.is_power_of_two() {
                return None;
            }
            up.trailing_zeros() as usize
        };
        if idx >= buckets_len {
            return None;
        }
        let cumulative = s.value as u64;
        buckets[idx] = cumulative.checked_sub(prev_cumulative)?;
        prev_cumulative = cumulative;
    }
    let count = fam.suffixed("count")? as u64;
    let sum = fam.suffixed("sum")? as u64;
    let (min, max) = if count == 0 {
        (u64::MAX, 0)
    } else {
        (min_gauge? as u64, max_gauge? as u64)
    };
    let mut words = Vec::with_capacity(words_len);
    words.extend([count, sum, min, max]);
    words.extend(buckets);
    // from_words re-checks the bucket-sum-equals-count invariant, so a
    // shard serving corrupt cumulative counts is rejected, not merged.
    HistogramSnapshot::from_words(&words)
}

fn label_text(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{{{}}}", body.join(","))
}

/// Per-sample accumulator keyed by `(name, labels)`, preserving
/// first-seen order for deterministic output.
struct SampleFold {
    order: Vec<(String, String)>,
    values: HashMap<(String, String), f64>,
}

impl SampleFold {
    fn new() -> Self {
        Self {
            order: Vec::new(),
            values: HashMap::new(),
        }
    }

    fn fold(
        &mut self,
        name: &str,
        labels: &[(String, String)],
        value: f64,
        f: impl Fn(f64, f64) -> f64,
    ) {
        let key = (name.to_string(), label_text(labels));
        match self.values.get_mut(&key) {
            Some(v) => *v = f(*v, value),
            None => {
                self.order.push(key.clone());
                self.values.insert(key, value);
            }
        }
    }

    fn emit(&self, out: &mut PromText) {
        for key in &self.order {
            out.sample(&key.0, &key.1, self.values[key]);
        }
    }
}

/// Merges per-shard exposition documents into one. See the module docs
/// for the per-type semantics. Returns `None` when any document fails to
/// parse or a histogram family is internally inconsistent.
pub fn merge_expositions(docs: &[&str]) -> Option<String> {
    let parsed: Vec<Vec<PromFamily>> = docs
        .iter()
        .map(|d| parse_families(d))
        .collect::<Option<_>>()?;

    // First-seen family order across all documents.
    let mut order: Vec<String> = Vec::new();
    let mut kinds: HashMap<String, FamilyKind> = HashMap::new();
    // Histogram families swallow their `_min`/`_max` sibling gauges into
    // the snapshot reconstruction; remember which names those are.
    let mut swallowed: std::collections::HashSet<String> = std::collections::HashSet::new();
    for fams in &parsed {
        for fam in fams {
            if !kinds.contains_key(&fam.name) {
                kinds.insert(fam.name.clone(), fam.kind);
                order.push(fam.name.clone());
            }
            if fam.kind == FamilyKind::Histogram {
                swallowed.insert(format!("{}_min", fam.name));
                swallowed.insert(format!("{}_max", fam.name));
            }
        }
    }

    let sibling = |fams: &[PromFamily], name: &str| -> Option<f64> {
        fams.iter()
            .find(|f| f.name == name)
            .and_then(|f| f.scalar())
    };

    let mut out = PromText::new();
    for name in &order {
        if swallowed.contains(name) {
            continue;
        }
        let kind = kinds[name];
        // Every same-kind occurrence of this family across the documents,
        // paired with its document (histograms need their siblings).
        let occurrences: Vec<(&Vec<PromFamily>, &PromFamily)> = parsed
            .iter()
            .flat_map(|fams| {
                fams.iter()
                    .filter(|f| &f.name == name && f.kind == kind)
                    .map(move |f| (fams, f))
            })
            .collect();
        match kind {
            FamilyKind::Counter => {
                out.header(name, "counter");
                let mut fold = SampleFold::new();
                for (_, fam) in &occurrences {
                    for s in &fam.samples {
                        fold.fold(&s.name, &s.labels, s.value, |a, b| a + b);
                    }
                }
                fold.emit(&mut out);
            }
            FamilyKind::Gauge | FamilyKind::Untyped => {
                out.header(
                    name,
                    if kind == FamilyKind::Gauge {
                        "gauge"
                    } else {
                        "untyped"
                    },
                );
                let mut fold = SampleFold::new();
                for (_, fam) in &occurrences {
                    for s in &fam.samples {
                        fold.fold(&s.name, &s.labels, s.value, f64::max);
                    }
                }
                fold.emit(&mut out);
            }
            FamilyKind::Summary => {
                out.header(name, "summary");
                let sum_name = format!("{name}_sum");
                let count_name = format!("{name}_count");
                let mut fold = SampleFold::new();
                for (_, fam) in &occurrences {
                    for s in &fam.samples {
                        if s.name == sum_name || s.name == count_name {
                            fold.fold(&s.name, &s.labels, s.value, |a, b| a + b);
                        } else {
                            fold.fold(&s.name, &s.labels, s.value, f64::max);
                        }
                    }
                }
                fold.emit(&mut out);
            }
            FamilyKind::Histogram => {
                let mut merged = HistogramSnapshot::new();
                for (fams, fam) in &occurrences {
                    let snap = snapshot_of(
                        fam,
                        sibling(fams, &format!("{name}_min")),
                        sibling(fams, &format!("{name}_max")),
                    )?;
                    merged.merge(&snap);
                }
                out.histogram_sanitized(name, &merged);
                out.header(&format!("{name}_min"), "gauge");
                out.sample(&format!("{name}_min"), "", merged.min() as f64);
                out.header(&format!("{name}_max"), "gauge");
                out.sample(&format!("{name}_max"), "", merged.max() as f64);
            }
        }
    }
    Some(out.into_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LogHistogram;

    fn shard_doc(reqs: u64, queue: f64, lats: &[u64]) -> String {
        let h = LogHistogram::new();
        for &v in lats {
            h.record(v);
        }
        let mut p = PromText::new();
        p.counter("serve/requests", reqs)
            .gauge("serve/queue_len", queue)
            .histogram("serve/latency_us/hist", &h.snapshot())
            .summary("serve/latency_us", &h.snapshot());
        p.into_string()
    }

    #[test]
    fn counters_sum_gauges_max_histograms_merge_exactly() {
        let a = shard_doc(10, 3.0, &[1, 5, 5, 200]);
        let b = shard_doc(32, 1.0, &[0, 7, 4096]);
        let merged = merge_expositions(&[&a, &b]).expect("merge");
        let fams = parse_families(&merged).expect("parse merged");
        let get = |n: &str| fams.iter().find(|f| f.name == n).expect(n);
        assert_eq!(get("ds_serve_requests").scalar(), Some(42.0));
        assert_eq!(get("ds_serve_queue_len").scalar(), Some(3.0));

        // The merged histogram family must equal HistogramSnapshot::merge
        // of the two shards' distributions — the acceptance invariant.
        let expect = LogHistogram::new();
        for v in [1u64, 5, 5, 200, 0, 7, 4096] {
            expect.record(v);
        }
        let union = expect.snapshot();
        let hist = get("ds_serve_latency_us_hist");
        let rebuilt = snapshot_of(
            hist,
            get("ds_serve_latency_us_hist_min").scalar(),
            get("ds_serve_latency_us_hist_max").scalar(),
        )
        .expect("rebuild merged");
        assert_eq!(rebuilt, union);

        // Summary: quantiles upper-bound, sum/count exact.
        let summary = get("ds_serve_latency_us");
        assert_eq!(summary.suffixed("count"), Some(7.0));
        assert_eq!(summary.suffixed("sum"), Some(union.sum() as f64));
    }

    #[test]
    fn empty_shard_histogram_does_not_poison_the_fleet_min() {
        let a = shard_doc(1, 0.0, &[500, 900]);
        let b = shard_doc(0, 0.0, &[]);
        let merged = merge_expositions(&[&a, &b]).expect("merge");
        let fams = parse_families(&merged).expect("parse merged");
        let get = |n: &str| fams.iter().find(|f| f.name == n).expect(n);
        assert_eq!(get("ds_serve_latency_us_hist_min").scalar(), Some(500.0));
        assert_eq!(get("ds_serve_latency_us_hist_max").scalar(), Some(900.0));
    }

    #[test]
    fn merging_one_document_is_the_identity_on_values() {
        let a = shard_doc(7, 2.0, &[3, 9]);
        let merged = merge_expositions(&[&a]).expect("merge");
        let before = parse_families(&a).unwrap();
        let after = parse_families(&merged).unwrap();
        // Same families, same scalar/suffixed values (order preserved).
        assert_eq!(before.len(), after.len());
        for (x, y) in before.iter().zip(after.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.samples, y.samples, "family {}", x.name);
        }
    }

    #[test]
    fn corrupt_histograms_are_rejected_not_merged() {
        let good = shard_doc(1, 0.0, &[4]);
        // Lie about the count: bucket sum no longer matches.
        let bad = good.replace(
            "ds_serve_latency_us_hist_count 1",
            "ds_serve_latency_us_hist_count 3",
        );
        assert!(merge_expositions(&[&good, &bad]).is_none());
        assert!(merge_expositions(&["not an exposition # at all ###"]).is_none());
    }
}
