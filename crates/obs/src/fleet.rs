//! Counters for fleet-tier routing: one lock-free [`FleetCounters`] bundle
//! shared between a routing client and whoever scrapes it.
//!
//! The serving layer's per-process counters live in `ds-serve`'s own
//! `Metrics`; these are the *client-side* complement — how often routing
//! picked a non-primary replica, how many sweeps a request needed, how
//! many replicas were resynced after a loss. They live here rather than in
//! the serve crate so benches and tests can aggregate them without linking
//! the whole serving stack.

use crate::counter::{Counter, Gauge};
use crate::prom::PromText;

/// Lock-free counters describing fleet routing behaviour.
#[derive(Debug, Default)]
pub struct FleetCounters {
    /// Requests routed (one per request, however many replicas it tried).
    pub routed: Counter,
    /// Requests answered by a replica other than the first candidate.
    pub failovers: Counter,
    /// Individual replica attempts beyond the first, across all requests.
    pub retries: Counter,
    /// Requests that exhausted every replica in one sweep.
    pub sweep_failures: Counter,
    /// Replicas re-seeded from a surviving copy after a loss.
    pub resyncs: Counter,
    /// Shards currently steered away from by health gossip.
    pub degraded_shards: Gauge,
}

impl FleetCounters {
    /// A fresh, zeroed bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders every counter under `fleet/…` into `out` (for `STATS`-style
    /// expositions and bench summaries).
    pub fn render(&self, out: &mut PromText) {
        out.counter("fleet/routed", self.routed.get())
            .counter("fleet/failovers", self.failovers.get())
            .counter("fleet/retries", self.retries.get())
            .counter("fleet/sweep_failures", self.sweep_failures.get())
            .counter("fleet/resyncs", self.resyncs.get())
            .gauge("fleet/degraded_shards", self.degraded_shards.last());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_render_under_the_fleet_prefix() {
        let c = FleetCounters::new();
        c.routed.add(3);
        c.failovers.add(1);
        c.degraded_shards.set(2.0);
        let mut p = PromText::new();
        c.render(&mut p);
        let text = p.into_string();
        assert!(text.contains("ds_fleet_routed"), "{text}");
        assert!(text.contains("ds_fleet_degraded_shards"), "{text}");
        let samples = crate::prom::parse_text(&text).expect("parse");
        let routed = samples
            .iter()
            .find(|s| s.name == "ds_fleet_routed")
            .expect("routed sample");
        assert_eq!(routed.value, 3.0);
    }
}
