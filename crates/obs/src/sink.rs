//! Trace reports and pluggable sinks.
//!
//! A [`TraceReport`] is a point-in-time snapshot of everything a
//! [`Tracer`] aggregated: span timings, counters, gauges,
//! and histograms. Sinks render it — [`PrettySink`] writes the
//! human-readable table (stderr by default), [`JsonSink`] the
//! machine-readable form dashboards and the benchmark harness consume.

use std::io::Write;

use crate::json::JsonValue;
use crate::span::{SpanStat, Tracer};

/// One span path with its aggregate timing.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanReport {
    /// `/`-joined hierarchical path.
    pub path: String,
    /// Aggregates across all completions.
    pub stat: SpanStat,
}

/// One gauge with its aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeReport {
    /// Registered name.
    pub name: String,
    /// Latest observation.
    pub last: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Mean across observations.
    pub mean: f64,
    /// Number of observations.
    pub count: u64,
}

/// One histogram with derived percentiles.
#[derive(Debug, Clone, PartialEq)]
pub struct HistReport {
    /// Registered name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// Median upper bound.
    pub p50: u64,
    /// 95th-percentile upper bound.
    pub p95: u64,
    /// 99th-percentile upper bound.
    pub p99: u64,
    /// Largest recorded value.
    pub max: u64,
}

/// A point-in-time snapshot of a tracer's aggregates, ready for a sink.
/// All sections are sorted by name for deterministic output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceReport {
    /// Completed span paths.
    pub spans: Vec<SpanReport>,
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge aggregates.
    pub gauges: Vec<GaugeReport>,
    /// Histogram aggregates.
    pub hists: Vec<HistReport>,
}

impl TraceReport {
    /// Snapshots `tracer` (works whether or not it is currently enabled).
    pub fn capture(tracer: &Tracer) -> Self {
        let spans = tracer
            .span_stats()
            .into_iter()
            .map(|(path, stat)| SpanReport { path, stat })
            .collect();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        tracer.visit_registries(
            |name, c| counters.push((name.to_string(), c.get())),
            |name, g| {
                gauges.push(GaugeReport {
                    name: name.to_string(),
                    last: g.last(),
                    min: g.min(),
                    max: g.max(),
                    mean: g.mean(),
                    count: g.count(),
                })
            },
            |name, h| {
                hists.push(HistReport {
                    name: name.to_string(),
                    count: h.count(),
                    mean: h.mean(),
                    p50: h.quantile(0.50),
                    p95: h.quantile(0.95),
                    p99: h.quantile(0.99),
                    max: h.max(),
                })
            },
        );
        Self {
            spans,
            counters,
            gauges,
            hists,
        }
    }

    /// True if nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
    }

    /// The human-readable rendering written by [`PrettySink`].
    pub fn to_pretty(&self) -> String {
        fn secs(ns: u64) -> String {
            let s = ns as f64 / 1e9;
            if s >= 1.0 {
                format!("{s:.3}s")
            } else if s >= 1e-3 {
                format!("{:.3}ms", s * 1e3)
            } else {
                format!("{:.1}µs", s * 1e6)
            }
        }
        let mut out = String::from("== trace report ==\n");
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for s in &self.spans {
                out.push_str(&format!(
                    "  {:<48} n={:<8} total={:>10} mean={:>10} max={:>10}\n",
                    s.path,
                    s.stat.count,
                    secs(s.stat.total_ns),
                    secs(s.stat.mean_ns() as u64),
                    secs(s.stat.max_ns),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<48} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for g in &self.gauges {
                out.push_str(&format!(
                    "  {:<48} last={:<12.4} min={:<12.4} max={:<12.4} mean={:<12.4} n={}\n",
                    g.name, g.last, g.min, g.max, g.mean, g.count
                ));
            }
        }
        if !self.hists.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.hists {
                out.push_str(&format!(
                    "  {:<48} n={:<8} mean={:<10.2} p50={:<8} p95={:<8} p99={:<8} max={}\n",
                    h.name, h.count, h.mean, h.p50, h.p95, h.p99, h.max
                ));
            }
        }
        if self.is_empty() {
            out.push_str("(empty)\n");
        }
        out
    }

    /// The machine-readable rendering written by [`JsonSink`].
    pub fn to_json(&self) -> JsonValue {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                JsonValue::Obj(vec![
                    ("path".into(), JsonValue::Str(s.path.clone())),
                    ("count".into(), JsonValue::Num(s.stat.count as f64)),
                    ("total_ns".into(), JsonValue::Num(s.stat.total_ns as f64)),
                    ("mean_ns".into(), JsonValue::Num(s.stat.mean_ns())),
                    ("min_ns".into(), JsonValue::Num(s.stat.min_ns as f64)),
                    ("max_ns".into(), JsonValue::Num(s.stat.max_ns as f64)),
                ])
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(name, v)| {
                JsonValue::Obj(vec![
                    ("name".into(), JsonValue::Str(name.clone())),
                    ("value".into(), JsonValue::Num(*v as f64)),
                ])
            })
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|g| {
                JsonValue::Obj(vec![
                    ("name".into(), JsonValue::Str(g.name.clone())),
                    ("last".into(), JsonValue::Num(g.last)),
                    ("min".into(), JsonValue::Num(g.min)),
                    ("max".into(), JsonValue::Num(g.max)),
                    ("mean".into(), JsonValue::Num(g.mean)),
                    ("count".into(), JsonValue::Num(g.count as f64)),
                ])
            })
            .collect();
        let hists = self
            .hists
            .iter()
            .map(|h| {
                JsonValue::Obj(vec![
                    ("name".into(), JsonValue::Str(h.name.clone())),
                    ("count".into(), JsonValue::Num(h.count as f64)),
                    ("mean".into(), JsonValue::Num(h.mean)),
                    ("p50".into(), JsonValue::Num(h.p50 as f64)),
                    ("p95".into(), JsonValue::Num(h.p95 as f64)),
                    ("p99".into(), JsonValue::Num(h.p99 as f64)),
                    ("max".into(), JsonValue::Num(h.max as f64)),
                ])
            })
            .collect();
        JsonValue::Obj(vec![
            ("spans".into(), JsonValue::Arr(spans)),
            ("counters".into(), JsonValue::Arr(counters)),
            ("gauges".into(), JsonValue::Arr(gauges)),
            ("histograms".into(), JsonValue::Arr(hists)),
        ])
    }
}

/// Where a trace report goes. Implementations must not panic on I/O
/// failure — they surface it as `io::Error`.
pub trait Sink {
    /// Renders and writes one report.
    fn emit(&mut self, report: &TraceReport) -> std::io::Result<()>;
}

/// Human-readable sink over any writer; `PrettySink::stderr()` is the
/// interactive default.
pub struct PrettySink<W: Write>(pub W);

impl PrettySink<std::io::Stderr> {
    /// A pretty-printer to stderr.
    pub fn stderr() -> Self {
        Self(std::io::stderr())
    }
}

impl<W: Write> Sink for PrettySink<W> {
    fn emit(&mut self, report: &TraceReport) -> std::io::Result<()> {
        self.0.write_all(report.to_pretty().as_bytes())
    }
}

/// Machine-readable sink: one pretty-printed JSON document per emit.
pub struct JsonSink<W: Write>(pub W);

impl<W: Write> Sink for JsonSink<W> {
    fn emit(&mut self, report: &TraceReport) -> std::io::Result<()> {
        self.0.write_all(report.to_json().to_pretty().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> TraceReport {
        let t = Tracer::new();
        t.enable();
        {
            let _a = t.span("build");
            let _b = t.span("train");
        }
        t.count("queries", 7);
        t.gauge("loss", 0.25);
        t.observe("latency_us", 100);
        t.observe("latency_us", 300);
        TraceReport::capture(&t)
    }

    #[test]
    fn capture_collects_all_sections() {
        let r = sample_report();
        assert_eq!(r.spans.len(), 2);
        assert_eq!(r.counters, vec![("queries".to_string(), 7)]);
        assert_eq!(r.gauges.len(), 1);
        assert_eq!(r.hists.len(), 1);
        assert_eq!(r.hists[0].count, 2);
        assert!(!r.is_empty());
        assert!(TraceReport::default().is_empty());
    }

    #[test]
    fn sinks_render_both_formats() {
        let r = sample_report();
        let mut pretty = Vec::new();
        PrettySink(&mut pretty).emit(&r).unwrap();
        let text = String::from_utf8(pretty).unwrap();
        assert!(text.contains("build/train"));
        assert!(text.contains("queries"));

        let mut json = Vec::new();
        JsonSink(&mut json).emit(&r).unwrap();
        let doc = JsonValue::parse(std::str::from_utf8(&json).unwrap()).unwrap();
        let spans = doc.get("spans").unwrap().as_array().unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(
            doc.get("counters").unwrap().as_array().unwrap()[0]
                .get("value")
                .unwrap()
                .as_f64(),
            Some(7.0)
        );
    }
}
