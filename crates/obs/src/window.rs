//! Rolling-window histograms: a ring of [`LogHistogram`] slots rotated by
//! sample count, merged into one [`HistogramSnapshot`] on demand.
//!
//! A plain `LogHistogram` aggregates forever, which is the wrong shape for
//! *drift* questions — "how is the model doing **lately**?" needs old
//! observations to age out. A [`WindowedHistogram`] keeps `slots`
//! generations; each fills up to `slot_capacity` samples, then the window
//! rotates: the oldest generation is cleared and becomes the new current
//! one. The merged view therefore always covers between
//! `(slots - 1) × slot_capacity` and `slots × slot_capacity` of the most
//! recent samples.
//!
//! Recording stays lock-free (the slots are `LogHistogram`s; the cursor is
//! one atomic). Rotation races are benign by design: a thread recording
//! into a slot that a concurrent rotation is clearing can lose that single
//! sample — fine for a monitoring signal, never blocking the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::hist::{HistogramSnapshot, LogHistogram};

/// A bounded-history histogram over the last ~`slots × slot_capacity`
/// recorded values. See the module docs for the rotation semantics.
#[derive(Debug)]
pub struct WindowedHistogram {
    slots: Box<[LogHistogram]>,
    /// Monotonic generation counter; `gen % slots` is the current slot.
    generation: AtomicU64,
    slot_capacity: u64,
}

impl WindowedHistogram {
    /// Creates a window of `slots` generations of `slot_capacity` samples
    /// each. Panics if either is zero.
    pub fn new(slots: usize, slot_capacity: u64) -> Self {
        assert!(slots > 0 && slot_capacity > 0, "window must be non-empty");
        Self {
            slots: (0..slots).map(|_| LogHistogram::new()).collect(),
            generation: AtomicU64::new(0),
            slot_capacity,
        }
    }

    /// Number of generations in the ring.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Samples each generation holds before the window rotates.
    pub fn slot_capacity(&self) -> u64 {
        self.slot_capacity
    }

    /// Records one value into the current generation, rotating first if it
    /// is full.
    pub fn record(&self, v: u64) {
        let generation = self.generation.load(Ordering::Relaxed);
        let idx = (generation % self.slots.len() as u64) as usize;
        if self.slots[idx].count() >= self.slot_capacity {
            // Advance the window. Exactly one racing thread wins the CAS
            // and clears the next slot; losers simply record into whatever
            // the current generation is by then.
            if self
                .generation
                .compare_exchange(
                    generation,
                    generation + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                let next = ((generation + 1) % self.slots.len() as u64) as usize;
                self.slots[next].reset();
            }
            let cur = self.generation.load(Ordering::Relaxed);
            self.slots[(cur % self.slots.len() as u64) as usize].record(v);
            return;
        }
        self.slots[idx].record(v);
    }

    /// Total samples currently inside the window (across all generations).
    pub fn count(&self) -> u64 {
        self.slots.iter().map(|s| s.count()).sum()
    }

    /// Merges every live generation into one snapshot — the rolling
    /// distribution the drift detector compares against its baseline.
    pub fn merged(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::new();
        for slot in self.slots.iter() {
            out.merge(&slot.snapshot());
        }
        out
    }

    /// Clears the whole window.
    pub fn reset(&self) {
        for slot in self.slots.iter() {
            slot.reset();
        }
        self.generation.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_forgets_old_generations() {
        let w = WindowedHistogram::new(2, 10);
        // Fill two generations with large values...
        for _ in 0..20 {
            w.record(1 << 20);
        }
        assert_eq!(w.count(), 20);
        assert_eq!(w.merged().quantile(0.5), 1 << 20);
        // ...then two more with small ones: the old data must age out.
        for _ in 0..20 {
            w.record(1);
        }
        let m = w.merged();
        assert!(m.count() <= 20, "window kept too much: {}", m.count());
        assert_eq!(m.quantile(0.5), 1);
        assert_eq!(m.max(), 1, "old max must have aged out");
    }

    #[test]
    fn partial_window_merges_all_live_slots() {
        let w = WindowedHistogram::new(4, 100);
        for v in [2u64, 4, 8] {
            w.record(v);
        }
        let m = w.merged();
        assert_eq!(m.count(), 3);
        assert_eq!((m.min(), m.max()), (2, 8));
    }

    #[test]
    fn concurrent_recording_is_approximately_lossless() {
        let w = std::sync::Arc::new(WindowedHistogram::new(4, 1_000_000));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let w = std::sync::Arc::clone(&w);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        w.record(i);
                    }
                });
            }
        });
        // Capacity is never reached, so no rotation can drop samples.
        assert_eq!(w.count(), 80_000);
    }

    #[test]
    fn reset_empties_the_window() {
        let w = WindowedHistogram::new(2, 4);
        for v in 0..10 {
            w.record(v);
        }
        w.reset();
        assert_eq!(w.count(), 0);
        assert_eq!(w.merged().quantile(0.99), 0);
    }
}
