//! Rolling-window histograms: a ring of [`LogHistogram`] slots rotated by
//! sample count, merged into one [`HistogramSnapshot`] on demand.
//!
//! A plain `LogHistogram` aggregates forever, which is the wrong shape for
//! *drift* questions — "how is the model doing **lately**?" needs old
//! observations to age out. A [`WindowedHistogram`] keeps `slots`
//! generations; each fills up to `slot_capacity` samples, then the window
//! rotates: the oldest generation is cleared and becomes the new current
//! one. The merged view therefore always covers between
//! `(slots - 1) × slot_capacity` and `slots × slot_capacity` of the most
//! recent samples.
//!
//! Recording stays lock-free (the slots are `LogHistogram`s; the cursor is
//! one atomic). Rotation races are benign by design: a thread recording
//! into a slot that a concurrent rotation is clearing can lose that single
//! sample — fine for a monitoring signal, never blocking the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::hist::{HistogramSnapshot, LogHistogram};

/// A bounded-history histogram over the last ~`slots × slot_capacity`
/// recorded values. See the module docs for the rotation semantics.
#[derive(Debug)]
pub struct WindowedHistogram {
    slots: Box<[LogHistogram]>,
    /// Monotonic generation counter; `gen % slots` is the current slot.
    generation: AtomicU64,
    slot_capacity: u64,
}

impl WindowedHistogram {
    /// Creates a window of `slots` generations of `slot_capacity` samples
    /// each. Panics if either is zero.
    pub fn new(slots: usize, slot_capacity: u64) -> Self {
        assert!(slots > 0 && slot_capacity > 0, "window must be non-empty");
        Self {
            slots: (0..slots).map(|_| LogHistogram::new()).collect(),
            generation: AtomicU64::new(0),
            slot_capacity,
        }
    }

    /// Number of generations in the ring.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Samples each generation holds before the window rotates.
    pub fn slot_capacity(&self) -> u64 {
        self.slot_capacity
    }

    /// Records one value into the current generation, rotating first if it
    /// is full.
    pub fn record(&self, v: u64) {
        let generation = self.generation.load(Ordering::Relaxed);
        let idx = (generation % self.slots.len() as u64) as usize;
        if self.slots[idx].count() >= self.slot_capacity {
            // Advance the window. Exactly one racing thread wins the CAS
            // and clears the next slot; losers simply record into whatever
            // the current generation is by then.
            if self
                .generation
                .compare_exchange(
                    generation,
                    generation + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                let next = ((generation + 1) % self.slots.len() as u64) as usize;
                self.slots[next].reset();
            }
            let cur = self.generation.load(Ordering::Relaxed);
            self.slots[(cur % self.slots.len() as u64) as usize].record(v);
            return;
        }
        self.slots[idx].record(v);
    }

    /// Total samples currently inside the window (across all generations).
    pub fn count(&self) -> u64 {
        self.slots.iter().map(|s| s.count()).sum()
    }

    /// Merges every live generation into one snapshot — the rolling
    /// distribution the drift detector compares against its baseline.
    pub fn merged(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::new();
        for slot in self.slots.iter() {
            out.merge(&slot.snapshot());
        }
        out
    }

    /// Flattens the full window state — ring geometry, rotation cursor,
    /// and every slot — to a `u64` word sequence for serialization:
    /// `[slots, slot_capacity, generation, slot_0 words, slot_1 words, …]`
    /// where each slot contributes its [`HistogramSnapshot::to_words`]
    /// encoding. Restoring via [`WindowedHistogram::from_words`] resumes
    /// rotation exactly where this window left off.
    pub fn to_words(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(3 + self.slots.len() * 52);
        out.extend([
            self.slots.len() as u64,
            self.slot_capacity,
            self.generation.load(Ordering::Relaxed),
        ]);
        for slot in self.slots.iter() {
            out.extend(slot.snapshot().to_words());
        }
        out
    }

    /// Inverse of [`WindowedHistogram::to_words`]. Returns `None` when the
    /// geometry header is implausible, the word count does not match it, or
    /// any slot fails [`HistogramSnapshot::from_words`] validation.
    pub fn from_words(words: &[u64]) -> Option<Self> {
        const MAX_SLOTS: u64 = 1 << 16;
        let (&slots, rest) = words.split_first()?;
        let (&slot_capacity, rest) = rest.split_first()?;
        let (&generation, rest) = rest.split_first()?;
        if slots == 0 || slots > MAX_SLOTS || slot_capacity == 0 {
            return None;
        }
        let slot_words = HistogramSnapshot::new().to_words().len();
        if rest.len() != slots as usize * slot_words {
            return None;
        }
        let mut ring = Vec::with_capacity(slots as usize);
        for chunk in rest.chunks_exact(slot_words) {
            // Per-slot validation comes from `HistogramSnapshot::from_words`
            // (bucket sum must equal count). Slot counts are deliberately
            // not bounded by `slot_capacity`: racing recorders can push a
            // live slot slightly past capacity, and that state must still
            // round-trip.
            ring.push(LogHistogram::from_snapshot(&HistogramSnapshot::from_words(
                chunk,
            )?));
        }
        Some(Self {
            slots: ring.into_boxed_slice(),
            generation: AtomicU64::new(generation),
            slot_capacity,
        })
    }

    /// Clears the whole window.
    pub fn reset(&self) {
        for slot in self.slots.iter() {
            slot.reset();
        }
        self.generation.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_forgets_old_generations() {
        let w = WindowedHistogram::new(2, 10);
        // Fill two generations with large values...
        for _ in 0..20 {
            w.record(1 << 20);
        }
        assert_eq!(w.count(), 20);
        assert_eq!(w.merged().quantile(0.5), 1 << 20);
        // ...then two more with small ones: the old data must age out.
        for _ in 0..20 {
            w.record(1);
        }
        let m = w.merged();
        assert!(m.count() <= 20, "window kept too much: {}", m.count());
        assert_eq!(m.quantile(0.5), 1);
        assert_eq!(m.max(), 1, "old max must have aged out");
    }

    #[test]
    fn partial_window_merges_all_live_slots() {
        let w = WindowedHistogram::new(4, 100);
        for v in [2u64, 4, 8] {
            w.record(v);
        }
        let m = w.merged();
        assert_eq!(m.count(), 3);
        assert_eq!((m.min(), m.max()), (2, 8));
    }

    #[test]
    fn concurrent_recording_is_approximately_lossless() {
        let w = std::sync::Arc::new(WindowedHistogram::new(4, 1_000_000));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let w = std::sync::Arc::clone(&w);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        w.record(i);
                    }
                });
            }
        });
        // Capacity is never reached, so no rotation can drop samples.
        assert_eq!(w.count(), 80_000);
    }

    #[test]
    fn window_words_roundtrip_and_resume_rotation() {
        let w = WindowedHistogram::new(3, 5);
        for v in 0..12u64 {
            w.record(1 << (v % 8));
        }
        let words = w.to_words();
        let restored = WindowedHistogram::from_words(&words).expect("roundtrip");
        assert_eq!(restored.slots(), 3);
        assert_eq!(restored.slot_capacity(), 5);
        assert_eq!(restored.count(), w.count());
        assert_eq!(restored.merged(), w.merged());
        assert_eq!(restored.to_words(), words);
        // Restored window keeps rotating with the same semantics: filling
        // past capacity ages out old generations instead of accumulating.
        for _ in 0..100 {
            restored.record(1);
        }
        assert!(
            restored.count() <= 15,
            "rotation resumed: {}",
            restored.count()
        );
    }

    #[test]
    fn window_words_reject_corruption() {
        let w = WindowedHistogram::new(2, 4);
        for v in 1..=6u64 {
            w.record(v);
        }
        let words = w.to_words();
        // Truncations and geometry lies are rejected, never panic.
        for cut in 0..words.len() {
            assert!(
                WindowedHistogram::from_words(&words[..cut]).is_none(),
                "cut={cut}"
            );
        }
        let mut zero_slots = words.clone();
        zero_slots[0] = 0;
        assert!(WindowedHistogram::from_words(&zero_slots).is_none());
        let mut huge_slots = words.clone();
        huge_slots[0] = u64::MAX;
        assert!(WindowedHistogram::from_words(&huge_slots).is_none());
        let mut zero_cap = words.clone();
        zero_cap[1] = 0;
        assert!(WindowedHistogram::from_words(&zero_cap).is_none());
        // Corrupting a slot's count breaks its bucket-sum invariant.
        let mut bad_slot = words.clone();
        bad_slot[3] += 1;
        assert!(WindowedHistogram::from_words(&bad_slot).is_none());
    }

    #[test]
    fn reset_empties_the_window() {
        let w = WindowedHistogram::new(2, 4);
        for v in 0..10 {
            w.record(v);
        }
        w.reset();
        assert_eq!(w.count(), 0);
        assert_eq!(w.merged().quantile(0.99), 0);
    }
}
