//! A minimal JSON value type with a recursive-descent parser and emitter.
//!
//! The offline build has no serde; this covers exactly what the
//! workspace's machine-readable artifacts need — the `BENCH_*.json`
//! baselines the benchmark harness reads and diffs, and the JSON trace
//! sink. Object keys preserve insertion order so emitted files diff
//! cleanly under version control.

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a JSON document, requiring it to span the whole input.
    pub fn parse(s: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline —
    /// the committed-artifact format.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            JsonValue::Obj(members) if !members.is_empty() => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    out.push_str(&format!("{}: ", Quoted(k)));
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => {
                out.push_str(&other.to_string());
            }
        }
    }
}

/// Formats a JSON number the way the emitter writes it: integral values
/// without a fractional part, everything else via the shortest roundtrip
/// `f64` form.
fn fmt_num(n: f64) -> String {
    if n.is_finite() && n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else if n.is_finite() {
        format!("{n}")
    } else {
        // JSON has no Inf/NaN; emit null so output stays parseable.
        "null".to_string()
    }
}

struct Quoted<'a>(&'a str);

impl fmt::Display for Quoted<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("\"")?;
        for c in self.0.chars() {
            match c {
                '"' => f.write_str("\\\"")?,
                '\\' => f.write_str("\\\\")?,
                '\n' => f.write_str("\\n")?,
                '\r' => f.write_str("\\r")?,
                '\t' => f.write_str("\\t")?,
                c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                c => write!(f, "{c}")?,
            }
        }
        f.write_str("\"")
    }
}

impl fmt::Display for JsonValue {
    /// Compact single-line form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) => f.write_str(&fmt_num(*n)),
            JsonValue::Str(s) => write!(f, "{}", Quoted(s)),
            JsonValue::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}: {v}", Quoted(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(&format!("malformed number '{text}'")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_committed_bench_artifacts() {
        let doc = r#"{
  "experiment": "serve_throughput",
  "clients": 64,
  "per_request": {"secs": 1.1398, "rps": 1347.6},
  "speedup": 7.364,
  "flags": [true, false, null],
  "note": "a \"quoted\" name\n"
}"#;
        let v = JsonValue::parse(doc).unwrap();
        assert_eq!(v.get("clients").unwrap().as_f64(), Some(64.0));
        assert_eq!(
            v.get("per_request").unwrap().get("rps").unwrap().as_f64(),
            Some(1347.6)
        );
        assert_eq!(v.get("speedup").unwrap().as_f64(), Some(7.364));
        assert_eq!(v.get("flags").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("note").unwrap().as_str(), Some("a \"quoted\" name\n"));
    }

    #[test]
    fn roundtrips_through_display_and_pretty() {
        let v = JsonValue::Obj(vec![
            ("b".into(), JsonValue::Num(2.5)),
            ("a".into(), JsonValue::Arr(vec![JsonValue::Num(1.0)])),
            ("s".into(), JsonValue::Str("x\ty".into())),
            ("empty".into(), JsonValue::Obj(vec![])),
        ]);
        for text in [v.to_string(), v.to_pretty()] {
            let back = JsonValue::parse(&text).unwrap();
            assert_eq!(back, v, "failed roundtrip of {text}");
        }
        // Key order is preserved, not sorted.
        assert!(v.to_string().find("\"b\"").unwrap() < v.to_string().find("\"a\"").unwrap());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "1 2", "\"unterminated", "nul"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn numbers_emit_cleanly() {
        assert_eq!(JsonValue::Num(3.0).to_string(), "3");
        assert_eq!(JsonValue::Num(3.25).to_string(), "3.25");
        assert_eq!(JsonValue::Num(f64::NAN).to_string(), "null");
    }
}
