//! A bounded, last-N ring buffer for slow-request exemplars.
//!
//! Aggregate histograms answer "how bad is p99?" but not "*which*
//! requests were bad, and where did their time go?". The serving layer
//! pushes one [`ExemplarRing`] entry per slow request (full stage
//! timeline + query template + sketch id); the `TRACE` wire command reads
//! them back.
//!
//! The design keeps the producer path non-blocking: writers claim a slot
//! with one atomic `fetch_add` (wait-free), then fill it under a per-slot
//! `try_lock` — if another writer has lapped the ring and still holds
//! that slot, the newer exemplar is dropped rather than ever blocking a
//! request thread. Readers lock each slot briefly; they only race writers
//! that wrapped a full ring length, in which case losing one entry is the
//! correct outcome anyway (it was about to be overwritten).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One ring slot: empty, or a value tagged with its push sequence number.
type Slot<T> = Mutex<Option<(u64, T)>>;

/// A fixed-capacity "keep the newest N" buffer, safe for many concurrent
/// producers. Entries carry a monotonic sequence number so snapshots come
/// back oldest-first even across wrap-around.
#[derive(Debug)]
pub struct ExemplarRing<T> {
    slots: Box<[Slot<T>]>,
    cursor: AtomicU64,
    dropped: AtomicU64,
}

impl<T: Clone> ExemplarRing<T> {
    /// Creates a ring holding the newest `capacity` entries. Panics if
    /// `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be non-zero");
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Maximum number of retained entries.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total entries ever pushed (including since-overwritten ones).
    pub fn pushed(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Entries discarded because their slot was momentarily contended.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Stores `value`, overwriting the oldest entry once full. Never
    /// blocks: on (rare) slot contention the value is counted as dropped.
    pub fn push(&self, value: T) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let idx = (seq % self.slots.len() as u64) as usize;
        match self.slots[idx].try_lock() {
            Ok(mut slot) => {
                // A lapping writer may already have stored a *newer* entry
                // here; keep whichever sequence is larger.
                if slot.as_ref().is_none_or(|(s, _)| *s < seq) {
                    *slot = Some((seq, value));
                } else {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Copies out every retained entry, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        let mut entries: Vec<(u64, T)> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().ok().and_then(|g| g.clone()))
            .collect();
        entries.sort_by_key(|(seq, _)| *seq);
        entries.into_iter().map(|(_, v)| v).collect()
    }

    /// Empties the ring (sequence numbering keeps advancing).
    pub fn clear(&self) {
        for slot in self.slots.iter() {
            if let Ok(mut g) = slot.lock() {
                *g = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_newest_entries_in_order() {
        let ring = ExemplarRing::new(4);
        for i in 0..10 {
            ring.push(i);
        }
        assert_eq!(ring.snapshot(), vec![6, 7, 8, 9]);
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.capacity(), 4);
    }

    #[test]
    fn partial_fill_returns_what_exists() {
        let ring = ExemplarRing::new(8);
        ring.push("a");
        ring.push("b");
        assert_eq!(ring.snapshot(), vec!["a", "b"]);
        ring.clear();
        assert!(ring.snapshot().is_empty());
        ring.push("c");
        assert_eq!(ring.snapshot(), vec!["c"]);
    }

    #[test]
    fn concurrent_pushes_never_block_or_duplicate() {
        let ring = std::sync::Arc::new(ExemplarRing::new(16));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let ring = std::sync::Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        ring.push(t * 1_000_000 + i);
                    }
                });
            }
        });
        assert_eq!(ring.pushed(), 8000);
        let snap = ring.snapshot();
        assert!(snap.len() <= 16);
        // Snapshot order must be strictly increasing in sequence.
        let mut sorted = snap.clone();
        sorted.sort_unstable();
        assert_eq!(snap, sorted);
    }
}
