//! `ds-obs`: zero-dependency structured tracing and metrics for the Deep
//! Sketches workspace.
//!
//! The sketch lifecycle — build, train, swap, serve — is instrumented
//! against this crate:
//!
//! * **Spans** ([`Tracer::span`]) time hierarchical phases; completions
//!   aggregate thread-safely under `/`-joined paths
//!   (`build/train/epoch/forward/tables`), so a whole training run
//!   produces a compact breakdown instead of an event stream.
//! * **Typed scalars** — monotonic [`Counter`]s, last-value [`Gauge`]s
//!   with min/max/mean aggregation, and lock-free log₂ [`LogHistogram`]s
//!   for latency/size distributions (the same histogram the serving
//!   `METRICS` command reports).
//! * **Request-level building blocks** — mergeable histogram
//!   [`HistogramSnapshot`]s, rolling [`WindowedHistogram`]s for drift
//!   monitoring, a non-blocking [`ExemplarRing`] for slow-request
//!   exemplars, and [`prom`] text exposition for the `STATS` command.
//! * **Fleet plane** — cross-process trace identity ([`trace`]:
//!   128-bit [`TraceContext`] ids minted by a seeded [`IdSource`]),
//!   exposition merging across shards ([`agg`]: counters sum,
//!   histograms merge exactly, gauges take the worst), and declarative
//!   SLOs with fast/slow-window burn-rate alerting ([`slo`]).
//! * **Sinks** — [`TraceReport::capture`] snapshots a tracer;
//!   [`PrettySink`] renders it for humans (stderr), [`JsonSink`] for
//!   machines. The [`json`] module is the workspace's minimal JSON
//!   parser/emitter (the offline build has no serde), also used by the
//!   benchmark harness to diff `BENCH_*.json` baselines.
//!
//! Instrumentation is **off by default** and costs one relaxed atomic
//! load per call site when disabled, so hot serving/training paths pay
//! effectively nothing until someone turns tracing on. Tracing only
//! measures — estimates and trained weights are bit-identical with
//! tracing on or off.
//!
//! ```
//! let tracer = ds_obs::global();
//! tracer.enable();
//! {
//!     let _build = tracer.span("build");
//!     let _train = tracer.span("train");
//!     tracer.gauge("train/loss", 0.12);
//! }
//! let report = ds_obs::TraceReport::capture(tracer);
//! assert!(report.spans.iter().any(|s| s.path == "build/train"));
//! tracer.disable();
//! # tracer.reset();
//! ```

#![warn(missing_docs)]

pub mod agg;
pub mod counter;
pub mod fleet;
pub mod hist;
pub mod json;
pub mod prom;
pub mod ring;
pub mod sink;
pub mod slo;
pub mod span;
pub mod trace;
pub mod window;

pub use agg::merge_expositions;
pub use counter::{Counter, Gauge};
pub use fleet::FleetCounters;
pub use hist::{HistogramSnapshot, LogHistogram};
pub use json::{JsonError, JsonValue};
pub use prom::{parse_families, FamilyKind, PromFamily, PromSample, PromText};
pub use ring::ExemplarRing;
pub use sink::{GaugeReport, HistReport, JsonSink, PrettySink, Sink, SpanReport, TraceReport};
pub use slo::{BurnRates, SloSpec, SloTracker};
pub use span::{Span, SpanStat, Tracer};
pub use trace::{IdSource, TraceContext};
pub use window::WindowedHistogram;

use std::sync::OnceLock;

static GLOBAL: OnceLock<Tracer> = OnceLock::new();

/// The process-wide tracer every instrumented crate records into.
/// Disabled until [`Tracer::enable`] is called on it.
pub fn global() -> &'static Tracer {
    GLOBAL.get_or_init(Tracer::new)
}

#[cfg(test)]
mod tests {
    #[test]
    fn global_is_a_disabled_singleton() {
        let a = super::global();
        let b = super::global();
        assert!(std::ptr::eq(a, b));
        // Off by default: recording without enable() is a no-op. (Other
        // tests use their own Tracer instances, so the global stays
        // untouched here.)
        a.count("lib_test/noop", 1);
        assert_eq!(a.counter_value("lib_test/noop"), 0);
    }
}
