//! The tracer: span timers with thread-safe hierarchical aggregation plus
//! a name-indexed registry of counters, gauges, and histograms.
//!
//! A [`Tracer`] is **off by default** and every instrumentation call is
//! gated on one relaxed atomic load, so instrumented hot paths cost a
//! single predictable branch when tracing is disabled. When enabled,
//! spans aggregate under `/`-joined paths built from the per-thread span
//! stack — `build/train/epoch/forward/tables` — so a report shows where
//! time went at every level of the lifecycle without storing individual
//! events.
//!
//! Tracing only ever *measures*; it never changes what instrumented code
//! computes. Training runs are bit-identical with tracing on or off
//! (covered by a test in `ds-core`).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::counter::{Counter, Gauge};
use crate::hist::LogHistogram;

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStat {
    /// Number of completed spans at this path.
    pub count: u64,
    /// Total nanoseconds across all completions.
    pub total_ns: u64,
    /// Fastest completion.
    pub min_ns: u64,
    /// Slowest completion.
    pub max_ns: u64,
}

impl SpanStat {
    fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns += ns;
    }

    /// Mean nanoseconds per completion (0 when never completed).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

thread_local! {
    /// Per-thread stack of open span paths; spans on worker threads start
    /// a fresh hierarchy rooted at their own name.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// A structured tracing + metrics aggregator. Cheap to share (`&'static`
/// via [`crate::global`], or `Arc`); every method takes `&self`.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: AtomicBool,
    spans: Mutex<BTreeMap<String, SpanStat>>,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    hists: Mutex<BTreeMap<String, Arc<LogHistogram>>>,
}

impl Tracer {
    /// Creates a disabled tracer with no recorded data.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns instrumentation on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns instrumentation off (recorded data is kept).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether instrumentation is currently on. This is the single
    /// relaxed load every disabled-path instrumentation call costs.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Opens a span. While the returned guard lives, nested spans on the
    /// same thread aggregate under `<this path>/<their name>`; dropping
    /// the guard records the elapsed time. A no-op when disabled. Guards
    /// must be dropped on the thread that created them, in LIFO order.
    #[inline]
    pub fn span(&self, name: &str) -> Span<'_> {
        if !self.is_enabled() {
            return Span { active: None };
        }
        self.span_slow(name)
    }

    #[cold]
    fn span_slow(&self, name: &str) -> Span<'_> {
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{name}"),
                None => name.to_string(),
            };
            stack.push(path.clone());
            path
        });
        Span {
            active: Some(ActiveSpan {
                tracer: self,
                path,
                start: Instant::now(),
            }),
        }
    }

    /// Adds `n` to the named counter. A no-op when disabled.
    #[inline]
    pub fn count(&self, name: &str, n: u64) {
        if self.is_enabled() {
            self.counter(name).add(n);
        }
    }

    /// Records an observation on the named gauge. A no-op when disabled.
    #[inline]
    pub fn gauge(&self, name: &str, v: f64) {
        if self.is_enabled() {
            self.gauge_handle(name).set(v);
        }
    }

    /// Records a value into the named log₂ histogram. A no-op when
    /// disabled.
    #[inline]
    pub fn observe(&self, name: &str, v: u64) {
        if self.is_enabled() {
            self.histogram(name).record(v);
        }
    }

    /// The named counter, created on first use. Hot paths that cannot
    /// afford the registry lookup should hold onto the returned `Arc`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter registry");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The named gauge, created on first use.
    pub fn gauge_handle(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge registry");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The named histogram, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<LogHistogram> {
        let mut map = self.hists.lock().expect("histogram registry");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Aggregated statistics of one span path, if it ever completed.
    pub fn span_stat(&self, path: &str) -> Option<SpanStat> {
        self.spans.lock().expect("span registry").get(path).copied()
    }

    /// All span paths with their aggregates, sorted by path.
    pub fn span_stats(&self) -> Vec<(String, SpanStat)> {
        self.spans
            .lock()
            .expect("span registry")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Current value of a named counter (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .expect("counter registry")
            .get(name)
            .map_or(0, |c| c.get())
    }

    /// Discards every recorded span, counter, gauge, and histogram; the
    /// enabled flag is untouched.
    pub fn reset(&self) {
        self.spans.lock().expect("span registry").clear();
        self.counters.lock().expect("counter registry").clear();
        self.gauges.lock().expect("gauge registry").clear();
        self.hists.lock().expect("histogram registry").clear();
    }

    pub(crate) fn record_span(&self, path: &str, ns: u64) {
        self.spans
            .lock()
            .expect("span registry")
            .entry(path.to_string())
            .or_default()
            .record(ns);
    }

    pub(crate) fn visit_registries(
        &self,
        mut counters: impl FnMut(&str, &Counter),
        mut gauges: impl FnMut(&str, &Gauge),
        mut hists: impl FnMut(&str, &LogHistogram),
    ) {
        for (name, c) in self.counters.lock().expect("counter registry").iter() {
            counters(name, c);
        }
        for (name, g) in self.gauges.lock().expect("gauge registry").iter() {
            gauges(name, g);
        }
        for (name, h) in self.hists.lock().expect("histogram registry").iter() {
            hists(name, h);
        }
    }
}

struct ActiveSpan<'a> {
    tracer: &'a Tracer,
    path: String,
    start: Instant,
}

/// A live span; dropping it records the elapsed time under its path.
pub struct Span<'a> {
    active: Option<ActiveSpan<'a>>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let ns = active.start.elapsed().as_nanos() as u64;
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            debug_assert_eq!(stack.last(), Some(&active.path), "span drop order");
            stack.pop();
        });
        active.tracer.record_span(&active.path, ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        {
            let _s = t.span("a");
            t.count("c", 5);
            t.gauge("g", 1.0);
            t.observe("h", 10);
        }
        assert!(t.span_stats().is_empty());
        assert_eq!(t.counter_value("c"), 0);
    }

    #[test]
    fn spans_nest_into_paths() {
        let t = Tracer::new();
        t.enable();
        {
            let _outer = t.span("build");
            for _ in 0..3 {
                let _inner = t.span("epoch");
            }
        }
        let build = t.span_stat("build").unwrap();
        assert_eq!(build.count, 1);
        let epoch = t.span_stat("build/epoch").unwrap();
        assert_eq!(epoch.count, 3);
        assert!(epoch.min_ns <= epoch.max_ns);
        assert!(epoch.total_ns <= build.total_ns);
        assert!(t.span_stat("epoch").is_none(), "child must nest");
    }

    #[test]
    fn sibling_threads_root_their_own_hierarchies() {
        let t = Tracer::new();
        t.enable();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _w = t.span("worker");
                    let _i = t.span("inner");
                });
            }
        });
        assert_eq!(t.span_stat("worker").unwrap().count, 4);
        assert_eq!(t.span_stat("worker/inner").unwrap().count, 4);
    }

    #[test]
    fn registries_aggregate_and_reset() {
        let t = Tracer::new();
        t.enable();
        t.count("reqs", 2);
        t.count("reqs", 3);
        t.gauge("loss", 0.5);
        t.observe("lat", 100);
        assert_eq!(t.counter_value("reqs"), 5);
        assert_eq!(t.gauge_handle("loss").last(), 0.5);
        assert_eq!(t.histogram("lat").count(), 1);
        t.reset();
        assert_eq!(t.counter_value("reqs"), 0);
        assert!(t.span_stats().is_empty());
        assert!(t.is_enabled(), "reset keeps the enabled flag");
    }
}
