//! Prometheus-style text exposition of tracer aggregates.
//!
//! Renders every counter, gauge, histogram, and span a [`Tracer`] has
//! aggregated in the classic `text/plain; version=0.0.4` shape — `# TYPE`
//! headers, `name{label="value"} number` samples — the format every
//! scraping stack already speaks. The serving layer's `STATS` wire
//! command is this text (newline-escaped onto one line), optionally
//! preceded by its own request/stage metrics rendered through
//! [`PromText`].
//!
//! Naming: raw metric names use `/` as a hierarchy separator
//! (`serve/batch_size`); exposition names must match
//! `[a-zA-Z_:][a-zA-Z0-9_:]*`, so every other character maps to `_` and
//! everything gets a `ds_` namespace prefix: `ds_serve_batch_size`.

use crate::hist::HistogramSnapshot;
use crate::span::Tracer;

/// Sanitizes a raw `/`-separated metric name into a legal Prometheus
/// name with the workspace `ds_` prefix.
pub fn metric_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 3);
    out.push_str("ds_");
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Incremental builder for one exposition document. Metric families are
/// emitted in call order; callers wanting determinism feed it sorted
/// names (tracer registries iterate sorted already).
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn header(&mut self, name: &str, kind: &str) {
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    pub(crate) fn sample(&mut self, name: &str, labels: &str, value: f64) {
        self.out.push_str(name);
        self.out.push_str(labels);
        self.out.push(' ');
        // Integers render without a fraction; everything else shortest-
        // roundtrip, matching the wire-float convention elsewhere.
        if value.fract() == 0.0 && value.abs() < 1e15 {
            self.out.push_str(&format!("{}", value as i64));
        } else {
            self.out.push_str(&format!("{value:?}"));
        }
        self.out.push('\n');
    }

    /// Emits one monotonic counter.
    pub fn counter(&mut self, raw_name: &str, value: u64) -> &mut Self {
        let name = metric_name(raw_name);
        self.header(&name, "counter");
        self.sample(&name, "", value as f64);
        self
    }

    /// Emits one gauge (latest value of a continuous signal).
    pub fn gauge(&mut self, raw_name: &str, value: f64) -> &mut Self {
        let name = metric_name(raw_name);
        self.header(&name, "gauge");
        self.sample(&name, "", value);
        self
    }

    /// Emits one distribution as a Prometheus summary: `quantile` samples
    /// for p50/p95/p99, plus `_sum` and `_count`.
    pub fn summary(&mut self, raw_name: &str, snap: &HistogramSnapshot) -> &mut Self {
        let name = metric_name(raw_name);
        self.header(&name, "summary");
        for (label, q) in [("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99)] {
            self.sample(
                &name,
                &format!("{{quantile=\"{label}\"}}"),
                snap.quantile(q) as f64,
            );
        }
        self.sample(&format!("{name}_sum"), "", snap.sum() as f64);
        self.sample(&format!("{name}_count"), "", snap.count() as f64);
        self
    }

    /// Emits one distribution as a native Prometheus histogram —
    /// cumulative `_bucket{le="…"}` samples (log₂ bucket upper bounds,
    /// only non-empty buckets, plus `+Inf`), `_sum` and `_count` — and
    /// two sibling gauges `<name>_min` / `<name>_max`.
    ///
    /// Unlike [`PromText::summary`] quantiles, this family is **exactly
    /// mergeable** across processes: summing bucket/sum/count samples
    /// (min of mins, max of maxes) reproduces
    /// [`HistogramSnapshot::merge`], which is what the fleet aggregator
    /// relies on. Values are exact up to f64 integer precision (2⁵³).
    pub fn histogram(&mut self, raw_name: &str, snap: &HistogramSnapshot) -> &mut Self {
        self.histogram_sanitized(&metric_name(raw_name), snap);
        // The `_min` gauge merges by minimum (the aggregator special-cases
        // histogram siblings); together with `_max` it completes the
        // snapshot.
        self.gauge(&format!("{raw_name}_min"), snap.min() as f64);
        self.gauge(&format!("{raw_name}_max"), snap.max() as f64);
        self
    }

    /// The histogram family body (`_bucket`/`_sum`/`_count`) for an
    /// already-sanitized name — shared by [`PromText::histogram`] and the
    /// fleet aggregator's re-emission path.
    pub(crate) fn histogram_sanitized(&mut self, name: &str, snap: &HistogramSnapshot) {
        self.header(name, "histogram");
        let words = snap.to_words();
        let mut cumulative = 0u64;
        for (i, &b) in words[4..].iter().enumerate() {
            if b == 0 {
                continue;
            }
            cumulative += b;
            // Bucket 0 holds zeros; bucket i holds [2^(i-1), 2^i), so its
            // exact upper bound as an `le` is 2^i - 1.
            let le = if i == 0 { 0 } else { (1u64 << i) - 1 };
            self.sample(
                &format!("{name}_bucket"),
                &format!("{{le=\"{le}\"}}"),
                cumulative as f64,
            );
        }
        self.sample(
            &format!("{name}_bucket"),
            "{le=\"+Inf\"}",
            snap.count() as f64,
        );
        self.sample(&format!("{name}_sum"), "", snap.sum() as f64);
        self.sample(&format!("{name}_count"), "", snap.count() as f64);
    }

    /// Appends everything `tracer` has aggregated: counters, gauges,
    /// histograms (as summaries), and spans (as `_count`/`_total_ns`
    /// counter pairs under `span/<path>`).
    pub fn tracer(&mut self, tracer: &Tracer) -> &mut Self {
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        let mut counters = Vec::new();
        tracer.visit_registries(
            |name, c| counters.push((name.to_string(), c.get())),
            |name, g| gauges.push((name.to_string(), g.last())),
            |name, h| hists.push((name.to_string(), h.snapshot())),
        );
        for (name, v) in counters {
            self.counter(&name, v);
        }
        for (name, v) in gauges {
            self.gauge(&name, v);
        }
        for (name, snap) in hists {
            self.summary(&name, &snap);
        }
        for (path, stat) in tracer.span_stats() {
            self.counter(&format!("span/{path}/count"), stat.count);
            self.counter(&format!("span/{path}/total_ns"), stat.total_ns);
        }
        self
    }

    /// The finished exposition text.
    pub fn finish(&self) -> &str {
        &self.out
    }

    /// Consumes the builder, returning the document.
    pub fn into_string(self) -> String {
        self.out
    }
}

/// One parsed exposition sample: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Sanitized metric name (`ds_…`).
    pub name: String,
    /// `(key, value)` label pairs, in document order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Parses an exposition document back into samples, skipping comment and
/// blank lines. Returns `None` on the first malformed sample line — used
/// by the typed `STATS` client. Label values must not contain escaped
/// quotes (the renderer never emits them).
pub fn parse_text(doc: &str) -> Option<Vec<PromSample>> {
    let mut out = Vec::new();
    for line in doc.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, value) = line.rsplit_once(' ')?;
        let value: f64 = value.parse().ok()?;
        let (name, labels) = match head.split_once('{') {
            None => (head.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest.strip_suffix('}')?;
                let mut labels = Vec::new();
                for pair in body.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair.split_once('=')?;
                    let v = v.strip_prefix('"')?.strip_suffix('"')?;
                    labels.push((k.to_string(), v.to_string()));
                }
                (name.to_string(), labels)
            }
        };
        if name.is_empty() {
            return None;
        }
        out.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Some(out)
}

/// The declared type of one exposition family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyKind {
    /// Monotonic counter — fleet merge sums it.
    Counter,
    /// Point-in-time gauge — fleet merge takes the max (min for the
    /// `_min` companions of histogram families).
    Gauge,
    /// Quantile summary — not exactly mergeable; quantiles merge by max
    /// as an upper bound, `_sum`/`_count` by sum.
    Summary,
    /// Native histogram — exactly mergeable bucket-wise.
    Histogram,
    /// A sample with no preceding `# TYPE` header.
    Untyped,
}

impl FamilyKind {
    fn parse(s: &str) -> Self {
        match s {
            "counter" => Self::Counter,
            "gauge" => Self::Gauge,
            "summary" => Self::Summary,
            "histogram" => Self::Histogram,
            _ => Self::Untyped,
        }
    }
}

/// One metric family: a `# TYPE` header plus every sample belonging to
/// it (same name, or the name plus a `_bucket`/`_sum`/`_count`-style
/// suffix), in document order.
#[derive(Debug, Clone, PartialEq)]
pub struct PromFamily {
    /// Sanitized family name as declared by the header.
    pub name: String,
    /// Declared family type.
    pub kind: FamilyKind,
    /// The family's samples, in document order.
    pub samples: Vec<PromSample>,
}

impl PromFamily {
    /// The value of this family's only unlabeled sample named exactly
    /// `name` — the common case for counters and gauges.
    pub fn scalar(&self) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == self.name && s.labels.is_empty())
            .map(|s| s.value)
    }

    /// The value of the `<family>_<suffix>` sample, if present.
    pub fn suffixed(&self, suffix: &str) -> Option<f64> {
        let want = format!("{}_{suffix}", self.name);
        self.samples
            .iter()
            .find(|s| s.name == want && s.labels.is_empty())
            .map(|s| s.value)
    }
}

/// Parses an exposition document into typed families — the structured
/// counterpart of [`parse_text`], consuming the `# TYPE` headers that
/// `parse_text` skips. Samples appearing before any header (or not
/// matching the current family's name) become their own
/// [`FamilyKind::Untyped`] families. Returns `None` on the first
/// malformed header or sample line.
pub fn parse_families(doc: &str) -> Option<Vec<PromFamily>> {
    fn belongs(family: &str, sample: &str) -> bool {
        sample == family
            || sample
                .strip_prefix(family)
                .is_some_and(|rest| rest.starts_with('_'))
    }
    let mut out: Vec<PromFamily> = Vec::new();
    for line in doc.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("# TYPE ") {
            let (name, kind) = header.split_once(' ')?;
            if name.is_empty() {
                return None;
            }
            out.push(PromFamily {
                name: name.to_string(),
                kind: FamilyKind::parse(kind.trim()),
                samples: Vec::new(),
            });
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments (e.g. # HELP)
        }
        let sample = parse_text(line)?.pop()?;
        match out.last_mut() {
            Some(fam) if belongs(&fam.name, &sample.name) => fam.samples.push(sample),
            _ => out.push(PromFamily {
                name: sample.name.clone(),
                kind: FamilyKind::Untyped,
                samples: vec![sample],
            }),
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LogHistogram;

    #[test]
    fn names_are_sanitized_and_prefixed() {
        assert_eq!(metric_name("serve/latency_us"), "ds_serve_latency_us");
        assert_eq!(metric_name("a b-c.d"), "ds_a_b_c_d");
    }

    #[test]
    fn renders_counters_gauges_and_summaries() {
        let h = LogHistogram::new();
        h.record(100);
        h.record(300);
        let mut p = PromText::new();
        p.counter("serve/requests", 42)
            .gauge("train/loss", 0.125)
            .summary("serve/latency_us", &h.snapshot());
        let doc = p.into_string();
        assert!(doc.contains("# TYPE ds_serve_requests counter\nds_serve_requests 42\n"));
        assert!(doc.contains("ds_train_loss 0.125"));
        assert!(doc.contains("ds_serve_latency_us{quantile=\"0.5\"}"));
        assert!(doc.contains("ds_serve_latency_us_sum 400"));
        assert!(doc.contains("ds_serve_latency_us_count 2"));
    }

    #[test]
    fn tracer_dump_roundtrips_through_the_parser() {
        let t = Tracer::new();
        t.enable();
        {
            let _s = t.span("work");
        }
        t.count("reqs", 7);
        t.gauge("loss", 0.5);
        t.observe("lat", 128);
        let mut p = PromText::new();
        p.tracer(&t);
        let samples = parse_text(p.finish()).expect("parseable");
        let get = |n: &str| samples.iter().find(|s| s.name == n).map(|s| s.value);
        assert_eq!(get("ds_reqs"), Some(7.0));
        assert_eq!(get("ds_loss"), Some(0.5));
        assert_eq!(get("ds_lat_count"), Some(1.0));
        assert_eq!(get("ds_span_work_count"), Some(1.0));
        let quant = samples
            .iter()
            .find(|s| s.name == "ds_lat" && !s.labels.is_empty())
            .expect("quantile sample");
        assert_eq!(quant.labels[0].0, "quantile");
        assert_eq!(quant.value, 128.0);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_text("ds_ok 1\n# comment\n\n").is_some());
        assert!(parse_text("no_value_here").is_none());
        assert!(parse_text("name{unterminated 1").is_none());
        assert!(parse_text("name x").is_none());
    }

    #[test]
    fn histograms_render_cumulative_buckets_with_min_max_gauges() {
        let h = LogHistogram::new();
        for v in [0u64, 3, 3, 100] {
            h.record(v);
        }
        let mut p = PromText::new();
        p.histogram("serve/latency_us", &h.snapshot());
        let doc = p.into_string();
        assert!(doc.contains("# TYPE ds_serve_latency_us histogram"));
        assert!(doc.contains("ds_serve_latency_us_bucket{le=\"0\"} 1"));
        assert!(doc.contains("ds_serve_latency_us_bucket{le=\"3\"} 3"));
        assert!(doc.contains("ds_serve_latency_us_bucket{le=\"127\"} 4"));
        assert!(doc.contains("ds_serve_latency_us_bucket{le=\"+Inf\"} 4"));
        assert!(doc.contains("ds_serve_latency_us_sum 106"));
        assert!(doc.contains("ds_serve_latency_us_count 4"));
        assert!(doc.contains("ds_serve_latency_us_min 0"));
        assert!(doc.contains("ds_serve_latency_us_max 100"));
    }

    #[test]
    fn families_parse_back_typed_with_suffix_attachment() {
        let h = LogHistogram::new();
        h.record(5);
        let mut p = PromText::new();
        p.counter("serve/requests", 3)
            .gauge("queue/len", 2.0)
            .histogram("lat", &h.snapshot())
            .summary("q", &h.snapshot());
        let fams = parse_families(p.finish()).expect("parseable");
        let get = |n: &str| fams.iter().find(|f| f.name == n).expect(n);
        let reqs = get("ds_serve_requests");
        assert_eq!(reqs.kind, FamilyKind::Counter);
        assert_eq!(reqs.scalar(), Some(3.0));
        assert_eq!(get("ds_queue_len").kind, FamilyKind::Gauge);
        let lat = get("ds_lat");
        assert_eq!(lat.kind, FamilyKind::Histogram);
        assert_eq!(lat.suffixed("count"), Some(1.0));
        assert_eq!(lat.suffixed("sum"), Some(5.0));
        // _min/_max carry their own gauge headers, so they are their own
        // families, not swallowed by the histogram.
        assert_eq!(get("ds_lat_min").kind, FamilyKind::Gauge);
        assert_eq!(get("ds_lat_min").scalar(), Some(5.0));
        assert_eq!(get("ds_q").kind, FamilyKind::Summary);
    }

    #[test]
    fn headerless_and_mismatched_samples_become_untyped_families() {
        let fams = parse_families("stray 1\n# TYPE ds_a counter\nds_a 2\nother 3\n").unwrap();
        assert_eq!(fams.len(), 3);
        assert_eq!(
            (fams[0].name.as_str(), fams[0].kind),
            ("stray", FamilyKind::Untyped)
        );
        assert_eq!(
            (fams[1].name.as_str(), fams[1].kind),
            ("ds_a", FamilyKind::Counter)
        );
        assert_eq!(
            (fams[2].name.as_str(), fams[2].kind),
            ("other", FamilyKind::Untyped)
        );
        assert!(parse_families("# TYPE  counter\n").is_none());
        assert!(parse_families("bad line here extra\n").is_none());
    }
}
