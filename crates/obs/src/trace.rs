//! Cross-process trace propagation: a compact context carried on the
//! wire so one request can be followed across the client → shard →
//! batcher → forward boundary.
//!
//! A [`TraceContext`] is a 128-bit trace id plus the 64-bit span id of
//! the sender — the minimum needed to stitch per-process
//! `RequestTimeline` exemplars into one causal tree. On the line
//! protocol it travels as an optional trailing token on `ESTIMATE` /
//! `FEEDBACK` requests:
//!
//! ```text
//! trace=<32 lowercase hex chars>.<16 lowercase hex chars>
//! ```
//!
//! The format is fixed-width and strictly validated: exactly 32 hex
//! digits, a `.`, exactly 16 hex digits, and neither id zero (zero is
//! the in-memory "untraced" sentinel). Parsing and formatting are exact
//! inverses, which the protocol fuzz harness relies on.
//!
//! Ids are minted by an [`IdSource`] — a seeded splitmix64 mixer over a
//! monotone counter, following the workspace's deterministic-PRNG idiom.
//! No wall clock is read on any minting path; the only entropy is taken
//! once at construction (see [`IdSource::from_entropy`]).

use std::sync::atomic::{AtomicU64, Ordering};

/// Width of the trace-id half of the wire token, in hex digits.
const TRACE_HEX: usize = 32;
/// Width of the span-id half of the wire token, in hex digits.
const SPAN_HEX: usize = 16;

/// A propagated trace identity: which end-to-end request this work
/// belongs to (`trace_id`) and which span caused it (`span_id`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// 128-bit id shared by every span of one end-to-end request. Never
    /// zero on a valid context.
    pub trace_id: u128,
    /// 64-bit id of the span that sent this request — the parent of
    /// whatever span the receiver opens. Never zero on a valid context.
    pub span_id: u64,
}

impl TraceContext {
    /// Renders the wire token *value* (without the `trace=` key):
    /// `<32 hex>.<16 hex>`, zero-padded lowercase.
    pub fn to_token(&self) -> String {
        format!("{:032x}.{:016x}", self.trace_id, self.span_id)
    }

    /// Parses a token rendered by [`TraceContext::to_token`]. Strict:
    /// fixed widths, lowercase-or-uppercase hex only, both ids nonzero.
    /// Returns `None` on anything else — the protocol layer maps that to
    /// a typed `ERR`, never a panic.
    pub fn parse_token(s: &str) -> Option<Self> {
        let bytes = s.as_bytes();
        if bytes.len() != TRACE_HEX + 1 + SPAN_HEX || bytes[TRACE_HEX] != b'.' {
            return None;
        }
        let (trace_hex, rest) = s.split_at(TRACE_HEX);
        let span_hex = &rest[1..];
        if !trace_hex.bytes().all(|b| b.is_ascii_hexdigit())
            || !span_hex.bytes().all(|b| b.is_ascii_hexdigit())
        {
            return None;
        }
        let trace_id = u128::from_str_radix(trace_hex, 16).ok()?;
        let span_id = u64::from_str_radix(span_hex, 16).ok()?;
        if trace_id == 0 || span_id == 0 {
            return None;
        }
        Some(Self { trace_id, span_id })
    }

    /// The same trace with a different sending span — what a hop attaches
    /// before forwarding work it performed under its own span.
    pub fn child(&self, span_id: u64) -> Self {
        Self {
            trace_id: self.trace_id,
            span_id,
        }
    }
}

/// splitmix64: a full-period 64-bit mixer. Statistically strong enough
/// for ids, trivially cheap, and deterministic for a given seed.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A lock-free id minter: a seeded monotone counter scrambled through
/// splitmix64. One `fetch_add` per id — safe to share across the
/// serving threads without contention worth measuring.
#[derive(Debug)]
pub struct IdSource {
    seed: u64,
    ctr: AtomicU64,
}

impl IdSource {
    /// A deterministic source: the id sequence is a pure function of
    /// `seed`. Tests use this; servers and clients use
    /// [`IdSource::from_entropy`].
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ctr: AtomicU64::new(0),
        }
    }

    /// A source seeded from cheap per-process entropy (pid + ASLR), read
    /// once at construction — minting itself never touches a clock.
    pub fn from_entropy() -> Self {
        let aslr = {
            let probe = Box::new(0u8);
            std::ptr::from_ref(&*probe) as u64
        };
        Self::new(splitmix64(u64::from(std::process::id())) ^ splitmix64(aslr.rotate_left(17)))
    }

    fn draw(&self) -> u64 {
        let n = self.ctr.fetch_add(1, Ordering::Relaxed);
        self.seed ^ splitmix64(n.wrapping_add(self.seed))
    }

    /// Mints a nonzero 64-bit span id.
    pub fn next_span(&self) -> u64 {
        loop {
            let id = self.draw();
            if id != 0 {
                return id;
            }
        }
    }

    /// Mints a nonzero 128-bit trace id from two draws.
    pub fn next_trace(&self) -> u128 {
        loop {
            let id = (u128::from(self.draw()) << 64) | u128::from(self.draw());
            if id != 0 {
                return id;
            }
        }
    }

    /// Mints a fresh root context: new trace id, new root span id.
    pub fn mint(&self) -> TraceContext {
        TraceContext {
            trace_id: self.next_trace(),
            span_id: self.next_span(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_roundtrip_exactly() {
        let src = IdSource::new(7);
        for _ in 0..100 {
            let ctx = src.mint();
            let tok = ctx.to_token();
            assert_eq!(tok.len(), TRACE_HEX + 1 + SPAN_HEX);
            assert_eq!(TraceContext::parse_token(&tok), Some(ctx));
            // Formatting the reparse reproduces the token byte for byte —
            // the fixed point the protocol fuzzer checks.
            assert_eq!(TraceContext::parse_token(&tok).unwrap().to_token(), tok);
        }
    }

    #[test]
    fn malformed_tokens_are_rejected() {
        let good = IdSource::new(3).mint().to_token();
        for bad in [
            "",
            "xyz",
            &good[1..],                                          // too short
            &format!("{good}0"),                                 // too long
            &good.replace('.', ":"),                             // wrong separator
            &format!("{}g{}", &good[..10], &good[11..]) as &str, // non-hex digit
            &format!("{:032x}.{:016x}", 0u128, 5u64),            // zero trace id
            &format!("{:032x}.{:016x}", 5u128, 0u64),            // zero span id
        ] {
            assert_eq!(TraceContext::parse_token(bad), None, "accepted {bad:?}");
        }
    }

    #[test]
    fn id_sources_are_deterministic_per_seed_and_never_zero() {
        let a = IdSource::new(42);
        let b = IdSource::new(42);
        let seq_a: Vec<u64> = (0..64).map(|_| a.next_span()).collect();
        let seq_b: Vec<u64> = (0..64).map(|_| b.next_span()).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().all(|&id| id != 0));
        let uniq: std::collections::HashSet<_> = seq_a.iter().collect();
        assert_eq!(uniq.len(), seq_a.len(), "span ids must not repeat");
    }

    #[test]
    fn child_keeps_the_trace_and_moves_the_span() {
        let src = IdSource::new(9);
        let root = src.mint();
        let hop = root.child(src.next_span());
        assert_eq!(hop.trace_id, root.trace_id);
        assert_ne!(hop.span_id, root.span_id);
    }
}
