//! Declarative SLOs with multi-window burn-rate alerting.
//!
//! An [`SloSpec`] states an objective ("99% of events must be good") and
//! two evaluation windows in the classic fast/slow shape — a short
//! window (5m-style) that reacts quickly and a long window (1h-style)
//! that filters blips. The **burn rate** of a window is how fast the
//! error budget is being spent:
//!
//! ```text
//! burn = bad_fraction / (1 - objective)
//! ```
//!
//! A burn of 1.0 consumes exactly the budget the objective allows; an
//! alert **fires** only when *both* windows exceed their thresholds —
//! the fast window proves the problem is current, the slow window
//! proves it is sustained. This is the standard multi-window,
//! multi-burn-rate construction from SRE practice.
//!
//! [`SloTracker`] is the lock-free evaluator: a ring of time slots
//! (sliced from the slow window) holding good/bad counts. All clocks are
//! **injected** — every method takes `now_ms`, a caller-defined
//! monotonic millisecond timestamp — so tests drive time
//! deterministically and the serving layer derives it from its existing
//! `Instant` epoch; no wall clock is read here.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::hist::HistogramSnapshot;
use crate::prom::PromText;

/// Number of ring slots the slow window is sliced into. 64 keeps the
/// fast window (typically 1/12 of the slow one) covered by several slots
/// so expiry is smooth, while the whole ring stays ~3 cache lines.
const SLOTS: usize = 64;

/// A declarative service-level objective: what fraction of events must
/// be good, and how aggressively budget burn should alert.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Alert name; becomes part of the exported metric names.
    pub name: String,
    /// Required good fraction, strictly inside `(0, 1)` — e.g. `0.99`.
    pub objective: f64,
    /// Fast ("is it happening now") window length in milliseconds.
    pub fast_window_ms: u64,
    /// Slow ("is it sustained") window length in milliseconds. Must be
    /// at least the fast window.
    pub slow_window_ms: u64,
    /// Burn-rate threshold the fast window must exceed to fire.
    pub fast_burn: f64,
    /// Burn-rate threshold the slow window must exceed to fire.
    pub slow_burn: f64,
}

impl SloSpec {
    /// A conventional page-severity spec: 5m/1h windows with the
    /// standard 14.4×/6× burn thresholds.
    pub fn paging(name: impl Into<String>, objective: f64) -> Self {
        Self {
            name: name.into(),
            objective,
            fast_window_ms: 5 * 60 * 1000,
            slow_window_ms: 60 * 60 * 1000,
            fast_burn: 14.4,
            slow_burn: 6.0,
        }
    }

    /// Checks the spec's invariants; `Err` carries a human-readable
    /// reason (surfaced through config validation).
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() || !self.name.chars().all(|c| c.is_ascii_graphic()) {
            return Err("slo name must be non-empty printable ASCII".into());
        }
        if !(self.objective > 0.0 && self.objective < 1.0) {
            return Err(format!(
                "slo {}: objective must be in (0, 1), got {}",
                self.name, self.objective
            ));
        }
        if self.fast_window_ms == 0 || self.slow_window_ms < self.fast_window_ms {
            return Err(format!(
                "slo {}: need 0 < fast window ({}) <= slow window ({})",
                self.name, self.fast_window_ms, self.slow_window_ms
            ));
        }
        let positive = |b: f64| b.is_finite() && b > 0.0;
        if !positive(self.fast_burn) || !positive(self.slow_burn) {
            return Err(format!(
                "slo {}: burn thresholds must be positive",
                self.name
            ));
        }
        Ok(())
    }
}

/// Burn rates of both windows at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnRates {
    /// Budget-burn multiple over the fast window (0 when no events).
    pub fast: f64,
    /// Budget-burn multiple over the slow window (0 when no events).
    pub slow: f64,
}

/// One time slot of good/bad counts. `epoch` is the absolute slot number
/// (`now_ms / slot_ms`) the counts belong to; a recorder landing on a
/// stale slot resets it first.
#[derive(Debug)]
struct Slot {
    epoch: AtomicU64,
    good: AtomicU64,
    bad: AtomicU64,
}

/// Lock-free time-sliced evaluator for one [`SloSpec`].
///
/// Recording is one atomic load plus one `fetch_add` on the steady
/// path. Rotation races are benign the same way [`crate::window`]'s
/// are: a racing recorder can land a count in a slot being recycled,
/// skewing one slot's tally — acceptable for an alerting signal.
#[derive(Debug)]
pub struct SloTracker {
    spec: SloSpec,
    slot_ms: u64,
    slots: Box<[Slot]>,
    good_total: AtomicU64,
    bad_total: AtomicU64,
}

impl SloTracker {
    /// Builds a tracker for `spec`. Panics on an invalid spec — validate
    /// first when the spec comes from configuration.
    pub fn new(spec: SloSpec) -> Self {
        spec.validate().expect("valid SloSpec");
        let slot_ms = (spec.slow_window_ms / SLOTS as u64).max(1);
        Self {
            spec,
            slot_ms,
            slots: (0..SLOTS)
                .map(|_| Slot {
                    epoch: AtomicU64::new(u64::MAX),
                    good: AtomicU64::new(0),
                    bad: AtomicU64::new(0),
                })
                .collect(),
            good_total: AtomicU64::new(0),
            bad_total: AtomicU64::new(0),
        }
    }

    /// The spec this tracker evaluates.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Records `good`/`bad` event counts at `now_ms`.
    pub fn record_many(&self, now_ms: u64, good: u64, bad: u64) {
        if good == 0 && bad == 0 {
            return;
        }
        self.good_total.fetch_add(good, Ordering::Relaxed);
        self.bad_total.fetch_add(bad, Ordering::Relaxed);
        let epoch = now_ms / self.slot_ms;
        let slot = &self.slots[(epoch % SLOTS as u64) as usize];
        let seen = slot.epoch.load(Ordering::Relaxed);
        if seen != epoch {
            // Recycle the slot for the new epoch. One racer wins; the
            // loser's counts land in the freshly cleared slot, which is
            // where they belong anyway.
            if slot
                .epoch
                .compare_exchange(seen, epoch, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                slot.good.store(0, Ordering::Relaxed);
                slot.bad.store(0, Ordering::Relaxed);
            }
        }
        slot.good.fetch_add(good, Ordering::Relaxed);
        slot.bad.fetch_add(bad, Ordering::Relaxed);
    }

    /// Records one event at `now_ms`.
    pub fn record(&self, now_ms: u64, good: bool) {
        self.record_many(now_ms, u64::from(good), u64::from(!good));
    }

    /// Records a histogram *delta* (e.g. the latency distribution added
    /// since the last scrape) against a good-threshold: samples at or
    /// under `threshold` count as good, the rest as bad. This is how
    /// window evaluation composes with the workspace's mergeable
    /// histograms — a scrape-side SLO needs only two snapshots.
    pub fn record_snapshot_delta(&self, now_ms: u64, delta: &HistogramSnapshot, threshold: u64) {
        let good = delta.count_le(threshold);
        self.record_many(now_ms, good, delta.count() - good);
    }

    /// Cumulative good events since construction (for counter export).
    pub fn good_total(&self) -> u64 {
        self.good_total.load(Ordering::Relaxed)
    }

    /// Cumulative bad events since construction (for counter export).
    pub fn bad_total(&self) -> u64 {
        self.bad_total.load(Ordering::Relaxed)
    }

    /// Sums `(good, bad)` over the trailing `window_ms` ending at
    /// `now_ms`.
    fn window_counts(&self, now_ms: u64, window_ms: u64) -> (u64, u64) {
        let newest = now_ms / self.slot_ms;
        // A slot at epoch e covers [e*slot_ms, (e+1)*slot_ms); include it
        // when any part of that range is inside the window.
        let oldest = now_ms.saturating_sub(window_ms) / self.slot_ms;
        let (mut good, mut bad) = (0u64, 0u64);
        for slot in self.slots.iter() {
            let e = slot.epoch.load(Ordering::Relaxed);
            if e != u64::MAX && e >= oldest && e <= newest {
                good += slot.good.load(Ordering::Relaxed);
                bad += slot.bad.load(Ordering::Relaxed);
            }
        }
        (good, bad)
    }

    fn burn(&self, now_ms: u64, window_ms: u64) -> f64 {
        let (good, bad) = self.window_counts(now_ms, window_ms);
        let total = good + bad;
        if total == 0 {
            return 0.0;
        }
        let bad_fraction = bad as f64 / total as f64;
        bad_fraction / (1.0 - self.spec.objective)
    }

    /// Burn rates of both windows at `now_ms`.
    pub fn burn_rates(&self, now_ms: u64) -> BurnRates {
        BurnRates {
            fast: self.burn(now_ms, self.spec.fast_window_ms),
            slow: self.burn(now_ms, self.spec.slow_window_ms),
        }
    }

    /// Whether the alert fires at `now_ms`: both windows over threshold.
    pub fn firing(&self, now_ms: u64) -> bool {
        let rates = self.burn_rates(now_ms);
        rates.fast >= self.spec.fast_burn && rates.slow >= self.spec.slow_burn
    }

    /// Renders this SLO's state into an exposition document: cumulative
    /// good/bad counters (mergeable by sum) and burn/firing gauges
    /// (mergeable by max — any firing shard keeps the fleet view firing).
    pub fn render(&self, now_ms: u64, p: &mut PromText) {
        let rates = self.burn_rates(now_ms);
        let base = format!("slo/{}", self.spec.name);
        p.counter(&format!("{base}/good"), self.good_total())
            .counter(&format!("{base}/bad"), self.bad_total())
            .gauge(&format!("{base}/burn_fast"), rates.fast)
            .gauge(&format!("{base}/burn_slow"), rates.slow)
            .gauge(
                &format!("{base}/firing"),
                if self.firing(now_ms) { 1.0 } else { 0.0 },
            );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LogHistogram;

    fn spec() -> SloSpec {
        SloSpec {
            name: "latency".into(),
            objective: 0.9,
            fast_window_ms: 1_000,
            slow_window_ms: 12_000,
            fast_burn: 2.0,
            slow_burn: 1.0,
        }
    }

    #[test]
    fn validation_rejects_nonsense_specs() {
        assert!(spec().validate().is_ok());
        for bad in [
            SloSpec {
                name: String::new(),
                ..spec()
            },
            SloSpec {
                name: "has space".into(),
                ..spec()
            },
            SloSpec {
                objective: 0.0,
                ..spec()
            },
            SloSpec {
                objective: 1.0,
                ..spec()
            },
            SloSpec {
                fast_window_ms: 0,
                ..spec()
            },
            SloSpec {
                slow_window_ms: 10,
                ..spec()
            },
            SloSpec {
                fast_burn: 0.0,
                ..spec()
            },
            SloSpec {
                slow_burn: -1.0,
                ..spec()
            },
        ] {
            assert!(bad.validate().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn burn_is_bad_fraction_over_budget() {
        let t = SloTracker::new(spec());
        // 10% objective budget; 20% bad => burn 2.0 in both windows.
        for i in 0..100 {
            t.record(500, i % 5 != 0);
        }
        let rates = t.burn_rates(500);
        assert!((rates.fast - 2.0).abs() < 1e-9, "fast {rates:?}");
        assert!((rates.slow - 2.0).abs() < 1e-9, "slow {rates:?}");
        assert!(t.firing(500));
        assert_eq!((t.good_total(), t.bad_total()), (80, 20));
    }

    #[test]
    fn a_short_blip_does_not_fire_the_slow_window() {
        let t = SloTracker::new(spec());
        // A long healthy history...
        for ms in (0..12_000).step_by(100) {
            t.record_many(ms, 10, 0);
        }
        // ...then one second of pure failure: fast window saturates but
        // the slow window still holds a mostly-good budget.
        for ms in (12_000..13_000).step_by(100) {
            t.record_many(ms, 0, 10);
        }
        let rates = t.burn_rates(13_000);
        assert!(rates.fast >= 2.0, "fast must saturate: {rates:?}");
        assert!(rates.slow < 1.0, "slow must absorb the blip: {rates:?}");
        assert!(!t.firing(13_000));
    }

    #[test]
    fn sustained_burn_fires_and_then_ages_out() {
        let t = SloTracker::new(spec());
        for ms in (0..12_000).step_by(100) {
            t.record_many(ms, 5, 5);
        }
        assert!(t.firing(12_000), "{:?}", t.burn_rates(12_000));
        // A full slow window of silence later the ring has aged out.
        let later = 12_000 + 13_000;
        assert_eq!(
            t.burn_rates(later),
            BurnRates {
                fast: 0.0,
                slow: 0.0
            }
        );
        assert!(!t.firing(later));
    }

    #[test]
    fn snapshot_deltas_split_on_the_threshold() {
        let t = SloTracker::new(spec());
        let h = LogHistogram::new();
        for v in [10u64, 20, 100, 5000, 9000] {
            h.record(v);
        }
        // Bucket upper bounds are powers of two: threshold 128 keeps the
        // three small samples good, the two large ones bad.
        t.record_snapshot_delta(100, &h.snapshot(), 128);
        assert_eq!((t.good_total(), t.bad_total()), (3, 2));
    }

    #[test]
    fn render_exports_mergeable_families() {
        let t = SloTracker::new(spec());
        t.record_many(100, 8, 2);
        let mut p = PromText::new();
        t.render(100, &mut p);
        let doc = p.into_string();
        assert!(doc.contains("ds_slo_latency_good 8"));
        assert!(doc.contains("ds_slo_latency_bad 2"));
        assert!(doc.contains("ds_slo_latency_burn_fast 2"));
        assert!(doc.contains("ds_slo_latency_firing 1"));
    }
}
