//! Lock-free log₂ histograms — the workspace-wide latency/size
//! distribution type, generalized out of the serving metrics.
//!
//! Every record operation is a handful of relaxed atomic updates — safe to
//! call from every connection handler, batch worker, and training thread
//! with no shared locks on the hot path. Percentiles are derived from the
//! buckets at snapshot time; with power-of-two buckets they are upper
//! bounds accurate to 2×, which is the right fidelity for a dashboard
//! (and costs nothing to maintain).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets: covers values up to 2⁴⁷ µs (~4.5 years) — in
/// practice every observable latency and batch size.
const BUCKETS: usize = 48;

/// A histogram over `u64` values with power-of-two buckets. Bucket `i`
/// holds values `v` with `bit_len(v) == i`, i.e. `[2^(i-1), 2^i)`; bucket 0
/// holds zeros.
///
/// Quantiles are **deterministic for every population**, including the
/// edge cases the old serving histogram fudged:
///
/// * an empty histogram reports 0 for every quantile;
/// * a single-sample histogram reports that sample exactly (the bucket
///   bound is clamped to the observed `[min, max]` range);
/// * `quantile(0.0)` is the observed minimum, `quantile(1.0)` the
///   observed maximum — never a bucket bound beyond the data.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(v: u64) -> usize {
        ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX && self.count() == 0 {
            0
        } else {
            v
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket containing the `q`-quantile (`q` in
    /// `[0, 1]`), clamped to the observed `[min, max]` range — a ≤2×
    /// overestimate of the true percentile that never exceeds the data.
    /// 0 when empty; the exact sample when only one value was recorded.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let (min, max) = (self.min(), self.max());
        if q <= 0.0 {
            return min;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let upper = if i == 0 { 0 } else { 1u64 << i };
                return upper.clamp(min, max);
            }
        }
        max
    }

    /// Resets the histogram to empty.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bound_the_data() {
        let h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // Upper-bound property: quantile(q) >= true percentile, within one
        // power of two of it, and never beyond the observed max.
        let p50 = h.quantile(0.5);
        assert!((500..=1000).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((990..=1000).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_sample_is_exact_at_every_quantile() {
        for v in [0u64, 1, 7, 100, 1 << 20, u64::MAX] {
            let h = LogHistogram::new();
            h.record(v);
            for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
                assert_eq!(h.quantile(q), v, "v={v} q={q}");
            }
        }
    }

    #[test]
    fn zeros_land_in_bucket_zero() {
        let h = LogHistogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
        h.record(8);
        assert_eq!(h.quantile(1.0), 8);
    }

    #[test]
    fn reset_clears_everything() {
        let h = LogHistogram::new();
        h.record(5);
        h.record(500);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        h.record(3);
        assert_eq!(h.quantile(0.5), 3);
    }
}
