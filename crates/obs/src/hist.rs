//! Lock-free log₂ histograms — the workspace-wide latency/size
//! distribution type, generalized out of the serving metrics.
//!
//! Every record operation is a handful of relaxed atomic updates — safe to
//! call from every connection handler, batch worker, and training thread
//! with no shared locks on the hot path. Percentiles are derived from the
//! buckets at snapshot time; with power-of-two buckets they are upper
//! bounds accurate to 2×, which is the right fidelity for a dashboard
//! (and costs nothing to maintain).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets: covers values up to 2⁴⁷ µs (~4.5 years) — in
/// practice every observable latency and batch size.
const BUCKETS: usize = 48;

/// A histogram over `u64` values with power-of-two buckets. Bucket `i`
/// holds values `v` with `bit_len(v) == i`, i.e. `[2^(i-1), 2^i)`; bucket 0
/// holds zeros.
///
/// Quantiles are **deterministic for every population**, including the
/// edge cases the old serving histogram fudged:
///
/// * an empty histogram reports 0 for every quantile;
/// * a single-sample histogram reports that sample exactly (the bucket
///   bound is clamped to the observed `[min, max]` range);
/// * `quantile(0.0)` is the observed minimum, `quantile(1.0)` the
///   observed maximum — never a bucket bound beyond the data.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(v: u64) -> usize {
        ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX && self.count() == 0 {
            0
        } else {
            v
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket containing the `q`-quantile (`q` in
    /// `[0, 1]`), clamped to the observed `[min, max]` range — a ≤2×
    /// overestimate of the true percentile that never exceeds the data.
    /// 0 when empty; the exact sample when only one value was recorded.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Resets the histogram to empty.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Merges `other` into `self`, bucket-wise. Equivalent to replaying
    /// `other`'s raw sample stream into `self`: counts and sums add, the
    /// min/max of the union are preserved. Merging an empty histogram is a
    /// no-op (the `u64::MAX` min sentinel loses every `fetch_min`).
    pub fn merge(&self, other: &LogHistogram) {
        for (b, ob) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = ob.load(Ordering::Relaxed);
            if n > 0 {
                b.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Rebuilds a live histogram from a frozen snapshot — the restore half
    /// of [`LogHistogram::snapshot`]. The raw fields are copied verbatim
    /// (including the `u64::MAX` empty-min sentinel), so
    /// `LogHistogram::from_snapshot(&s).snapshot() == s` holds for every
    /// snapshot, which is what warm-restart recovery relies on.
    pub fn from_snapshot(s: &HistogramSnapshot) -> Self {
        Self {
            buckets: std::array::from_fn(|i| AtomicU64::new(s.buckets[i])),
            count: AtomicU64::new(s.count),
            sum: AtomicU64::new(s.sum),
            min: AtomicU64::new(s.min),
            max: AtomicU64::new(s.max),
        }
    }

    /// A plain-data point-in-time copy — cheap to clone, serialize, and
    /// compare. The snapshot answers the same quantile queries as the live
    /// histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Shared quantile walk over a bucket array; `min`/`max` are the observed
/// extremes and `min_raw` may still be the `u64::MAX` empty sentinel.
fn quantile_over(buckets: &[u64; BUCKETS], count: u64, min_raw: u64, max: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    // Non-empty, so the raw min is a real observation (possibly u64::MAX
    // itself — the sentinel only means "empty" when count is 0).
    let min = min_raw;
    if q <= 0.0 {
        return min;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, &b) in buckets.iter().enumerate() {
        seen += b;
        if seen >= rank {
            let upper = if i == 0 { 0 } else { 1u64 << i };
            return upper.clamp(min, max);
        }
    }
    max
}

/// An immutable, plain-data copy of a [`LogHistogram`] — what a live
/// histogram looks like frozen at one instant. Used wherever a
/// distribution must travel (the training-time q-error baseline stored
/// inside a serialized sketch) or be merged without atomics (window
/// rotation snapshots).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of values behind the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of the values behind the snapshot.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.min == u64::MAX && self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Same deterministic quantile rule as [`LogHistogram::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_over(&self.buckets, self.count, self.min, self.max, q)
    }

    /// Number of samples known to be `<= threshold`: the sum of every
    /// bucket whose entire range sits at or under it. Conservative for a
    /// threshold inside a bucket (that bucket is excluded), which biases
    /// SLO evaluation toward counting borderline samples as bad — the
    /// safe direction for alerting.
    pub fn count_le(&self, threshold: u64) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .take_while(|&(i, _)| {
                // Bucket 0 holds zeros; bucket i holds [2^(i-1), 2^i), so
                // its largest possible sample is 2^i - 1.
                i == 0 || (1u64 << i) - 1 <= threshold
            })
            .map(|(_, &b)| b)
            .sum()
    }

    /// Merges `other` into `self`; same semantics as [`LogHistogram::merge`].
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, ob) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += ob;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Flattens to a fixed-length `u64` word sequence for serialization:
    /// `[count, sum, min, max, bucket_0 .. bucket_47]`.
    pub fn to_words(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(4 + BUCKETS);
        out.extend([self.count, self.sum, self.min, self.max]);
        out.extend(self.buckets);
        out
    }

    /// Inverse of [`HistogramSnapshot::to_words`]. Returns `None` on a
    /// wrong word count or when the header contradicts the buckets.
    pub fn from_words(words: &[u64]) -> Option<Self> {
        if words.len() != 4 + BUCKETS {
            return None;
        }
        let snap = Self {
            count: words[0],
            sum: words[1],
            min: words[2],
            max: words[3],
            buckets: std::array::from_fn(|i| words[4 + i]),
        };
        // Checked sum: untrusted bucket words can be large enough to
        // overflow a plain `sum()`, which is itself proof of corruption —
        // found by the snapshot fuzz smoke.
        let total = snap
            .buckets
            .iter()
            .try_fold(0u64, |acc, &b| acc.checked_add(b))?;
        if total != snap.count {
            return None;
        }
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bound_the_data() {
        let h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // Upper-bound property: quantile(q) >= true percentile, within one
        // power of two of it, and never beyond the observed max.
        let p50 = h.quantile(0.5);
        assert!((500..=1000).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((990..=1000).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_sample_is_exact_at_every_quantile() {
        for v in [0u64, 1, 7, 100, 1 << 20, u64::MAX] {
            let h = LogHistogram::new();
            h.record(v);
            for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
                assert_eq!(h.quantile(q), v, "v={v} q={q}");
            }
        }
    }

    #[test]
    fn zeros_land_in_bucket_zero() {
        let h = LogHistogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
        h.record(8);
        assert_eq!(h.quantile(1.0), 8);
    }

    #[test]
    fn merge_equals_replaying_the_union() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let union = LogHistogram::new();
        for v in [0u64, 3, 17, 1 << 30] {
            a.record(v);
            union.record(v);
        }
        for v in [1u64, 1000, u64::MAX] {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), union.snapshot());
        // Merging an empty histogram changes nothing (min sentinel safe).
        let before = a.snapshot();
        a.merge(&LogHistogram::new());
        assert_eq!(a.snapshot(), before);
        // Merging *into* an empty histogram copies the other side.
        let empty = LogHistogram::new();
        empty.merge(&union);
        assert_eq!(empty.snapshot(), union.snapshot());
    }

    #[test]
    fn snapshot_answers_like_the_live_histogram() {
        let h = LogHistogram::new();
        for v in 1..=100u64 {
            h.record(v * 7);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), h.count());
        assert_eq!(s.min(), h.min());
        assert_eq!(s.max(), h.max());
        assert_eq!(s.mean(), h.mean());
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(s.quantile(q), h.quantile(q), "q={q}");
        }
        // Empty snapshot mirrors the empty histogram.
        let e = HistogramSnapshot::new();
        assert_eq!((e.count(), e.min(), e.max(), e.quantile(0.5)), (0, 0, 0, 0));
    }

    #[test]
    fn count_le_is_a_conservative_bucket_walk() {
        let h = LogHistogram::new();
        for v in [0u64, 1, 7, 8, 100, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count_le(0), 1); // just the zero
        assert_eq!(s.count_le(1), 2); // bucket 1 is exactly {1}
        assert_eq!(s.count_le(7), 3); // bucket 3 = [4, 8)
                                      // 8 sits in [8, 16): excluded until the whole bucket fits.
        assert_eq!(s.count_le(8), 3);
        assert_eq!(s.count_le(15), 4);
        assert_eq!(s.count_le(u64::MAX), s.count());
    }

    #[test]
    fn snapshot_words_roundtrip_and_reject_corruption() {
        let h = LogHistogram::new();
        for v in [0u64, 5, 1 << 20] {
            h.record(v);
        }
        let s = h.snapshot();
        let words = s.to_words();
        assert_eq!(HistogramSnapshot::from_words(&words).unwrap(), s);
        assert!(HistogramSnapshot::from_words(&words[1..]).is_none());
        let mut bad = words.clone();
        bad[0] += 1; // count no longer matches the bucket sum
        assert!(HistogramSnapshot::from_words(&bad).is_none());
    }

    #[test]
    fn from_snapshot_roundtrips_including_empty_sentinel() {
        let h = LogHistogram::new();
        for v in [0u64, 9, 1 << 33, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        let restored = LogHistogram::from_snapshot(&s);
        assert_eq!(restored.snapshot(), s);
        // The restored histogram keeps recording correctly.
        restored.record(2);
        assert_eq!(restored.count(), s.count() + 1);
        // Empty snapshot restores to an empty histogram whose min sentinel
        // still behaves (recording then reports the real min).
        let empty = LogHistogram::from_snapshot(&HistogramSnapshot::new());
        assert_eq!(empty.count(), 0);
        empty.record(7);
        assert_eq!(empty.min(), 7);
    }

    #[test]
    fn reset_clears_everything() {
        let h = LogHistogram::new();
        h.record(5);
        h.record(500);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        h.record(3);
        assert_eq!(h.quantile(0.5), 3);
    }
}
