//! Property and concurrency tests for the observability primitives.
//!
//! * The log₂ histogram's quantiles are pinned to a sorted-vector oracle:
//!   for any data set and any quantile, the histogram answer brackets the
//!   exact rank value within one power of two and never leaves the
//!   observed range.
//! * Counters, histograms, and span aggregation are exercised at thread
//!   counts {1, 2, 8}: no increment, observation, or span completion may
//!   be lost, and per-thread span hierarchies must aggregate under the
//!   same paths.

use ds_obs::{LogHistogram, Tracer, WindowedHistogram};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Exact rank-`q` value of the data, matching the histogram's rank rule:
/// the ceil(q·n)-th smallest value (clamped to [1, n]).
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    if q <= 0.0 {
        return sorted[0];
    }
    let rank = ((q * sorted.len() as f64).ceil() as u64).clamp(1, sorted.len() as u64);
    sorted[rank as usize - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Histogram quantiles vs the sorted-vector oracle: the answer is
    /// always >= the exact rank value, within 2x of it, and inside the
    /// observed [min, max] range.
    #[test]
    fn quantiles_bracket_the_sorted_oracle(
        values in prop::collection::vec(0u64..=(1u64 << 40), 1..200),
        // The offline proptest stand-in has no float strategies; draw
        // permille and divide.
        qs_permille in prop::collection::vec(0u32..=1000, 1..8),
    ) {
        let qs: Vec<f64> = qs_permille.iter().map(|&q| q as f64 / 1000.0).collect();
        let h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.count(), sorted.len() as u64);
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        for &q in qs.iter().chain([0.0, 0.5, 0.95, 0.99, 1.0].iter()) {
            let got = h.quantile(q);
            let exact = oracle_quantile(&sorted, q);
            prop_assert!(got >= exact, "q={q}: got {got} < exact {exact}");
            prop_assert!(
                got <= exact.saturating_mul(2).max(h.min()),
                "q={q}: got {got} beyond 2x exact {exact}"
            );
            prop_assert!(
                (h.min()..=h.max()).contains(&got),
                "q={q}: got {got} outside observed range [{}, {}]",
                h.min(),
                h.max()
            );
        }
    }

    /// A single recorded value is exact at every quantile.
    #[test]
    fn single_sample_is_exact_everywhere(
        v in 0u64..=(1u64 << 40),
        q_permille in 0u32..=1000,
    ) {
        let h = LogHistogram::new();
        h.record(v);
        prop_assert_eq!(h.quantile(q_permille as f64 / 1000.0), v);
    }

    /// The merge oracle: merging two histograms must be indistinguishable
    /// — buckets, count, sum, min, max, and therefore every quantile —
    /// from recording the concatenated raw sample streams into one.
    #[test]
    fn merge_matches_the_concatenated_stream_oracle(
        a in prop::collection::vec(0u64..=(1u64 << 40), 0..150),
        b in prop::collection::vec(0u64..=(1u64 << 40), 0..150),
        qs_permille in prop::collection::vec(0u32..=1000, 1..8),
    ) {
        let ha = LogHistogram::new();
        for &v in &a {
            ha.record(v);
        }
        let hb = LogHistogram::new();
        for &v in &b {
            hb.record(v);
        }
        let oracle = LogHistogram::new();
        for &v in a.iter().chain(b.iter()) {
            oracle.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.snapshot(), oracle.snapshot());
        prop_assert_eq!(ha.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(ha.min(), oracle.min());
        prop_assert_eq!(ha.max(), oracle.max());
        for &q in &qs_permille {
            let q = q as f64 / 1000.0;
            prop_assert_eq!(ha.quantile(q), oracle.quantile(q), "q={}", q);
        }
        // Snapshot-side merge agrees with the atomic-side merge.
        let mut sa = LogHistogram::new().snapshot();
        for &v in &a {
            let h = LogHistogram::new();
            h.record(v);
            sa.merge(&h.snapshot());
        }
        let sb = hb.snapshot();
        sa.merge(&sb);
        prop_assert_eq!(sa, oracle.snapshot());
    }

    /// A windowed histogram that never rotates is exactly a plain one.
    #[test]
    fn unrotated_window_matches_plain_histogram(
        values in prop::collection::vec(0u64..=(1u64 << 40), 1..100),
    ) {
        let w = WindowedHistogram::new(4, 1_000_000);
        let h = LogHistogram::new();
        for &v in &values {
            w.record(v);
            h.record(v);
        }
        prop_assert_eq!(w.count(), values.len() as u64);
        prop_assert_eq!(w.merged(), h.snapshot());
    }
}

#[test]
fn concurrent_counters_and_histograms_lose_nothing() {
    const OPS: u64 = 10_000;
    for threads in THREAD_COUNTS {
        let t = Tracer::new();
        t.enable();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for i in 0..OPS {
                        t.count("ops", 1);
                        t.observe("latency", i % 1024);
                    }
                });
            }
        });
        assert_eq!(
            t.counter_value("ops"),
            threads as u64 * OPS,
            "{threads} threads"
        );
        assert_eq!(
            t.histogram("latency").count(),
            threads as u64 * OPS,
            "{threads} threads"
        );
    }
}

#[test]
fn concurrent_span_aggregation_counts_every_completion() {
    const SPANS: u64 = 500;
    for threads in THREAD_COUNTS {
        let t = Tracer::new();
        t.enable();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    let _root = t.span("worker");
                    for _ in 0..SPANS {
                        let _outer = t.span("outer");
                        let _inner = t.span("step");
                    }
                });
            }
        });
        let n = threads as u64;
        assert_eq!(t.span_stat("worker").unwrap().count, n, "{threads} threads");
        let outer = t.span_stat("worker/outer").unwrap();
        assert_eq!(outer.count, n * SPANS, "{threads} threads");
        let inner = t.span_stat("worker/outer/step").unwrap();
        assert_eq!(inner.count, n * SPANS, "{threads} threads");
        assert!(
            t.span_stat("worker/step").is_none(),
            "step must nest under outer"
        );
    }
}

#[test]
fn nested_spans_keep_time_ordering_invariants() {
    let t = Tracer::new();
    t.enable();
    {
        let _a = t.span("a");
        for _ in 0..10 {
            let _b = t.span("b");
            std::hint::black_box(vec![0u8; 4096]);
        }
    }
    let a = t.span_stat("a").unwrap();
    let b = t.span_stat("a/b").unwrap();
    assert_eq!((a.count, b.count), (1, 10));
    assert!(b.min_ns <= b.max_ns);
    assert!(b.total_ns >= b.min_ns.saturating_mul(10));
    assert!(a.total_ns >= b.total_ns, "parent must contain its children");
}
