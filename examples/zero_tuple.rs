//! The 0-tuple situation (§2): "One advantage of our approach over pure
//! sampling-based cardinality estimators is that it addresses 0-tuple
//! situations, which is when no sampled tuples qualify. In such situations,
//! sampling-based approaches usually fall back to an 'educated' guess —
//! causing large estimation errors."
//!
//! This example finds queries whose sample bitmaps are all-empty and shows
//! how the sampling estimator collapses to its fallback guess while the
//! Deep Sketch still reads signal from the static query features.
//!
//! Run with: `cargo run --release --example zero_tuple`

use deep_sketches::prelude::*;
use deep_sketches::query::sqlgen::to_sql;
use deep_sketches::query::{GeneratorConfig, QueryGenerator};

fn main() {
    let db = imdb_database(&ImdbConfig {
        movies: 4_000,
        keywords: 600,
        companies: 250,
        persons: 2_500,
        seed: 5,
    });

    // A deliberately small sample makes 0-tuple situations common — rare
    // predicate values simply do not appear among 50 tuples.
    let sample_size = 50;
    println!("building Deep Sketch with {sample_size}-tuple samples …");
    let sketch = SketchBuilder::new(&db, imdb_predicate_columns(&db))
        .training_queries(3_000)
        .epochs(15)
        .sample_size(sample_size)
        .hidden_units(64)
        .seed(31)
        .build()
        .expect("sketch construction");
    let hyper = SamplingEstimator::build(&db, sample_size, 77);
    let oracle = TrueCardinalityOracle::new(&db);

    // Generate evaluation queries and keep those that hit a 0-tuple
    // situation on the *estimator's* sample.
    let mut generator =
        QueryGenerator::new(&db, GeneratorConfig::new(imdb_predicate_columns(&db), 999));
    let candidates = generator.generate_batch(2_000);
    let zero_tuple: Vec<_> = candidates
        .iter()
        .filter(|q| hyper.is_zero_tuple(q))
        .take(100)
        .cloned()
        .collect();
    println!(
        "found {} 0-tuple queries among 2000 generated\n",
        zero_tuple.len()
    );

    let mut sketch_q = Vec::new();
    let mut hyper_q = Vec::new();
    println!(
        "{:<64} {:>9} {:>9} {:>9}",
        "query (0-tuple for the sampler)", "true", "sketch", "hyper"
    );
    for (i, q) in zero_tuple.iter().enumerate() {
        let truth = oracle.estimate(q);
        let s = sketch.estimate(q);
        let h = hyper.estimate(q);
        sketch_q.push(qerror(s, truth));
        hyper_q.push(qerror(h, truth));
        if i < 10 {
            println!(
                "{:<64} {:>9.0} {:>9.0} {:>9.0}",
                ellipsize(&to_sql(&db, q), 64),
                truth,
                s,
                h
            );
        }
    }

    println!("\nq-errors restricted to 0-tuple situations:");
    println!("{}", QErrorSummary::table_header());
    println!(
        "{}",
        QErrorSummary::from_qerrors(&sketch_q).table_row("Deep Sketch")
    );
    println!(
        "{}",
        QErrorSummary::from_qerrors(&hyper_q).table_row("HyPer")
    );
}

fn ellipsize(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n - 1).collect();
        format!("{cut}…")
    }
}
