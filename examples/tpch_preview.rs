//! Result-size previews on TPC-H — the paper's second deployment idea:
//! "Deep Sketches could be deployed in a web browser or within a cell phone
//! to preview query results", because they are MiB-sized and answer in
//! milliseconds.
//!
//! This example builds a sketch over the synthetic TPC-H subset, serializes
//! it (the artifact a client would download), reloads it *without any
//! database access*, and previews a workload, reporting footprint and
//! per-query latency.
//!
//! Run with: `cargo run --release --example tpch_preview`

use std::time::Instant;

use deep_sketches::prelude::*;
use deep_sketches::query::sqlgen::to_sql;
use deep_sketches::query::workloads::tpch::tpch_workload;

fn main() {
    let db = tpch_database(&TpchConfig::default());
    println!("synthetic TPC-H: {} rows total", db.total_rows());

    println!("building Deep Sketch over TPC-H …");
    let (sketch, report) = SketchBuilder::new(&db, tpch_predicate_columns(&db))
        .training_queries(3_000)
        .epochs(15)
        .sample_size(100)
        .hidden_units(64)
        .max_tables(4)
        .seed(3)
        .build_with_report()
        .expect("sketch construction");
    println!(
        "  trained in {:.2?} (labels: {:.2?}), validation mean q-error {:.2}",
        report.training.total_duration,
        report.execution,
        report.training.final_val_qerror().unwrap_or(f64::NAN)
    );

    // Ship the sketch to the "client": serialize, drop, reload.
    let blob = sketch.to_bytes();
    println!(
        "  sketch blob: {:.2} MiB — small enough for a phone",
        blob.len() as f64 / (1024.0 * 1024.0)
    );
    drop(sketch);
    let client_sketch = DeepSketch::from_bytes(&blob).expect("client-side load");

    // Preview the workload client-side; the oracle is only used here to
    // show how good the previews are.
    let oracle = TrueCardinalityOracle::new(&db);
    let workload = tpch_workload(&db, 5);

    println!(
        "\n{:<58} {:>10} {:>10} {:>7}",
        "query", "true", "preview", "q-err"
    );
    // Time the previews alone — this is what the client experiences.
    let t0 = Instant::now();
    let previews: Vec<f64> = workload.iter().map(|q| client_sketch.estimate(q)).collect();
    let preview_time = t0.elapsed();

    let mut qerrors = Vec::new();
    for (q, &preview) in workload.iter().zip(&previews) {
        let truth = oracle.estimate(q);
        let qe = qerror(preview, truth);
        qerrors.push(qe);
        let sql = to_sql(&db, q);
        println!(
            "{:<58} {:>10.0} {:>10.0} {:>7.2}",
            ellipsize(&sql, 58),
            truth,
            preview,
            qe
        );
    }

    println!("\n{}", QErrorSummary::table_header());
    println!(
        "{}",
        QErrorSummary::from_qerrors(&qerrors).table_row("TPC-H sketch")
    );
    println!(
        "\npreview latency: {:.3} ms/query ({} queries in {:.2?})",
        preview_time.as_secs_f64() * 1000.0 / workload.len() as f64,
        workload.len(),
        preview_time
    );
}

fn ellipsize(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n - 1).collect();
        format!("{cut}…")
    }
}
