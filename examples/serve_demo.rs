//! The serving front end, end to end: train a sketch, start the TCP
//! server, then hammer it with 64 concurrent clients and verify every
//! answer over the wire is bit-identical to a local `estimate_one` call.
//! Afterwards a single typed client walks the observability surface —
//! `INFO`/`METRICS` as parsed structs, the `STATS` Prometheus exposition,
//! `TRACE` request-stage exemplars — and replays exact cardinalities
//! through `FEEDBACK` into the sketch's rolling q-error monitor.
//!
//! This is the smoke test CI runs for `ds-serve` — it exercises the full
//! stack (accept loop, protocol, coalescing batcher, metrics, timelines,
//! feedback) in a few seconds and fails loudly on any mismatch.
//!
//! Run with: `cargo run --release --example serve_demo`

use std::sync::Arc;
use std::time::{Duration, Instant};

use deep_sketches::prelude::*;
use deep_sketches::serve::Response;

const CLIENTS: usize = 64;

fn main() {
    let db = Arc::new(imdb_database(&ImdbConfig {
        movies: 2_000,
        keywords: 400,
        companies: 150,
        persons: 1_500,
        seed: 23,
    }));
    println!("synthetic IMDb loaded: {} rows", db.total_rows());

    println!("training the sketch …");
    let store = Arc::new(SketchStore::new());
    let sketch = SketchBuilder::new(&db, imdb_predicate_columns(&db))
        .training_queries(1_000)
        .epochs(8)
        .sample_size(64)
        .hidden_units(32)
        .seed(5)
        .build()
        .expect("sketch construction");
    store.insert("imdb", sketch).expect("fresh store");

    let workload: Vec<&str> = vec![
        "SELECT COUNT(*) FROM title",
        "SELECT COUNT(*) FROM title WHERE title.kind_id = 1",
        "SELECT COUNT(*) FROM title WHERE title.production_year > 1990",
        "SELECT COUNT(*) FROM title WHERE title.production_year > 2005",
        "SELECT COUNT(*) FROM title t, movie_keyword mk \
         WHERE mk.movie_id = t.id AND mk.keyword_id = 11",
        "SELECT COUNT(*) FROM title t, movie_keyword mk \
         WHERE mk.movie_id = t.id AND t.production_year > 1995",
    ];
    // Ground truth for the wire check: local, single-query estimates.
    let local: Vec<f64> = {
        let s = store.get("imdb").expect("ready sketch");
        workload
            .iter()
            .map(|sql| s.estimate_one(&parse_query(&db, sql).expect("parse")))
            .collect()
    };

    let server = Server::start(
        Arc::clone(&db),
        Arc::clone(&store),
        ServeConfig::builder()
            .workers(4)
            .request_timeout(Duration::from_secs(30))
            // Keep a timeline exemplar for every request so the TRACE
            // check below always has something to decompose.
            .slow_threshold(Duration::ZERO)
            .build()
            .expect("valid demo config"),
    )
    .expect("bind server");
    let addr = server.local_addr();
    println!("serving on {addr}");

    // One warm-up client exercises the metadata commands through the
    // typed accessors.
    {
        let mut c = Client::connect(addr).expect("connect");
        if let Response::Text(t) = c.list().expect("LIST") {
            println!("LIST    -> {t}");
        }
        let card = c.info_card("imdb").expect("INFO");
        println!(
            "INFO    -> {}: {} tables, {} joins, {} predicate columns, \
             {} params, {:.2} MiB",
            card.database,
            card.tables,
            card.joins,
            card.predicate_columns,
            card.model_params,
            card.footprint_mib
        );
        assert_eq!(card.database, "imdb");
        c.quit().expect("QUIT");
    }

    println!("running {CLIENTS} concurrent clients …");
    let t0 = Instant::now();
    let mut mismatches = 0usize;
    let mut answered = 0usize;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let workload = &workload;
                let local = &local;
                s.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    let mut bad = 0usize;
                    let mut n = 0usize;
                    for k in 0..workload.len() * 2 {
                        let j = (i + k) % workload.len();
                        let got = c
                            .estimate_value("imdb", workload[j])
                            .expect("wire estimate");
                        n += 1;
                        if got.to_bits() != local[j].to_bits() {
                            eprintln!(
                                "MISMATCH client {i} query {j}: wire {got} vs local {}",
                                local[j]
                            );
                            bad += 1;
                        }
                    }
                    c.quit().expect("QUIT");
                    (n, bad)
                })
            })
            .collect();
        for h in handles {
            let (n, bad) = h.join().expect("client thread");
            answered += n;
            mismatches += bad;
        }
    });
    let elapsed = t0.elapsed();

    // Walk the observability surface with one typed client while the
    // server is still up, then replay ground truth through FEEDBACK.
    {
        let mut c = Client::connect(addr).expect("connect");

        let snap = c.metrics_snapshot().expect("METRICS");
        assert!(
            snap.ok >= answered as u64,
            "snapshot missing fleet requests"
        );

        let stats = c.stats().expect("STATS");
        assert!(
            stats.iter().any(|s| s.name.contains("forward")),
            "STATS exposition lacks the forward-stage summary"
        );
        println!("STATS   -> {} Prometheus samples", stats.len());

        let traces = c.trace().expect("TRACE");
        assert!(!traces.is_empty(), "no timeline exemplars kept");
        let t = &traces[0];
        // The five stages decompose the request wall time (5% tolerance
        // plus a few µs of per-stage integer truncation).
        let diff = (t.total_us as f64 - t.stage_sum_us() as f64).abs();
        assert!(
            diff <= 0.05 * t.total_us as f64 + 6.0,
            "stage decomposition off: {t:?}"
        );
        println!(
            "TRACE   -> {} exemplars; e.g. [{}] {}µs = parse {} + queue {} \
             + batch-wait {} + forward {} + write {}",
            traces.len(),
            t.template,
            t.total_us,
            t.parse_us,
            t.queue_us,
            t.batch_wait_us,
            t.forward_us,
            t.write_us
        );

        // FEEDBACK: replay the exact cardinality for every workload
        // query. The returned estimate must still be bit-identical to
        // the local one (feedback never perturbs the answer), and each
        // observation lands in the sketch's rolling q-error monitor.
        let oracle = TrueCardinalityOracle::new(&db);
        for (j, sql) in workload.iter().enumerate() {
            let actual = oracle
                .cardinality(&parse_query(&db, sql).expect("parse"))
                .expect("exact count");
            let got = c.feedback_value("imdb", actual, sql).expect("FEEDBACK");
            assert_eq!(
                got.to_bits(),
                local[j].to_bits(),
                "feedback perturbed estimate"
            );
        }
        let monitor = server.monitors().get("imdb").expect("feedback monitor");
        assert_eq!(monitor.samples(), workload.len() as u64);
        println!(
            "FEEDBACK-> {} observations, rolling q-error p50 {:.2}",
            monitor.samples(),
            deep_sketches::core::monitor::descale_qerror(monitor.rolling().quantile(0.5))
        );
        c.quit().expect("QUIT");
    }

    let snap = server.shutdown();
    println!("{snap}");
    println!(
        "{answered} estimates in {:.2}s ({:.0} req/s), {} coalesced batches (mean {:.1})",
        elapsed.as_secs_f64(),
        answered as f64 / elapsed.as_secs_f64(),
        snap.batches,
        snap.mean_batch
    );

    assert_eq!(mismatches, 0, "wire answers diverged from estimate_one");
    // The fleet's estimates plus the feedback replays, each answered OK.
    assert_eq!(
        (answered + workload.len()) as u64,
        snap.ok,
        "request accounting diverged"
    );
    assert!(snap.batches < snap.ok, "coalescing never engaged");
    println!("serve_demo OK: all {answered} wire answers bit-identical to estimate_one");
}
