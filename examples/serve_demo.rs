//! The serving front end, end to end: train a sketch, start the TCP
//! server, then hammer it with 64 concurrent clients and verify every
//! answer over the wire is bit-identical to a local `estimate_one` call.
//!
//! This is the smoke test CI runs for `ds-serve` — it exercises the full
//! stack (accept loop, protocol, coalescing batcher, metrics) in a few
//! seconds and fails loudly on any mismatch.
//!
//! Run with: `cargo run --release --example serve_demo`

use std::sync::Arc;
use std::time::{Duration, Instant};

use deep_sketches::prelude::*;
use deep_sketches::serve::Response;

const CLIENTS: usize = 64;

fn main() {
    let db = Arc::new(imdb_database(&ImdbConfig {
        movies: 2_000,
        keywords: 400,
        companies: 150,
        persons: 1_500,
        seed: 23,
    }));
    println!("synthetic IMDb loaded: {} rows", db.total_rows());

    println!("training the sketch …");
    let store = Arc::new(SketchStore::new());
    let sketch = SketchBuilder::new(&db, imdb_predicate_columns(&db))
        .training_queries(1_000)
        .epochs(8)
        .sample_size(64)
        .hidden_units(32)
        .seed(5)
        .build()
        .expect("sketch construction");
    store.insert("imdb", sketch).expect("fresh store");

    let workload: Vec<&str> = vec![
        "SELECT COUNT(*) FROM title",
        "SELECT COUNT(*) FROM title WHERE title.kind_id = 1",
        "SELECT COUNT(*) FROM title WHERE title.production_year > 1990",
        "SELECT COUNT(*) FROM title WHERE title.production_year > 2005",
        "SELECT COUNT(*) FROM title t, movie_keyword mk \
         WHERE mk.movie_id = t.id AND mk.keyword_id = 11",
        "SELECT COUNT(*) FROM title t, movie_keyword mk \
         WHERE mk.movie_id = t.id AND t.production_year > 1995",
    ];
    // Ground truth for the wire check: local, single-query estimates.
    let local: Vec<f64> = {
        let s = store.get("imdb").expect("ready sketch");
        workload
            .iter()
            .map(|sql| s.estimate_one(&parse_query(&db, sql).expect("parse")))
            .collect()
    };

    let server = Server::start(
        Arc::clone(&db),
        Arc::clone(&store),
        ServeConfig {
            workers: 4,
            request_timeout: Duration::from_secs(30),
            ..ServeConfig::default()
        },
    )
    .expect("bind server");
    let addr = server.local_addr();
    println!("serving on {addr}");

    // One warm-up client exercises the metadata commands.
    {
        let mut c = Client::connect(addr).expect("connect");
        if let Response::Text(t) = c.list().expect("LIST") {
            println!("LIST    -> {t}");
        }
        if let Response::Text(t) = c.info("imdb").expect("INFO") {
            println!("INFO    -> {t}");
        }
        c.quit().expect("QUIT");
    }

    println!("running {CLIENTS} concurrent clients …");
    let t0 = Instant::now();
    let mut mismatches = 0usize;
    let mut answered = 0usize;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let workload = &workload;
                let local = &local;
                s.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    let mut bad = 0usize;
                    let mut n = 0usize;
                    for k in 0..workload.len() * 2 {
                        let j = (i + k) % workload.len();
                        let got = c
                            .estimate_value("imdb", workload[j])
                            .expect("wire estimate");
                        n += 1;
                        if got.to_bits() != local[j].to_bits() {
                            eprintln!(
                                "MISMATCH client {i} query {j}: wire {got} vs local {}",
                                local[j]
                            );
                            bad += 1;
                        }
                    }
                    c.quit().expect("QUIT");
                    (n, bad)
                })
            })
            .collect();
        for h in handles {
            let (n, bad) = h.join().expect("client thread");
            answered += n;
            mismatches += bad;
        }
    });
    let elapsed = t0.elapsed();

    let snap = server.shutdown();
    println!("{snap}");
    println!(
        "{answered} estimates in {:.2}s ({:.0} req/s), {} coalesced batches (mean {:.1})",
        elapsed.as_secs_f64(),
        answered as f64 / elapsed.as_secs_f64(),
        snap.batches,
        snap.mean_batch
    );

    assert_eq!(mismatches, 0, "wire answers diverged from estimate_one");
    assert_eq!(answered as u64, snap.ok, "request accounting diverged");
    assert!(snap.batches < snap.ok, "coalescing never engaged");
    println!("serve_demo OK: all {answered} wire answers bit-identical to estimate_one");
}
