//! The paper's motivating demo scenario (§1 and Figure 2): "a movie
//! producer might be interested in the popularity of a certain keyword over
//! time":
//!
//! ```sql
//! SELECT COUNT(*) FROM title t, movie_keyword mk
//! WHERE mk.movie_id = t.id AND mk.keyword_id = <k>
//!   AND t.production_year = ?
//! ```
//!
//! The `?` placeholder makes this a query template; instances are drawn
//! from the column sample shipped with the sketch, grouped by decade, and
//! plotted as an ASCII chart with overlays for the true cardinality and the
//! traditional estimators — exactly the demo's result pane.
//!
//! Run with: `cargo run --release --example movie_keyword_trend`

use deep_sketches::core::template::{QueryTemplate, ValueFn};
use deep_sketches::prelude::*;

fn main() {
    let db = imdb_database(&ImdbConfig {
        movies: 4_000,
        keywords: 600,
        companies: 250,
        persons: 2_500,
        seed: 11,
    });

    println!("building Deep Sketch …");
    let sketch = SketchBuilder::new(&db, imdb_predicate_columns(&db))
        .training_queries(3_000)
        .epochs(15)
        .sample_size(100)
        .hidden_units(64)
        .seed(23)
        .build()
        .expect("sketch construction");

    // Pick a keyword that actually occurs (the most common one in the
    // sketch's own movie_keyword sample — a data analyst would type a name).
    let mk = db.table_id("movie_keyword").expect("imdb schema");
    let kw_col = db.resolve("movie_keyword.keyword_id").expect("schema").col;
    let keyword = sketch.samples()[mk.0]
        .distinct_values(kw_col)
        .first()
        .copied()
        .expect("non-empty sample");

    let sql = format!(
        "SELECT COUNT(*) FROM title t, movie_keyword mk \
         WHERE mk.movie_id = t.id AND mk.keyword_id = {keyword} \
         AND t.production_year = ?"
    );
    println!("template: {sql}\n");
    let template = QueryTemplate::parse_sql(&db, &sql).expect("template SQL");

    // Group template instances by decade (the demo's EXTRACT(YEAR …)-style
    // value function), then overlay estimators.
    let value_fn = ValueFn::GroupBy(10);
    let oracle = TrueCardinalityOracle::new(&db);
    let postgres = PostgresEstimator::build(&db);
    let hyper = SamplingEstimator::build(&db, 1000, 3);

    let truth = template.evaluate(sketch.samples(), value_fn, &oracle);
    let ours = template.evaluate(sketch.samples(), value_fn, &sketch);
    let pg = template.evaluate(sketch.samples(), value_fn, &postgres);
    let hy = template.evaluate(sketch.samples(), value_fn, &hyper);

    let max = truth
        .iter()
        .chain(&ours)
        .map(|&(_, v)| v)
        .fold(1.0f64, f64::max);

    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8}   true cardinality (bar)",
        "decade", "true", "sketch", "pg", "hyper"
    );
    for i in 0..truth.len() {
        let decade = truth[i].0 * 10;
        let bar_len = (truth[i].1 / max * 40.0).round() as usize;
        println!(
            "{:<8} {:>8.0} {:>8.0} {:>8.0} {:>8.0}   {}",
            decade,
            truth[i].1,
            ours[i].1,
            pg[i].1,
            hy[i].1,
            "█".repeat(bar_len)
        );
    }

    // Summarize each estimator's q-error over the template series.
    let summarize = |series: &[(i64, f64)], label: &str| {
        let qs: Vec<f64> = series
            .iter()
            .zip(&truth)
            .map(|(&(_, e), &(_, t))| qerror(e, t))
            .collect();
        println!("{}", QErrorSummary::from_qerrors(&qs).table_row(label));
    };
    println!("\nq-errors over the template series:");
    println!("{}", QErrorSummary::table_header());
    summarize(&ours, "Deep Sketch");
    summarize(&hy, "HyPer");
    summarize(&pg, "PostgreSQL");
}
