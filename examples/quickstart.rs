//! Quickstart: build a Deep Sketch over the synthetic IMDb, run ad-hoc SQL
//! against it, and compare with the traditional estimators and the truth.
//!
//! Run with: `cargo run --release --example quickstart`

use deep_sketches::prelude::*;

fn main() {
    // 1. The database — stand-in for HyPer + IMDb (see DESIGN.md §1).
    println!("generating synthetic IMDb …");
    let db = imdb_database(&ImdbConfig {
        movies: 4_000,
        keywords: 600,
        companies: 250,
        persons: 2_500,
        seed: 42,
    });
    for t in db.tables() {
        println!("  {:<16} {:>8} rows", t.name(), t.num_rows());
    }

    // 2. Build the sketch: generate + execute training queries, train MSCN
    //    (Figure 1a of the paper).
    println!("\nbuilding Deep Sketch (this trains a neural network) …");
    let (sketch, report) = SketchBuilder::new(&db, imdb_predicate_columns(&db))
        .training_queries(3_000)
        .epochs(15)
        .sample_size(100)
        .hidden_units(64)
        .max_tables(4)
        .seed(7)
        .build_with_report()
        .expect("sketch construction");
    println!(
        "  generation {:>8.2?} | execution {:>8.2?} | training {:>8.2?}",
        report.generation, report.execution, report.training.total_duration
    );
    println!(
        "  footprint: {:.2} MiB | validation mean q-error: {:.2}",
        report.footprint_bytes as f64 / (1024.0 * 1024.0),
        report.training.final_val_qerror().unwrap_or(f64::NAN)
    );

    // 3. Ad-hoc estimation (Figure 1b): the sketch consumes SQL, returns a
    //    cardinality estimate — here next to the baselines and the truth.
    let postgres = PostgresEstimator::build(&db);
    let hyper = SamplingEstimator::build(&db, 1000, 1);
    let oracle = TrueCardinalityOracle::new(&db);

    let queries = [
        "SELECT COUNT(*) FROM title WHERE title.production_year > 2010",
        "SELECT COUNT(*) FROM title t, movie_keyword mk \
         WHERE mk.movie_id = t.id AND t.production_year > 2005",
        "SELECT COUNT(*) FROM title t, movie_companies mc, movie_info_idx mi_idx \
         WHERE mc.movie_id = t.id AND mi_idx.movie_id = t.id \
         AND mc.company_type_id = 2 AND t.production_year > 2000",
        "SELECT COUNT(*) FROM title t, cast_info ci, movie_keyword mk \
         WHERE ci.movie_id = t.id AND mk.movie_id = t.id AND ci.role_id = 1",
    ];

    println!(
        "\n{:<66} {:>10} {:>10} {:>10} {:>10}",
        "query", "true", "sketch", "postgres", "hyper"
    );
    for sql in queries {
        let q = parse_query(&db, sql).expect("valid SQL");
        let truth = oracle.estimate(&q);
        println!(
            "{:<66} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
            ellipsize(sql, 66),
            truth,
            sketch.estimate(&q),
            postgres.estimate(&q),
            hyper.estimate(&q),
        );
    }

    // 4. Sketches serialize to a compact blob and reload without the DB.
    let bytes = sketch.to_bytes();
    let restored = DeepSketch::from_bytes(&bytes).expect("roundtrip");
    let q = parse_query(&db, queries[1]).expect("valid SQL");
    assert_eq!(sketch.estimate(&q), restored.estimate(&q));
    println!(
        "\nsketch serialized to {} bytes and reloaded — estimates identical",
        bytes.len()
    );
}

fn ellipsize(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}
