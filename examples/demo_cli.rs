//! An interactive, terminal version of the paper's demo (Figure 2 without
//! the browser): build or load sketches, type SQL, and see the Deep Sketch
//! estimate next to the PostgreSQL- and HyPer-style estimates and the true
//! cardinality — the demo's EXECUTE button.
//!
//! Commands:
//!   tables                     — list tables and row counts
//!   sketches                   — list sketches in the store (SHOW SKETCHES)
//!   train <name>               — train a new sketch in the background
//!   advise                     — run the sketch advisor on JOB-light
//!   SELECT COUNT(*) FROM …     — estimate with everything + ground truth
//!   …  WHERE col = ?           — template query, grouped output
//!   quit
//!
//! Run with: `cargo run --release --example demo_cli` and pipe commands in,
//! e.g. `echo 'SELECT COUNT(*) FROM title' | cargo run --example demo_cli`.

use std::io::{BufRead, Write};
use std::sync::Arc;

use deep_sketches::core::advisor::{recommend, AdvisorConfig};
use deep_sketches::core::store::SketchStore;
use deep_sketches::core::template::{QueryTemplate, ValueFn};
use deep_sketches::prelude::*;

fn main() {
    let db = Arc::new(imdb_database(&ImdbConfig {
        movies: 3_000,
        keywords: 500,
        companies: 200,
        persons: 2_000,
        seed: 17,
    }));
    println!("synthetic IMDb loaded: {} rows", db.total_rows());

    println!("training the default sketch …");
    let store = SketchStore::new();
    let default_sketch = SketchBuilder::new(&db, imdb_predicate_columns(&db))
        .training_queries(2_000)
        .epochs(12)
        .sample_size(100)
        .hidden_units(64)
        .max_tables(5)
        .seed(29)
        .build()
        .expect("default sketch");
    store
        .insert("default", default_sketch)
        .expect("fresh store");

    let postgres = PostgresEstimator::build(&db);
    let hyper = SamplingEstimator::build(&db, 100, 31);
    let oracle = TrueCardinalityOracle::new(&db);

    let stdin = std::io::stdin();
    print_prompt();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let input = line.trim();
        if input.is_empty() {
            print_prompt();
            continue;
        }
        match input {
            "quit" | "exit" => break,
            "tables" => {
                for t in db.tables() {
                    println!("  {:<16} {:>8} rows", t.name(), t.num_rows());
                }
            }
            "sketches" => {
                for (name, status) in store.list() {
                    println!("  {name:<12} {status:?}");
                }
            }
            "advise" => {
                let wl = job_light_workload(&db, 1);
                let advice = recommend(&db, &wl, &AdvisorConfig::default());
                println!(
                    "  advisor covers {:.0}% of JOB-light with {} sketch(es):",
                    advice.coverage * 100.0,
                    advice.recommendations.len()
                );
                for r in &advice.recommendations {
                    let names: Vec<&str> = r.tables.iter().map(|&t| db.table(t).name()).collect();
                    println!(
                        "    {{{}}} — {} queries, ≈{:.2} MiB",
                        names.join(", "),
                        r.newly_covered.len(),
                        r.est_footprint_bytes as f64 / (1024.0 * 1024.0)
                    );
                }
            }
            cmd if cmd.starts_with("train ") => {
                let name = cmd["train ".len()..].trim().to_string();
                let cols = imdb_predicate_columns(&db);
                match store.train_in_background(
                    name.clone(),
                    Arc::clone(&db),
                    |b| {
                        b.training_queries(1_500)
                            .epochs(10)
                            .sample_size(100)
                            .hidden_units(64)
                            .seed(97)
                    },
                    cols,
                ) {
                    Ok(()) => println!("  training '{name}' in the background; keep querying"),
                    Err(e) => println!("  error: {e}"),
                }
            }
            sql if sql.contains('?') => match QueryTemplate::parse_sql(&db, sql) {
                Ok(template) => match store.get("default") {
                    Ok(sketch) => {
                        let ours =
                            template.evaluate(sketch.samples(), ValueFn::GroupBy(10), &*sketch);
                        let truth =
                            template.evaluate(sketch.samples(), ValueFn::GroupBy(10), &oracle);
                        println!("  {:>10} {:>10} {:>10}", "group", "sketch", "true");
                        for (o, t) in ours.iter().zip(&truth) {
                            println!("  {:>10} {:>10.0} {:>10.0}", o.0 * 10, o.1, t.1);
                        }
                    }
                    Err(e) => println!("  error: {e}"),
                },
                Err(e) => println!("  {e}"),
            },
            sql => match parse_query(&db, sql) {
                Ok(q) => {
                    let truth = oracle.estimate(&q);
                    // Every estimator goes through the one unified trait:
                    // the store handle answers for the deep sketch (and
                    // reports, rather than panics, if it's missing), the
                    // baselines answer for themselves.
                    let sketch = store.handle("default");
                    let panel: [(&str, &dyn CardinalityEstimator); 3] =
                        [("sketch", &sketch), ("pg", &postgres), ("hyper", &hyper)];
                    print!("  true {truth:>10.0}");
                    for (label, est) in panel {
                        match est.try_estimate(&q) {
                            Ok(v) => {
                                print!(" | {label} {v:>10.0} (q={:.2})", qerror(v, truth));
                            }
                            Err(e) => print!(" | {label} unavailable: {e}"),
                        }
                    }
                    println!();
                }
                Err(e) => println!("  {e}"),
            },
        }
        print_prompt();
    }
    println!("bye");
}

fn print_prompt() {
    print!("deep-sketches> ");
    std::io::stdout().flush().ok();
}
