//! The paper's §4 open question, answered end-to-end: *"for which schema
//! parts we should build such sketches?"*
//!
//! 1. The **advisor** analyzes a workload and recommends table subsets by
//!    greedy coverage-per-byte.
//! 2. A **fleet** of focused sketches is trained, one per recommendation
//!    (each confined to its subset — step 1 of Figure 1a).
//! 3. Queries are **routed** to the smallest covering sketch; accuracy and
//!    footprint are compared against one monolithic whole-schema sketch.
//!
//! Run with: `cargo run --release --example advisor_fleet`

use deep_sketches::core::advisor::{recommend, AdvisorConfig};
use deep_sketches::core::fleet::{Route, SketchFleet};
use deep_sketches::prelude::*;

fn main() {
    let db = imdb_database(&ImdbConfig {
        movies: 4_000,
        keywords: 600,
        companies: 250,
        persons: 2_500,
        seed: 3,
    });
    let workload = job_light_workload(&db, 11);

    // --- 1. advise -------------------------------------------------------
    let cfg = AdvisorConfig {
        max_tables_per_sketch: 4,
        max_sketches: 3,
        sample_size: 100,
        hidden_units: 64,
    };
    let advice = recommend(&db, &workload, &cfg);
    println!(
        "advisor: {} sketches cover {:.0}% of the 70-query workload",
        advice.recommendations.len(),
        advice.coverage * 100.0
    );
    for (i, r) in advice.recommendations.iter().enumerate() {
        let names: Vec<&str> = r.tables.iter().map(|&t| db.table(t).name()).collect();
        println!(
            "  sketch {}: {{{}}} — covers {} queries, est. {:.2} MiB",
            i + 1,
            names.join(", "),
            r.newly_covered.len(),
            r.est_footprint_bytes as f64 / (1024.0 * 1024.0)
        );
    }

    // --- 2. build the fleet ----------------------------------------------
    println!(
        "\ntraining the fleet ({} focused sketches) …",
        advice.recommendations.len()
    );
    let fleet = SketchFleet::build_from_advice(&db, &advice, imdb_predicate_columns(&db), |b| {
        b.training_queries(2_500)
            .epochs(12)
            .sample_size(100)
            .hidden_units(64)
    })
    .expect("fleet");

    println!("training the monolithic whole-schema sketch …");
    let monolith = SketchBuilder::new(&db, imdb_predicate_columns(&db))
        .training_queries(2_500)
        .epochs(12)
        .sample_size(100)
        .hidden_units(64)
        .max_tables(5)
        .seed(0xF1EE7 ^ 99)
        .build()
        .expect("monolith");

    // --- 3. route + compare -----------------------------------------------
    let oracle = TrueCardinalityOracle::new(&db);
    let mut fleet_q = Vec::new();
    let mut mono_q = Vec::new();
    let mut uncovered = 0;
    for q in &workload {
        let truth = oracle.estimate(q);
        match fleet.route(q) {
            Route::Member(_) => {
                fleet_q.push(qerror(fleet.estimate(q), truth));
                mono_q.push(qerror(monolith.estimate(q), truth));
            }
            Route::Uncovered => uncovered += 1,
        }
    }
    println!(
        "\nrouted {} queries ({} uncovered fall back to the monolith in production)",
        fleet_q.len(),
        uncovered
    );
    println!("\nq-errors on the routed queries:");
    println!("{}", QErrorSummary::table_header());
    println!(
        "{}",
        QErrorSummary::from_qerrors(&fleet_q).table_row("fleet")
    );
    println!(
        "{}",
        QErrorSummary::from_qerrors(&mono_q).table_row("monolith")
    );
    println!(
        "\nfootprints: fleet {:.2} MiB across {} sketches vs monolith {:.2} MiB",
        fleet.footprint_bytes() as f64 / (1024.0 * 1024.0),
        fleet.len(),
        monolith.footprint_bytes() as f64 / (1024.0 * 1024.0)
    );
}
