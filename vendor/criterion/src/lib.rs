//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so this vendors a minimal
//! wall-clock harness with the API subset the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], the builder knobs (`sample_size`,
//! `measurement_time`, `warm_up_time`), and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Each benchmark reports min/mean/median per-iteration time to stdout.
//! Statistical analysis, plots, and baseline comparison are out of scope.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up running time before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored: every batch
/// is one routine call, which matches how the workspace uses it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

impl Bencher {
    /// Times `routine` repeatedly; each sample aggregates enough calls to
    /// be measurable.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and calibrate iterations per sample while at it.
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            calls += 1;
        }
        let per_call = warm_start.elapsed().as_secs_f64() / calls.max(1) as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_call.max(1e-9)) as u64).clamp(1, 1 << 24);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    /// Times `routine` on fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up: a few calls to stabilize caches/frequency.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine(setup()));
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(t.elapsed().as_nanos() as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{id:<40} min {:>12} median {:>12} mean {:>12}",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean)
        );
    }

    /// Median per-iteration nanoseconds of the last run (for callers that
    /// post-process results, e.g. to export machine-readable output).
    pub fn median_ns(&self) -> Option<f64> {
        if self.samples_ns.is_empty() {
            return None;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Some(sorted[sorted.len() / 2])
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5));
        let mut saw_samples = false;
        c.bench_function("smoke/iter", |b| {
            b.iter(|| black_box(3u64).wrapping_mul(7));
            saw_samples = b.median_ns().is_some();
        });
        assert!(saw_samples);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default()
            .sample_size(4)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(2));
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
            assert_eq!(b.median_ns().map(|n| n >= 0.0), Some(true));
        });
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert!(fmt_ns(2_500.0).ends_with("µs"));
        assert!(fmt_ns(3_000_000.0).ends_with("ms"));
        assert!(fmt_ns(4_000_000_000.0).ends_with('s'));
    }
}
