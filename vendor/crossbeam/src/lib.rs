//! Offline stand-in for `crossbeam`: the [`scope`] scoped-thread API this
//! workspace uses, implemented over `std::thread::scope` (stable since
//! Rust 1.63, which makes crossbeam's version unnecessary here).

use std::any::Any;
use std::thread;

/// A scope handle that can spawn borrowing worker threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// Handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread and returns its result (`Err` on panic).
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a worker; the closure receives the scope again so workers can
    /// spawn sub-workers (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner_scope = self.inner;
        ScopedJoinHandle {
            inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
        }
    }
}

/// Runs `f` with a scope in which borrowing threads can be spawned; all
/// spawned threads are joined before `scope` returns. Mirrors
/// `crossbeam::scope`, including the `Result` wrapper (always `Ok` here:
/// panics of joined workers surface through their `join()`, and panics of
/// unjoined workers propagate as panics, as with `std::thread::scope`).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn worker_panic_surfaces_in_join() {
        let caught = scope(|s| {
            let h = s.spawn(|_| -> u32 { panic!("worker died") });
            h.join().is_err()
        })
        .unwrap();
        assert!(caught);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let v = [10u32, 20];
        let sum: u32 = scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| v[1]);
                v[0] + inner.join().unwrap()
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 30);
    }
}
