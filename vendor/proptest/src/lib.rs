//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so this vendors the subset
//! the workspace's property tests use: the [`proptest!`] macro over
//! functions with `pattern in strategy` arguments, numeric range
//! strategies, [`prop::collection::vec`], simple `[a-b]{m,n}` string
//! "regex" strategies, [`ProptestConfig::with_cases`], and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! No shrinking is performed: a failing case reports its seed and panics.
//! Cases are deterministic per (test, case index), so failures reproduce.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Per-block configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Failure raised by `prop_assert!`-style macros.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: String) -> Self {
        Self(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of random values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! numeric_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

numeric_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.random_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

/// String strategy from a `[lo-hi]{min,max}` character-class pattern — the
/// only regex shape the workspace's fuzz tests use. Falls back to emitting
/// the pattern literally when it does not parse as a class-with-repetition.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        match parse_class_repeat(self) {
            Some((lo, hi, min, max)) => {
                let len = rng.random_range(min..=max);
                (0..len)
                    .map(|_| rng.random_range(lo as u32..=hi as u32))
                    .filter_map(char::from_u32)
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

/// Parses `[a-b]{m,n}` into `(a, b, m, n)`.
fn parse_class_repeat(pat: &str) -> Option<(char, char, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars = class.chars();
    let lo = chars.next()?;
    if chars.next()? != '-' {
        return None;
    }
    let hi = chars.next()?;
    if chars.next().is_some() {
        return None;
    }
    let rest = rest.strip_prefix('{')?;
    let (reps, tail) = rest.split_once('}')?;
    if !tail.is_empty() {
        return None;
    }
    let (min, max) = reps.split_once(',')?;
    Some((lo, hi, min.trim().parse().ok()?, max.trim().parse().ok()?))
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::RngExt;

        /// Generates `Vec`s whose length is drawn from `len` and whose
        /// elements come from `elem`.
        pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        /// See [`vec()`].
        pub struct VecStrategy<S> {
            elem: S,
            len: core::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = rng.random_range(self.len.clone());
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

/// Generates one value from a strategy — the call the [`proptest!`]
/// expansion uses (free function so auto-ref works on range expressions).
pub fn generate_one<S: Strategy>(strategy: &S, rng: &mut StdRng) -> S::Value {
    strategy.generate(rng)
}

/// Deterministic per-test RNG: seeded from the test name and case index.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Property-test entry point; see the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cases = ($cfg).cases;
            for __case in 0..__cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                $(let $pat = $crate::generate_one(&$strat, &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("property '{}' failed at case {}: {}", stringify!($name), __case, e);
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (l, r) = (&$a, &$b);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} != {} ({:?} vs {:?})", stringify!($a), stringify!($b), l, r
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$a, &$b);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} != {} ({:?} vs {:?}): {}",
                stringify!($a), stringify!($b), l, r, format!($($fmt)+)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(x in 1i64..100, v in prop::collection::vec(0u64..10, 2..8)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!((2..8).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn string_class(s in "[a-c]{2,5}") {
            prop_assert!((2..=5).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn mut_patterns_work(mut v in prop::collection::vec(0i64..50, 1..10)) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..4)
            .map(|c| crate::generate_one(&(0u64..1000), &mut crate::case_rng("t", c)))
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|c| crate::generate_one(&(0u64..1000), &mut crate::case_rng("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
