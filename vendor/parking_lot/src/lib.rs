//! Offline stand-in for `parking_lot`: the non-poisoning `Mutex`/`RwLock`
//! API subset this workspace uses, implemented over `std::sync`.
//!
//! Poisoning is transparently recovered (a panicked holder does not poison
//! the lock for later users), which matches parking_lot semantics.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Acquires shared read access, recovering from poisoning.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, recovering from poisoning.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);

        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }
}
