//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! small API subset it actually uses: a seedable deterministic generator
//! ([`rngs::StdRng`], xoshiro256++ seeded via SplitMix64), uniform sampling
//! over integer/float ranges ([`RngExt::random_range`]), unit-interval
//! floats ([`RngExt::random`]), and Fisher–Yates shuffling
//! ([`seq::SliceRandom::shuffle`]).
//!
//! The stream is *not* bit-compatible with upstream `rand`; every consumer
//! in this workspace only relies on determinism (same seed → same stream),
//! which this implementation guarantees across platforms.

/// Core random source: a stream of uniform `u64`s.
pub trait Rng {
    /// Next raw 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values that can be drawn uniformly from the generator's raw bits.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types that can be sampled uniformly from a bounded range.
///
/// `SampleRange` is blanket-implemented over this (one impl per range
/// shape, like upstream `rand`), so integer-literal range bounds infer
/// their type from the call site instead of hitting multiple candidate
/// impls.
pub trait SampleUniform: Sized {
    /// Uniform draw from the half-open range `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from the closed range `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Rejection-free-enough uniform integer in `[0, n)` via Lemire's
/// multiply-shift with a rejection loop for exactness.
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Rejection sampling over the largest multiple of n that fits in u64.
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
            #[inline]
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let u = <$t as Standard>::draw(rng);
                lo + u * (hi - lo)
            }
            #[inline]
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::draw(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_uniform!(f32, f64);

/// Convenience sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform value: floats in `[0, 1)`, `bool` fair, integers full-width.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform value from `range`.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    //! Named generator types.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded through SplitMix64 so that nearby seeds give unrelated
    /// streams.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling.

    use super::{Rng, RngExt};

    /// Shuffling and random picks over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn determinism_and_seed_sensitivity() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0..1_000_000u64)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0..1_000_000u64)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.random_range(0..1_000_000u64)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.random_range(3usize..=9);
            assert!((3..=9).contains(&w));
            let f = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
        assert!([1, 2, 3].choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
