//! # Deep Sketches
//!
//! A from-scratch Rust reproduction of *"Estimating Cardinalities with Deep
//! Sketches"* (Kipf et al., SIGMOD 2019): compact learned models of
//! databases that estimate `SELECT COUNT(*)` result sizes, powered by a
//! multi-set convolutional network (MSCN) over featurized queries and
//! materialized base-table samples.
//!
//! This crate is a facade re-exporting the workspace crates:
//!
//! * [`storage`] — in-memory columnar engine, exact COUNT executor,
//!   synthetic IMDb/TPC-H generators.
//! * [`query`] — query model, SQL-subset parser, uniform training-query
//!   generator, JOB-light workload.
//! * [`nn`] — minimal CPU neural-network library with manual backprop.
//! * [`est`] — traditional estimators (PostgreSQL-style, sampling-based).
//! * [`core`] — the paper's contribution: featurization, the MSCN model,
//!   training, the [`core::sketch::DeepSketch`] wrapper, and crash-safe
//!   snapshot persistence ([`core::snapshot`], [`core::store::SketchStore::open_dir`]).
//! * [`serve`] — concurrent TCP serving front end with request
//!   coalescing, per-request stage timelines, online q-error
//!   feedback monitoring over the [`core::store::SketchStore`], and
//!   per-sketch circuit breakers degrading to baseline estimators.
//!
//! ## Quickstart
//!
//! ```no_run
//! use deep_sketches::prelude::*;
//!
//! // 1. A database (stand-in for HyPer + IMDb).
//! let db = imdb_database(&ImdbConfig::default());
//!
//! // 2. Build a sketch: generate + execute training queries, train MSCN.
//! let sketch = SketchBuilder::new(&db, imdb_predicate_columns(&db))
//!     .training_queries(5_000)
//!     .epochs(20)
//!     .sample_size(200)
//!     .seed(42)
//!     .build()
//!     .expect("sketch construction");
//!
//! // 3. Estimate an ad-hoc query.
//! let q = parse_query(&db, "SELECT COUNT(*) FROM title t, movie_keyword mk \
//!                           WHERE mk.movie_id = t.id AND t.production_year > 2000")
//!     .expect("parse");
//! let estimate = sketch.estimate(&q);
//! println!("estimated cardinality: {estimate:.0}");
//! ```

pub use ds_core as core;
pub use ds_est as est;
pub use ds_nn as nn;
pub use ds_plan as plan;
pub use ds_query as query;
pub use ds_serve as serve;
pub use ds_storage as storage;

/// Convenient, flat imports for applications.
pub mod prelude {
    pub use ds_core::advisor::{
        recommend, recommend_retraining, Advice, AdvisorConfig, RetrainAdvice,
    };
    pub use ds_core::builder::{BuildProgress, SketchBuilder};
    pub use ds_core::fleet::{Route, SketchFleet};
    pub use ds_core::maintain::{
        accuracy_drift, detect_drift, refresh_samples, AccuracyDrift, DriftReport,
        DEFAULT_DRIFT_RATIO, DEFAULT_MIN_SAMPLES,
    };
    pub use ds_core::metrics::{qerror, QErrorSummary};
    pub use ds_core::monitor::{MonitorRegistry, QErrorMonitor};
    pub use ds_core::sketch::DeepSketch;
    pub use ds_core::snapshot::{decode_snapshot, encode_snapshot, SnapshotError, WriteFault};
    pub use ds_core::store::{RecoveryReport, SketchStatus, SketchStore, StoreHandle};
    pub use ds_core::template::{QueryTemplate, ValueFn};
    pub use ds_est::{
        oracle::TrueCardinalityOracle, postgres::PostgresEstimator, sampling::SamplingEstimator,
        CardinalityEstimator, EstimateError,
    };
    pub use ds_plan::{plan_regret, workload_regret, Optimizer};
    pub use ds_query::parser::parse_query;
    pub use ds_query::query::Query;
    pub use ds_query::workloads::job_light::job_light_workload;
    pub use ds_query::workloads::{imdb_predicate_columns, tpch_predicate_columns};
    pub use ds_serve::{
        BreakerConfig, Client, FaultInjector, InfoCard, MetricsSnapshot, RequestTimeline,
        ServeConfig, Server,
    };
    pub use ds_storage::gen::{imdb_database, tpch_database, ImdbConfig, TpchConfig};
    pub use ds_storage::Database;
}
