//! End-to-end integration: the full Figure-1a pipeline, cross-crate.

use deep_sketches::core::template::{QueryTemplate, ValueFn};
use deep_sketches::prelude::*;

fn small_imdb(seed: u64) -> Database {
    imdb_database(&ImdbConfig {
        movies: 1_500,
        keywords: 200,
        companies: 100,
        persons: 800,
        seed,
    })
}

#[test]
fn pipeline_sketch_estimates_job_light() {
    let db = small_imdb(1);
    let (sketch, report) = SketchBuilder::new(&db, imdb_predicate_columns(&db))
        .training_queries(1_500)
        .epochs(12)
        .sample_size(64)
        .hidden_units(48)
        .max_tables(5)
        .seed(9)
        .build_with_report()
        .expect("pipeline");

    let oracle = TrueCardinalityOracle::new(&db);
    let workload = job_light_workload(&db, 4);
    let estimates = sketch.estimate_batch(&workload);
    let qs: Vec<f64> = workload
        .iter()
        .zip(&estimates)
        .map(|(q, &e)| qerror(e, oracle.estimate(q)))
        .collect();
    let summary = QErrorSummary::from_qerrors(&qs);
    assert!(
        summary.median < 15.0,
        "median q-error on JOB-light too high: {}",
        summary.median
    );
    // The *mean* validation q-error is outlier-dominated at this tiny
    // training scale; require it to be finite and sane rather than tight.
    let val = report.training.final_val_qerror().unwrap();
    assert!(val.is_finite() && val < 500.0, "val mean q-error {val}");
}

#[test]
fn sketch_survives_disk_roundtrip() {
    let db = small_imdb(2);
    let sketch = SketchBuilder::new(&db, imdb_predicate_columns(&db))
        .training_queries(300)
        .epochs(3)
        .sample_size(32)
        .hidden_units(16)
        .seed(5)
        .build()
        .expect("pipeline");

    let dir = std::env::temp_dir().join("deep_sketches_test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("imdb.sketch");
    std::fs::write(&path, sketch.to_bytes()).expect("write sketch");
    let bytes = std::fs::read(&path).expect("read sketch");
    let restored = DeepSketch::from_bytes(&bytes).expect("decode");

    let workload = job_light_workload(&db, 1);
    assert_eq!(
        sketch.estimate_batch(&workload),
        restored.estimate_batch(&workload)
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn all_estimators_fulfil_the_contract_on_job_light() {
    let db = small_imdb(3);
    let sketch = SketchBuilder::new(&db, imdb_predicate_columns(&db))
        .training_queries(300)
        .epochs(3)
        .sample_size(32)
        .hidden_units(16)
        .seed(8)
        .build()
        .expect("pipeline");
    let pg = PostgresEstimator::build(&db);
    let hy = SamplingEstimator::build(&db, 100, 2);
    let estimators: Vec<&dyn CardinalityEstimator> = vec![&sketch, &pg, &hy];

    for q in &job_light_workload(&db, 7) {
        for est in &estimators {
            let e = est.estimate(q);
            assert!(e.is_finite() && e >= 1.0, "{}: estimate {e}", est.name());
            // Determinism.
            assert_eq!(e, est.estimate(q), "{} unstable", est.name());
        }
    }
}

#[test]
fn template_pipeline_matches_demo_flow() {
    // Parse a template with a placeholder, instantiate it from the sketch's
    // sample, and overlay sketch vs truth — the complete Figure 2 flow.
    let db = small_imdb(4);
    let sketch = SketchBuilder::new(&db, imdb_predicate_columns(&db))
        .training_queries(400)
        .epochs(4)
        .sample_size(48)
        .hidden_units(16)
        .seed(13)
        .build()
        .expect("pipeline");

    let template = QueryTemplate::parse_sql(
        &db,
        "SELECT COUNT(*) FROM title t, movie_keyword mk \
         WHERE mk.movie_id = t.id AND mk.keyword_id = 1 AND t.production_year = ?",
    )
    .expect("template");

    let oracle = TrueCardinalityOracle::new(&db);
    let ours = template.evaluate(sketch.samples(), ValueFn::GroupBy(10), &sketch);
    let truth = template.evaluate(sketch.samples(), ValueFn::GroupBy(10), &oracle);
    assert_eq!(ours.len(), truth.len());
    assert!(!ours.is_empty());
    // Same X axis for the overlay.
    for (a, b) in ours.iter().zip(&truth) {
        assert_eq!(a.0, b.0);
    }
}

#[test]
fn tpch_pipeline_works_too() {
    let db = tpch_database(&TpchConfig {
        customers: 300,
        parts: 200,
        suppliers: 30,
        seed: 77,
    });
    let sketch = SketchBuilder::new(&db, tpch_predicate_columns(&db))
        .training_queries(500)
        .epochs(6)
        .sample_size(48)
        .hidden_units(24)
        .max_tables(4)
        .seed(21)
        .build()
        .expect("pipeline");
    let oracle = TrueCardinalityOracle::new(&db);
    let wl = deep_sketches::query::workloads::tpch::tpch_workload(&db, 2);
    let qs: Vec<f64> = wl
        .iter()
        .map(|q| qerror(sketch.estimate(q), oracle.estimate(q)))
        .collect();
    let summary = QErrorSummary::from_qerrors(&qs);
    assert!(summary.median < 20.0, "median {}", summary.median);
}
