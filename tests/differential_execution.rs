//! Differential testing of the production COUNT executor against the naive
//! materializing executor, on randomly generated databases and queries.

use proptest::prelude::*;

use deep_sketches::query::{GeneratorConfig, QueryGenerator};
use deep_sketches::storage::catalog::{ColRef, Database, ForeignKey, TableId};
use deep_sketches::storage::column::Column;
use deep_sketches::storage::exec::{CountExecutor, NaiveExecutor};
use deep_sketches::storage::table::Table;

/// Builds a small random star-schema database: one hub table and 2 satellite
/// tables with FKs into it, all columns low-cardinality so predicates and
/// joins are selective but non-empty.
fn random_db(seed: u64, hub_rows: usize, sat_rows: usize) -> Database {
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let hub = Table::new(
        "hub",
        vec![
            Column::new("id", (0..hub_rows as i64).collect()),
            Column::new("a", (0..hub_rows).map(|_| rng.random_range(0..5)).collect()),
        ],
    );
    let mk_sat = |name: &str, rng: &mut StdRng| {
        Table::new(
            name,
            vec![
                Column::new(
                    "hub_id",
                    (0..sat_rows)
                        .map(|_| rng.random_range(0..hub_rows as i64))
                        .collect(),
                ),
                Column::new("b", (0..sat_rows).map(|_| rng.random_range(0..4)).collect()),
            ],
        )
    };
    let s1 = mk_sat("s1", &mut rng);
    let s2 = mk_sat("s2", &mut rng);
    let fks = vec![
        ForeignKey {
            from: ColRef::new(TableId(1), 0),
            to: ColRef::new(TableId(0), 0),
        },
        ForeignKey {
            from: ColRef::new(TableId(2), 0),
            to: ColRef::new(TableId(0), 0),
        },
    ];
    Database::new("rand", vec![hub, s1, s2], fks)
}

fn pred_cols(db: &Database) -> Vec<ColRef> {
    vec![
        db.resolve("hub.a").unwrap(),
        db.resolve("s1.b").unwrap(),
        db.resolve("s2.b").unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Yannakakis-style counting must agree exactly with naive hash joins
    /// on every generated query over every generated database.
    #[test]
    fn executors_agree(seed in 0u64..5000, hub in 5usize..40, sat in 5usize..60) {
        let db = random_db(seed, hub, sat);
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::new(pred_cols(&db), seed ^ 0xF00));
        let fast = CountExecutor::new();
        let naive = NaiveExecutor::new();
        for q in gen.generate_batch(8) {
            let e = q.to_exec();
            let a = fast.count(&db, &e).expect("fast executor");
            let b = naive.count(&db, &e).expect("naive executor");
            prop_assert_eq!(a, b, "query {:?}", q);
        }
    }

    /// The executor count must match a brute-force predicate count on
    /// single-table queries.
    #[test]
    fn single_table_counts_match_filter(seed in 0u64..5000, rows in 1usize..80) {
        let db = random_db(seed, rows, 10);
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::new(pred_cols(&db), seed));
        let fast = CountExecutor::new();
        for q in gen.generate_batch(6).into_iter().filter(|q| q.tables.len() == 1) {
            let t = q.tables[0];
            let brute = db.table(t).filter_count(&q.preds_of(t));
            prop_assert_eq!(fast.count(&db, &q.to_exec()).unwrap(), brute);
        }
    }
}
