//! Parser robustness: round-trips for all generated workloads and
//! no-panic behaviour on arbitrary input.

use proptest::prelude::*;

use deep_sketches::prelude::*;
use deep_sketches::query::parser::parse;
use deep_sketches::query::sqlgen::to_sql;
use deep_sketches::query::{GeneratorConfig, QueryGenerator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every generated query round-trips exactly through SQL text.
    #[test]
    fn generated_queries_roundtrip(seed in 0u64..100_000) {
        let db = imdb_database(&ImdbConfig::tiny(2));
        let mut cfg = GeneratorConfig::new(imdb_predicate_columns(&db), seed);
        cfg.max_tables = 5;
        cfg.max_predicates = 4;
        let mut gen = QueryGenerator::new(&db, cfg);
        for q in gen.generate_batch(10) {
            let sql = to_sql(&db, &q);
            let parsed = parse_query(&db, &sql).expect("roundtrip parse");
            prop_assert_eq!(parsed, q, "sql: {}", sql);
        }
    }

    /// The parser never panics on arbitrary ASCII garbage — it returns
    /// errors instead.
    #[test]
    fn arbitrary_input_never_panics(input in "[ -~]{0,120}") {
        let db = imdb_database(&ImdbConfig::tiny(2));
        let _ = parse(&db, &input); // Result either way; must not panic
    }

    /// SQL-ish prefixed garbage doesn't panic either (drives deeper into
    /// the parser states).
    #[test]
    fn sqlish_input_never_panics(tail in "[ -~]{0,80}") {
        let db = imdb_database(&ImdbConfig::tiny(2));
        let _ = parse(&db, &format!("SELECT COUNT(*) FROM title WHERE {tail}"));
        let _ = parse(&db, &format!("SELECT COUNT(*) FROM {tail}"));
    }
}

#[test]
fn unicode_and_long_inputs_error_cleanly() {
    let db = imdb_database(&ImdbConfig::tiny(2));
    for bad in [
        "SELECT COUNT(*) FROM tïtle",
        "SELECT COUNT(*) FROM title WHERE title.kind_id = 99999999999999999999999",
        &"SELECT COUNT(*) FROM title, ".repeat(200),
    ] {
        assert!(parse(&db, bad).is_err(), "should error: {bad}");
    }
}
