//! The real-data pathway end-to-end: export a database to CSV, re-import
//! it, and verify the whole pipeline (stats, sampling, sketch training)
//! behaves identically on the imported copy.

use deep_sketches::prelude::*;
use deep_sketches::storage::csv::{read_database_dir, write_database_dir};

#[test]
fn csv_roundtripped_database_is_pipeline_equivalent() {
    let db = imdb_database(&ImdbConfig::tiny(41));
    let dir = std::env::temp_dir().join(format!("ds_csv_pipeline_{}", std::process::id()));
    write_database_dir(&db, &dir).expect("export");
    let imported = read_database_dir("imdb", &dir).expect("import");
    std::fs::remove_dir_all(&dir).ok();

    // Same shape, same FK integrity.
    assert_eq!(imported.num_tables(), db.num_tables());
    assert_eq!(imported.total_rows(), db.total_rows());
    assert!(imported.validate_foreign_keys().is_empty());

    // Ground truth identical on the whole workload.
    let oracle_a = TrueCardinalityOracle::new(&db);
    let oracle_b = TrueCardinalityOracle::new(&imported);
    let wl = job_light_workload(&db, 9);
    for q in &wl {
        assert_eq!(oracle_a.estimate(q), oracle_b.estimate(q));
    }

    // Sketches trained on original vs imported data are bit-identical
    // (the pipeline only sees column values, which round-tripped exactly).
    let build = |d: &Database| {
        SketchBuilder::new(d, imdb_predicate_columns(d))
            .training_queries(120)
            .epochs(2)
            .sample_size(8)
            .hidden_units(8)
            .seed(3)
            .build()
            .expect("sketch")
    };
    assert_eq!(build(&db).to_bytes(), build(&imported).to_bytes());
}

#[test]
fn importing_malformed_directories_fails_cleanly() {
    let dir = std::env::temp_dir().join(format!("ds_csv_bad_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // No CSV files at all.
    assert!(read_database_dir("x", &dir).is_err());
    // A CSV with a bad FK manifest.
    std::fs::write(dir.join("t.csv"), "a\n1\n").unwrap();
    std::fs::write(dir.join("schema.fks"), "t.a -> missing.b\n").unwrap();
    assert!(read_database_dir("x", &dir).is_err());
    std::fs::remove_dir_all(&dir).ok();
}
