//! Property-based tests of cross-crate invariants: featurization,
//! normalization, sketch monotonicity hooks, and estimator sanity.

use proptest::prelude::*;

use deep_sketches::core::featurize::Featurizer;
use deep_sketches::core::metrics::{percentile, qerror, QErrorSummary};
use deep_sketches::nn::loss::LabelNormalizer;
use deep_sketches::prelude::*;
use deep_sketches::query::{GeneratorConfig, QueryGenerator};
use deep_sketches::storage::sample::sample_all;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// q-error is symmetric, ≥ 1, and scales multiplicatively.
    #[test]
    fn qerror_properties(est in 1.0f64..1e9, truth in 1.0f64..1e9) {
        let q = qerror(est, truth);
        prop_assert!(q >= 1.0);
        prop_assert!((qerror(truth, est) - q).abs() < 1e-9 * q);
        // Scaling both sides leaves q unchanged.
        let q2 = qerror(est * 7.0, truth * 7.0);
        prop_assert!((q2 - q).abs() < 1e-6 * q);
    }

    /// Label normalization is a monotone bijection (up to clamping) of
    /// [1, max] onto [0, 1].
    #[test]
    fn normalizer_monotone_roundtrip(labels in prop::collection::vec(1u64..1_000_000, 2..50)) {
        let norm = LabelNormalizer::fit(&labels);
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        let mut last = -1.0f32;
        for &c in &sorted {
            let y = norm.normalize(c);
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!(y >= last);
            last = y;
            let back = norm.denormalize(y);
            prop_assert!(qerror(back, c as f64) < 1.001, "c={c} back={back}");
        }
    }

    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentile_monotone(mut xs in prop::collection::vec(0.0f64..1e6, 1..60)) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = f64::NEG_INFINITY;
        for i in 0..=10 {
            let p = i as f64 / 10.0;
            let v = percentile(&xs, p);
            prop_assert!(v >= last);
            prop_assert!(v >= xs[0] && v <= *xs.last().unwrap());
            last = v;
        }
    }

    /// Summary percentiles are ordered: median ≤ p90 ≤ p95 ≤ p99 ≤ max, and
    /// all lie within [min, max].
    #[test]
    fn summary_ordering(qs in prop::collection::vec(1.0f64..1e5, 1..80)) {
        let s = QErrorSummary::from_qerrors(&qs);
        prop_assert!(s.median <= s.p90 + 1e-9);
        prop_assert!(s.p90 <= s.p95 + 1e-9);
        prop_assert!(s.p95 <= s.p99 + 1e-9);
        prop_assert!(s.p99 <= s.max + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert_eq!(s.count, qs.len());
    }
}

proptest! {
    // Featurization properties run against a fixed small database; fewer
    // cases keep the suite fast.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every generated query featurizes into vectors of the advertised
    /// dimensions, with one-hot blocks summing to ≤ 1 and literals in [0,1].
    #[test]
    fn featurization_shape_invariants(seed in 0u64..10_000) {
        let db = imdb_database(&ImdbConfig::tiny(3));
        let samples = sample_all(&db, 16, 1);
        let cols = imdb_predicate_columns(&db);
        let f = Featurizer::build(&db, &cols, 16);
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::new(cols.clone(), seed));
        for q in gen.generate_batch(10) {
            let feats = f.featurize(&q, &samples);
            prop_assert_eq!(feats.table_rows.len(), q.tables.len());
            prop_assert_eq!(feats.join_rows.len(), q.num_joins());
            prop_assert_eq!(feats.pred_rows.len(), q.num_predicates());
            for row in &feats.table_rows {
                prop_assert_eq!(row.len(), f.table_dim());
                let onehot: f32 = row[..f.num_tables()].iter().sum();
                prop_assert_eq!(onehot, 1.0);
            }
            for row in &feats.join_rows {
                prop_assert_eq!(row.len(), f.join_dim());
                let s: f32 = row.iter().sum();
                prop_assert!(s <= 1.0);
            }
            for row in &feats.pred_rows {
                prop_assert_eq!(row.len(), f.pred_dim());
                let col_onehot: f32 = row[..cols.len()].iter().sum();
                let op_onehot: f32 = row[cols.len()..cols.len() + 3].iter().sum();
                let lit = row[cols.len() + 3];
                prop_assert!(col_onehot <= 1.0);
                prop_assert_eq!(op_onehot, 1.0);
                prop_assert!((0.0..=1.0).contains(&lit));
            }
        }
    }

    /// Baseline estimators never panic, never return NaN/Inf, and respect
    /// the ≥ 1 clamp on arbitrary generated queries.
    #[test]
    fn baselines_are_total_functions(seed in 0u64..10_000) {
        let db = imdb_database(&ImdbConfig::tiny(4));
        let cols = imdb_predicate_columns(&db);
        let pg = PostgresEstimator::build(&db);
        let hy = SamplingEstimator::build(&db, 20, seed);
        let mut cfg = GeneratorConfig::new(cols, seed ^ 0xAB);
        cfg.max_tables = 6;
        cfg.max_predicates = 5;
        let mut gen = QueryGenerator::new(&db, cfg);
        for q in gen.generate_batch(15) {
            for est in [&pg as &dyn CardinalityEstimator, &hy] {
                let e = est.estimate(&q);
                prop_assert!(e.is_finite() && e >= 1.0, "{} gave {e}", est.name());
            }
        }
    }
}
