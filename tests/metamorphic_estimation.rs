//! Metamorphic tests: relations that must hold between *related* queries,
//! checked against the exact executor (and, where estimators guarantee
//! them, against the estimators too).

use deep_sketches::prelude::*;
use deep_sketches::storage::predicate::CmpOp;

fn db() -> Database {
    imdb_database(&ImdbConfig::tiny(21))
}

#[test]
fn adding_a_predicate_never_increases_true_cardinality() {
    let db = db();
    let oracle = TrueCardinalityOracle::new(&db);
    for q in job_light_workload(&db, 2) {
        let base = oracle.estimate(&q);
        let mut stricter = q.clone();
        stricter
            .add_predicate(&db, "title.production_year", CmpOp::Gt, 1990)
            .unwrap();
        let filtered = oracle.estimate(&stricter);
        assert!(
            filtered <= base,
            "predicate increased count: {base} → {filtered}"
        );
    }
}

#[test]
fn widening_a_range_never_decreases_true_cardinality() {
    let db = db();
    let oracle = TrueCardinalityOracle::new(&db);
    let mk = |year: i64| {
        parse_query(
            &db,
            &format!(
                "SELECT COUNT(*) FROM title, movie_keyword \
                 WHERE movie_keyword.movie_id = title.id \
                 AND title.production_year > {year}"
            ),
        )
        .unwrap()
    };
    // Lowering the threshold widens the range, so counts must not shrink.
    let mut last = 0.0;
    for year in [2015, 2010, 2000, 1980, 1950, 1900] {
        let c = oracle.estimate(&mk(year));
        assert!(c >= last, "widening range decreased count at {year}");
        last = c;
    }
}

#[test]
fn postgres_is_monotone_in_range_predicates() {
    // PG's histogram-based range selectivity is monotone by construction;
    // verify end-to-end through the estimator.
    let db = db();
    let pg = PostgresEstimator::build(&db);
    // Lowering the threshold widens the range: estimates must not shrink.
    let mut last = 0.0;
    for year in [2015, 2005, 1995, 1985, 1950] {
        let q = parse_query(
            &db,
            &format!("SELECT COUNT(*) FROM title WHERE title.production_year > {year}"),
        )
        .unwrap();
        let e = pg.estimate(&q);
        assert!(e >= last - 1e-9, "PG estimate not monotone at {year}");
        last = e;
    }
}

#[test]
fn join_with_unfiltered_satellite_dominates_filtered_one() {
    let db = db();
    let oracle = TrueCardinalityOracle::new(&db);
    let all = parse_query(
        &db,
        "SELECT COUNT(*) FROM title, cast_info WHERE cast_info.movie_id = title.id",
    )
    .unwrap();
    let filtered = parse_query(
        &db,
        "SELECT COUNT(*) FROM title, cast_info WHERE cast_info.movie_id = title.id \
         AND cast_info.role_id = 1",
    )
    .unwrap();
    assert!(oracle.estimate(&filtered) <= oracle.estimate(&all));
}

#[test]
fn between_equals_the_explicit_range_pair() {
    let db = db();
    let oracle = TrueCardinalityOracle::new(&db);
    let between = parse_query(
        &db,
        "SELECT COUNT(*) FROM title WHERE title.production_year BETWEEN 1990 AND 2005",
    )
    .unwrap();
    let pair = parse_query(
        &db,
        "SELECT COUNT(*) FROM title WHERE title.production_year > 1989 \
         AND title.production_year < 2006",
    )
    .unwrap();
    assert_eq!(oracle.estimate(&between), oracle.estimate(&pair));
}

#[test]
fn sketch_estimates_are_plan_order_invariant() {
    let db = db();
    let sketch = SketchBuilder::new(&db, imdb_predicate_columns(&db))
        .training_queries(150)
        .epochs(2)
        .sample_size(8)
        .hidden_units(8)
        .seed(5)
        .build()
        .expect("sketch");
    for q in job_light_workload(&db, 6).into_iter().take(20) {
        let mut permuted = q.clone();
        permuted.tables.reverse();
        permuted.joins.reverse();
        permuted.predicates.reverse();
        let a = sketch.estimate(&q);
        let b = sketch.estimate(&permuted);
        assert!(
            (a - b).abs() < 1e-6 * a.max(1.0),
            "order changed the estimate: {a} vs {b}"
        );
    }
}
